//! Collection strategies: `vec` and `hash_set` with a size range.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_inclusive(self.lo, self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

pub struct HashSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { elem, size: size.into() }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        // Duplicates shrink the set below target; bounded retries keep this
        // total even when the element domain is smaller than the target.
        let mut budget = target * 10 + 10;
        while out.len() < target && budget > 0 {
            out.insert(self.elem.generate(rng));
            budget -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_within_bounds() {
        let mut rng = TestRng::deterministic("coll");
        let strat = vec(0u8..255, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = TestRng::deterministic("coll2");
        let strat = vec(0u8..255, 4..=4);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }

    #[test]
    fn hash_set_terminates_on_small_domain() {
        let mut rng = TestRng::deterministic("coll3");
        let strat = hash_set(0usize..3, 10..=10);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
