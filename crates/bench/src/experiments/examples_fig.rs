//! Figure 14: qualitative search examples, made quantitative.
//!
//! The paper shows three mobile-app screenshots returning the top-6
//! similar products. Our analogue: three fresh query photos from known
//! product families; the measurable claim is that results come from the
//! query's own family (intra-family precision@6).

use std::time::Duration;

use jdvs_workload::catalog::CatalogConfig;
use jdvs_workload::queries::QueryGenerator;
use jdvs_workload::scenario::{World, WorldConfig};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

/// Figure 14 analogue.
pub fn fig14(ctx: &Ctx) -> ExperimentResult {
    let world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: ctx.scaled(2_000, 200),
            num_clusters: 50,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    });
    let client = world.client(Duration::from_secs(10));
    let generator = QueryGenerator::new(world.catalog(), 1414);

    let mut r = ExperimentResult::new(
        "fig14",
        "Search examples: top-6 similar products for three query photos",
        "Figure 14: three mobile searches, each returning 6 visually similar products",
    );
    let mut total_hits = 0usize;
    let mut total = 0usize;
    for q in 0..3 {
        let (query, family) = generator.next_query(world.images(), 6);
        let resp = client.search(query).expect("search");
        for (rank, hit) in resp.results.iter().enumerate() {
            let hit_family = world.cluster_of(hit.hit.product_id);
            let same = hit_family == Some(family);
            total += 1;
            total_hits += usize::from(same);
            r.push_row(row![
                "query" => q,
                "rank" => rank + 1,
                "product" => hit.hit.product_id,
                "distance" => format!("{:.4}", hit.hit.distance),
                "query_family" => family,
                "result_family" => format!("{:?}", hit_family.unwrap_or(u64::MAX)),
                "same_family" => same,
            ]);
        }
    }
    r.note(format!(
        "intra-family precision@6: {:.1}% over 3 queries (paper: qualitative screenshots)",
        100.0 * total_hits as f64 / total.max(1) as f64
    ));
    r
}
