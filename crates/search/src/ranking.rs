//! Result ranking.
//!
//! Section 2.4: *"Finally, the similar products are ranked according to
//! their sales, praise, price and other attributes."* The blender blends
//! visual similarity with business attributes. [`RankingPolicy`] is a
//! weighted linear blend over normalized signals:
//!
//! - similarity: `1 / (1 + distance)` — monotone-decreasing in distance,
//!   in `(0, 1]` — or, with [`RankingPolicy::with_normalized_distance`],
//!   `1 - (d - dmin) / (dmax - dmin)` min-max normalized across the
//!   shortlist, which makes the attribute weights scale-invariant: the
//!   same weights blend identically whether the feature space puts
//!   neighbors at distance 0.1 or 100;
//! - sales and praise: `log1p` compressed (counts are heavy-tailed);
//! - price: inverted log (cheaper ranks higher, all else equal).

use serde::{Deserialize, Serialize};

use crate::protocol::{PartialHit, RankedHit};

/// Weighted blend of similarity and product attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingPolicy {
    /// Weight of visual similarity.
    pub w_similarity: f64,
    /// Weight of (log-compressed) sales.
    pub w_sales: f64,
    /// Weight of (log-compressed) praise.
    pub w_praise: f64,
    /// Weight of (inverted log) price.
    pub w_price: f64,
    /// When set, [`RankingPolicy::rank`] min-max normalizes distances
    /// across the shortlist before blending, so `w_sales`/`w_praise`/
    /// `w_price` trade against similarity on a fixed `[0, 1]` scale
    /// regardless of the feature space's distance magnitudes.
    /// [`RankingPolicy::score`] (a single hit, no shortlist context)
    /// always uses the absolute `1 / (1 + d)` form.
    pub normalize_distance: bool,
}

impl Default for RankingPolicy {
    /// Similarity-dominant defaults: visual match is the primary signal,
    /// attributes break near-ties, as in product visual search.
    fn default() -> Self {
        Self {
            w_similarity: 1.0,
            w_sales: 0.02,
            w_praise: 0.01,
            w_price: 0.005,
            normalize_distance: false,
        }
    }
}

impl RankingPolicy {
    /// Pure similarity ranking (the ablation baseline).
    pub fn similarity_only() -> Self {
        Self {
            w_similarity: 1.0,
            w_sales: 0.0,
            w_praise: 0.0,
            w_price: 0.0,
            normalize_distance: false,
        }
    }

    /// An explicit weight blend (the serving-time `blend_weights` knob).
    pub fn blend(w_similarity: f64, w_sales: f64, w_praise: f64, w_price: f64) -> Self {
        Self {
            w_similarity,
            w_sales,
            w_praise,
            w_price,
            normalize_distance: false,
        }
    }

    /// Switches [`RankingPolicy::rank`] to shortlist-normalized distances.
    pub fn with_normalized_distance(mut self) -> Self {
        self.normalize_distance = true;
        self
    }

    /// Scores one hit (higher is better) with the absolute similarity
    /// form; [`RankingPolicy::rank`] substitutes the normalized form when
    /// [`RankingPolicy::normalize_distance`] is set.
    pub fn score(&self, hit: &PartialHit) -> f64 {
        self.score_with(hit, None)
    }

    fn score_with(&self, hit: &PartialHit, norm: Option<(f64, f64)>) -> f64 {
        let d = f64::from(hit.distance);
        let similarity = match norm {
            // All-equal shortlists give every hit full similarity and let
            // the attribute signals decide.
            Some((lo, hi)) if hi > lo => 1.0 - (d - lo) / (hi - lo),
            Some(_) => 1.0,
            None => 1.0 / (1.0 + d),
        };
        let sales = (hit.sales as f64).ln_1p();
        let praise = (hit.praise as f64).ln_1p();
        // Cheaper is better: invert the compressed price.
        let price = 1.0 / (1.0 + (hit.price as f64).ln_1p());
        self.w_similarity * similarity
            + self.w_sales * sales
            + self.w_praise * praise
            + self.w_price * price
    }

    /// Ranks hits best-first, deduplicating by product (a product with
    /// several near-identical images should occupy one result slot, as in
    /// the paper's mobile UI), and truncates to `k`.
    pub fn rank(&self, hits: Vec<PartialHit>, k: usize) -> Vec<RankedHit> {
        let norm = if self.normalize_distance {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for h in &hits {
                let d = f64::from(h.distance);
                lo = lo.min(d);
                hi = hi.max(d);
            }
            Some((lo, hi))
        } else {
            None
        };
        let mut scored: Vec<RankedHit> = hits
            .into_iter()
            .map(|h| RankedHit {
                score: self.score_with(&h, norm),
                hit: h,
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.hit.url.cmp(&b.hit.url))
        });
        let mut seen_products = std::collections::HashSet::new();
        scored.retain(|r| seen_products.insert(r.hit.product_id));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_storage::model::ProductId;

    fn hit(product: u64, distance: f32, sales: u64, price: u64) -> PartialHit {
        PartialHit {
            partition: 0,
            local_id: product as u32,
            distance,
            product_id: ProductId(product),
            sales,
            price,
            praise: 0,
            url: format!("u{product}-{distance}"),
        }
    }

    #[test]
    fn closer_hits_score_higher() {
        let p = RankingPolicy::similarity_only();
        assert!(p.score(&hit(1, 0.1, 0, 0)) > p.score(&hit(2, 2.0, 0, 0)));
    }

    #[test]
    fn sales_break_ties() {
        let p = RankingPolicy::default();
        let popular = hit(1, 1.0, 1_000_000, 100);
        let obscure = hit(2, 1.0, 0, 100);
        assert!(p.score(&popular) > p.score(&obscure));
    }

    #[test]
    fn cheaper_wins_at_equal_similarity_and_sales() {
        let p = RankingPolicy::default();
        let cheap = hit(1, 1.0, 10, 100);
        let pricey = hit(2, 1.0, 10, 1_000_000);
        assert!(p.score(&cheap) > p.score(&pricey));
    }

    #[test]
    fn similarity_dominates_attributes_by_default() {
        let p = RankingPolicy::default();
        let near_unpopular = hit(1, 0.01, 0, 1_000_000);
        let far_popular = hit(2, 5.0, 1_000_000, 1);
        assert!(p.score(&near_unpopular) > p.score(&far_popular));
    }

    #[test]
    fn rank_sorts_dedupes_and_truncates() {
        let p = RankingPolicy::similarity_only();
        let hits = vec![
            hit(1, 3.0, 0, 0),
            hit(1, 0.5, 0, 0), // same product, closer image
            hit(2, 1.0, 0, 0),
            hit(3, 2.0, 0, 0),
        ];
        let ranked = p.rank(hits, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].hit.product_id, ProductId(1));
        assert!(
            (ranked[0].hit.distance - 0.5).abs() < 1e-6,
            "best image of the product wins"
        );
        assert_eq!(ranked[1].hit.product_id, ProductId(2));
    }

    #[test]
    fn rank_of_empty_is_empty() {
        assert!(RankingPolicy::default().rank(vec![], 10).is_empty());
        assert!(RankingPolicy::default()
            .with_normalized_distance()
            .rank(vec![], 10)
            .is_empty());
    }

    #[test]
    fn normalized_blend_is_scale_invariant() {
        // The same shortlist at 100× the distance scale must rank
        // identically under the normalized blend (the absolute form would
        // crush every similarity toward 0 and let sales take over).
        let p = RankingPolicy::blend(1.0, 0.1, 0.0, 0.0).with_normalized_distance();
        let near = vec![hit(1, 0.1, 0, 0), hit(2, 0.5, 500, 0), hit(3, 1.0, 0, 0)];
        let far: Vec<PartialHit> = near
            .iter()
            .cloned()
            .map(|mut h| {
                h.distance *= 100.0;
                h
            })
            .collect();
        let order = |ranked: Vec<RankedHit>| -> Vec<ProductId> {
            ranked.into_iter().map(|r| r.hit.product_id).collect()
        };
        assert_eq!(order(p.rank(near, 3)), order(p.rank(far, 3)));
    }

    #[test]
    fn normalized_blend_lets_sales_rerank_near_ties() {
        let p = RankingPolicy::blend(1.0, 0.5, 0.0, 0.0).with_normalized_distance();
        // Product 2 is marginally farther but vastly more popular.
        let hits = vec![
            hit(1, 1.00, 0, 0),
            hit(2, 1.01, 100_000, 0),
            hit(3, 2.0, 0, 0),
        ];
        let ranked = p.rank(hits, 3);
        assert_eq!(ranked[0].hit.product_id, ProductId(2));
    }

    #[test]
    fn normalized_degenerate_shortlist_stays_finite() {
        let p = RankingPolicy::default().with_normalized_distance();
        // One hit, and all-equal distances: no NaN, attributes decide ties.
        let one = p.rank(vec![hit(1, 3.0, 5, 10)], 1);
        assert!(one[0].score.is_finite());
        let tied = p.rank(vec![hit(1, 1.0, 0, 0), hit(2, 1.0, 999, 0)], 2);
        assert!(tied.iter().all(|r| r.score.is_finite()));
        assert_eq!(tied[0].hit.product_id, ProductId(2), "sales break the tie");
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let p = RankingPolicy::similarity_only();
        let hits = vec![hit(1, 1.0, 0, 0), hit(2, 1.0, 0, 0), hit(3, 1.0, 0, 0)];
        let a = p.rank(hits.clone(), 3);
        let b = p.rank(hits, 3);
        assert_eq!(a, b);
    }
}
