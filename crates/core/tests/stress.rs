//! Randomized multi-writer/multi-reader stress suite for the real-time
//! mutation path. Where the loom models (tests/loom.rs) exhaustively
//! interleave tiny schedules, these tests run big random workloads on real
//! OS threads — the configuration ThreadSanitizer instruments in CI:
//!
//! ```text
//! RUSTFLAGS="-Z sanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
//!     cargo +nightly test -p jdvs-core --test stress
//! ```
//!
//! Workload sizes scale with `JDVS_STRESS_OPS` (default keeps the default
//! `cargo test` run fast); `JDVS_STRESS_SEED` pins the op mix for replay.
#![cfg(not(loom))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jdvs_core::bitmap::AtomicBitmap;
use jdvs_core::config::IndexConfig;
use jdvs_core::forward::ForwardIndex;
use jdvs_core::ids::{ImageId, ListId};
use jdvs_core::index::VisualIndex;
use jdvs_core::inverted::InvertedIndex;
use jdvs_core::swap::IndexHandle;
use jdvs_storage::model::{ProductAttributes, ProductId};
use jdvs_vector::Vector;
use rand::{Rng, SmallRng};

fn stress_ops(default: u64) -> u64 {
    std::env::var("JDVS_STRESS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stress_seed() -> u64 {
    std::env::var("JDVS_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xadd_1c7)
}

/// One writer applying the full random event mix against a live
/// `VisualIndex` while reader threads search, resolve attributes, and test
/// validity the whole time. Readers assert structural invariants only —
/// anything they can observe must be internally consistent.
#[test]
fn random_event_mix_against_live_readers() {
    let ops = stress_ops(6_000);
    let index = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: 4,
            num_lists: 4,
            initial_list_capacity: 2, // force many migrations
            ..Default::default()
        },
        &[
            Vector::from(vec![0.0, 0.0, 0.0, 0.0]),
            Vector::from(vec![1.0, 0.0, 1.0, 0.0]),
            Vector::from(vec![0.0, 1.0, 0.0, 1.0]),
            Vector::from(vec![1.0, 1.0, 1.0, 1.0]),
        ],
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ t);
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let q = [
                        (rng.gen_range(0..100) as f32) / 100.0,
                        (rng.gen_range(0..100) as f32) / 100.0,
                        (rng.gen_range(0..100) as f32) / 100.0,
                        (rng.gen_range(0..100) as f32) / 100.0,
                    ];
                    for hit in index.search(&q, 5, 2) {
                        let id = ImageId(hit.id as u32);
                        // A returned hit must have been published: its
                        // attributes and features resolve without error.
                        let attrs = index.attributes(id).expect("hit resolves");
                        assert!(attrs.url.starts_with("sku/"), "url {:?}", attrs.url);
                        assert!(index.features(id).is_some(), "hit has features");
                        checks += 1;
                    }
                    let n = index.num_images();
                    if n > 0 {
                        let id = ImageId(rng.gen_range(0..n as u64) as u32);
                        // Published ids always resolve, valid or not.
                        let _ = index.is_valid(id);
                        index.attributes(id).expect("published id resolves");
                    }
                }
                checks
            })
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(stress_seed());
    let mut inserted: Vec<ProductAttributes> = Vec::new();
    for op in 0..ops {
        match rng.gen_range(0..10) {
            // 60% inserts keep the migrations coming.
            0..=5 => {
                let v = Vector::from(vec![
                    (rng.gen_range(0..100) as f32) / 100.0,
                    (rng.gen_range(0..100) as f32) / 100.0,
                    (rng.gen_range(0..100) as f32) / 100.0,
                    (rng.gen_range(0..100) as f32) / 100.0,
                ]);
                let attrs = ProductAttributes::new(
                    ProductId(op),
                    rng.gen_range(0..1000),
                    rng.gen_range(1..100_000),
                    rng.gen_range(0..100),
                    format!("sku/{op}.jpg"),
                );
                index.insert(v, attrs.clone()).expect("insert");
                inserted.push(attrs);
            }
            6 | 7 => {
                if let Some(a) = pick(&mut rng, &inserted) {
                    index
                        .update_numeric(
                            a.image_key(),
                            &a.url,
                            Some(rng.gen_range(0..9999)),
                            None,
                            Some(rng.gen_range(0..99)),
                        )
                        .expect("update");
                }
            }
            8 => {
                if let Some(a) = pick(&mut rng, &inserted) {
                    index.invalidate(a.image_key(), &a.url).expect("invalidate");
                }
            }
            _ => index.flush(),
        }
    }
    index.flush();
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(checks > 0, "readers observed hits while the writer ran");
    assert_eq!(index.num_images(), inserted.len());
    // Every insert is findable post-flush: total list entries match.
    assert_eq!(index.inverted().total_entries(), inserted.len());
}

fn pick<'a>(rng: &mut SmallRng, v: &'a [ProductAttributes]) -> Option<&'a ProductAttributes> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len() as u64) as usize])
    }
}

/// Multiple writers appending into *disjoint* lists of one `InvertedIndex`
/// (the paper's discipline: one writer per list) race readers scanning
/// every list. Each list's content is tagged with its writer, so a reader
/// can detect cross-list leakage, reordering, or a torn prefix.
#[test]
fn disjoint_writers_race_list_scans() {
    const WRITERS: u64 = 4;
    let per_writer = stress_ops(4_000);
    let idx = Arc::new(InvertedIndex::new(WRITERS as usize, 2, true));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3u64)
        .map(|t| {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (0xbeef + t));
                while !stop.load(Ordering::Relaxed) {
                    let list = rng.gen_range(0..WRITERS) as u32;
                    let mut expect = 0u32;
                    idx.scan(ListId(list), |id| {
                        // Writer w stores w * 2^24 + k for k = 0, 1, 2, …:
                        // a scan must be exactly that dense tagged prefix.
                        assert_eq!(
                            id.0,
                            list << 24 | expect,
                            "list {list} corrupt at position {expect}"
                        );
                        expect += 1;
                    });
                }
            })
        })
        .collect();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let idx = Arc::clone(&idx);
            std::thread::spawn(move || {
                for k in 0..per_writer {
                    idx.append(ListId(w as u32), ImageId((w as u32) << 24 | k as u32));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    idx.flush();
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    assert_eq!(idx.total_entries(), (WRITERS * per_writer) as usize);
    assert!(idx.total_expansions() >= WRITERS, "migrations exercised");
}

/// Concurrent writers flip disjoint bit ranges while readers run pinned
/// block scans. Flips must be lossless (no RMW can eat a neighbour's bit)
/// and never leak outside the owner's range.
#[test]
fn bitmap_flips_race_block_scans() {
    const WRITERS: u64 = 4;
    const RANGE: u64 = 4_096; // bits per writer; capacity pre-sized so
                              // growth never races a pinned reader
    let flips = stress_ops(20_000);
    let bm = Arc::new(AtomicBitmap::with_capacity((WRITERS * RANGE) as usize));
    for w in 0..WRITERS {
        bm.set((w * RANGE) as usize); // each writer's permanent guard bit
    }
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let bm = Arc::clone(&bm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let r = bm.reader();
                    // The guard bit each writer keeps permanently set must
                    // never be observed clear.
                    for w in 0..WRITERS {
                        assert!(r.test((w * RANGE) as usize), "guard bit {w} lost");
                    }
                    let mut count = 0usize;
                    bm.for_each_valid((WRITERS * RANGE) as usize, |_| count += 1);
                    assert!(count >= WRITERS as usize, "guards visible in block scan");
                }
            })
        })
        .collect();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let bm = Arc::clone(&bm);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (w << 32));
                for _ in 0..flips {
                    let bit = w * RANGE + rng.gen_range(1..RANGE);
                    bm.assign(bit as usize, rng.gen_bool(0.5));
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    for w in 0..WRITERS {
        assert!(bm.test((w * RANGE) as usize));
    }
}

/// A swap storm against in-flight queries: generations only move forward,
/// snapshots are always a single complete payload, and the final handle
/// resolves the last swap.
#[test]
fn handle_swap_storm() {
    let swaps = stress_ops(10_000);
    let handle = Arc::new(IndexHandle::<u64>::new(Arc::new(0u64)));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let handle = Arc::clone(&handle);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = handle.generation();
                    assert!(g >= last_gen, "generation went backwards");
                    last_gen = g;
                    let snap = handle.get();
                    // Payload i is published by swap i: a snapshot can lag
                    // the counter but never lead it past the next swap.
                    assert!(*snap + 1 >= g, "snapshot older than gen - 1");
                }
            })
        })
        .collect();
    for i in 1..=swaps {
        let old = handle.swap(Arc::new(i));
        assert_eq!(*old, i - 1, "swaps are serialized");
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    assert_eq!(*handle.get(), swaps);
    assert_eq!(handle.generation(), swaps);
}

/// Competing URL updates against readers: the reference swing is one
/// atomic word, so a reader must always decode one complete candidate URL,
/// never a splice of two — and never a `CorruptReference` error, since
/// every reference a reader can load was produced by a real append.
#[test]
fn url_update_storm_never_tears() {
    let updates = stress_ops(5_000);
    let fwd = Arc::new(ForwardIndex::new());
    let id = fwd
        .append(&ProductAttributes::new(
            ProductId(1),
            1,
            2,
            3,
            "candidate-0-0".into(),
        ))
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let fwd = Arc::clone(&fwd);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let url = fwd.url(id).expect("live reference never corrupt");
                    let mut parts = url.split('-');
                    assert_eq!(parts.next(), Some("candidate"), "torn url {url:?}");
                    let w: u64 = parts.next().unwrap().parse().expect("writer tag");
                    let k: u64 = parts.next().unwrap().parse().expect("sequence tag");
                    assert!(w <= 2 && k <= updates, "impossible candidate {url:?}");
                }
            })
        })
        .collect();
    let writers: Vec<_> = (1..=2u64)
        .map(|w| {
            let fwd = Arc::clone(&fwd);
            std::thread::spawn(move || {
                for k in 1..=updates {
                    fwd.update_url(id, &format!("candidate-{w}-{k}"))
                        .expect("update url");
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().unwrap();
    }
    let last = fwd.url(id).unwrap();
    assert!(last.starts_with("candidate-"), "final url intact: {last:?}");
}
