//! The real-time indexer (Section 2.3, Figures 4 and 6).
//!
//! *"Messages about product or image updates are received from a message
//! queue and processed instantly."* [`RealtimeIndexer`] is that consumer:
//! it applies each [`ProductEvent`] to its partition's [`VisualIndex`],
//! using the feature-reuse path whenever the image was extracted before.
//!
//! Each searcher owns one partition, so an indexer can be scoped with
//! [`RealtimeIndexer::with_partition`] to process only the images that hash
//! into its partition — exactly how the paper's searchers share one queue.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jdvs_features::cache::FetchOutcome;
use jdvs_features::CachingExtractor;
use jdvs_storage::model::{ImageKey, ProductEvent};
use jdvs_storage::queue::Consumer;
use jdvs_storage::{FeatureDb, ImageStore};

use crate::error::IndexError;
use crate::index::VisualIndex;
use crate::swap::IndexHandle;

/// What applying one event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyReport {
    /// Images inserted fresh (feature extraction performed or reused from
    /// the feature DB).
    pub inserted: u64,
    /// Images revalidated via the in-index reuse path (bitmap flip).
    pub revalidated: u64,
    /// Images whose attributes were updated.
    pub updated: u64,
    /// Images logically deleted.
    pub deleted: u64,
    /// Images skipped because they hash to another partition.
    pub skipped: u64,
    /// Images that could not be processed (e.g. blob missing, URL unknown).
    pub failed: u64,
}

impl ApplyReport {
    /// Total images this event touched on this partition.
    pub fn touched(&self) -> u64 {
        self.inserted + self.revalidated + self.updated + self.deleted
    }

    fn merge(&mut self, other: ApplyReport) {
        self.inserted += other.inserted;
        self.revalidated += other.revalidated;
        self.updated += other.updated;
        self.deleted += other.deleted;
        self.skipped += other.skipped;
        self.failed += other.failed;
    }
}

/// The per-partition real-time indexer; see the module docs.
///
/// The indexer resolves its index through an [`IndexHandle`] per event,
/// so a weekly full-index hot swap (Figure 2) redirects subsequent events
/// to the fresh index without restarting the indexer.
#[derive(Debug)]
pub struct RealtimeIndexer {
    index: Arc<IndexHandle>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    /// `(partition, num_partitions)`: only images whose URL hashes into
    /// `partition` are processed. `None` processes everything.
    partition: Option<(usize, usize)>,
}

impl RealtimeIndexer {
    /// Creates an indexer that processes every event image, writing to
    /// whichever index `handle` currently points at.
    pub fn new(
        handle: Arc<IndexHandle>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self { index: handle, extractor, images, feature_db, partition: None }
    }

    /// Convenience: wraps a fixed index in a fresh (never-swapped) handle.
    pub fn for_index(
        index: Arc<VisualIndex>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self::new(Arc::new(IndexHandle::new(index)), extractor, images, feature_db)
    }

    /// Scopes the indexer to one partition of `num_partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `partition >= num_partitions` or `num_partitions == 0`.
    pub fn with_partition(mut self, partition: usize, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(partition < num_partitions, "partition out of range");
        self.partition = Some((partition, num_partitions));
        self
    }

    /// Snapshot of the index this indexer currently maintains.
    pub fn index(&self) -> Arc<VisualIndex> {
        self.index.get()
    }

    /// The swappable handle (rebuilds publish through this).
    pub fn handle(&self) -> &Arc<IndexHandle> {
        &self.index
    }

    fn owns(&self, key: ImageKey) -> bool {
        match self.partition {
            Some((p, n)) => key.partition(n) == p,
            None => true,
        }
    }

    /// Applies one event (Figure 6's dispatch).
    pub fn apply(&self, event: &ProductEvent) -> ApplyReport {
        let index = self.index.get();
        let mut report = ApplyReport::default();
        match event {
            ProductEvent::AddProduct { images, .. } => {
                for attrs in images {
                    let key = attrs.image_key();
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    // Figure 8: check-if-exists → reuse, else extract+insert.
                    let outcome = index.upsert(attrs.clone(), || {
                        let (features, fetch) =
                            self.extractor.features_for(attrs, &self.images, &self.feature_db);
                        debug_assert_ne!(
                            fetch,
                            FetchOutcome::Missing,
                            "catalog generated an image with no blob"
                        );
                        features
                    });
                    match outcome {
                        Ok(o) if o.reused() => report.revalidated += 1,
                        Ok(_) => report.inserted += 1,
                        Err(_) => report.failed += 1,
                    }
                }
            }
            ProductEvent::RemoveProduct { urls, .. } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.invalidate(key, url) {
                        Ok(_) => report.deleted += 1,
                        Err(IndexError::UnknownUrl(_)) => report.failed += 1,
                        Err(_) => report.failed += 1,
                    }
                }
            }
            ProductEvent::UpdateAttributes { urls, sales, price, praise, .. } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.update_numeric(key, url, *sales, *price, *praise) {
                        Ok(_) => report.updated += 1,
                        Err(_) => report.failed += 1,
                    }
                }
            }
        }
        report
    }

    /// Consumes events from `consumer` until `stop` is set, applying each
    /// instantly. When the queue idles for `idle` the in-flight inverted-
    /// list expansions are flushed (migration-window inserts become
    /// searchable) and the loop re-polls. Returns the cumulative report.
    pub fn run(
        &self,
        consumer: &mut Consumer<ProductEvent>,
        stop: &AtomicBool,
        idle: Duration,
    ) -> ApplyReport {
        let mut total = ApplyReport::default();
        while !stop.load(Ordering::Relaxed) {
            match consumer.poll(idle) {
                Some(event) => total.merge(self.apply(&event)),
                None => self.index.get().flush(),
            }
        }
        // Drain whatever is left so shutdown is deterministic.
        while let Some(event) = consumer.poll_now() {
            total.merge(self.apply(&event));
        }
        self.index.get().flush();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::MessageQueue;
    use jdvs_vector::Vector;

    const DIM: usize = 16;

    struct Fixture {
        indexer: RealtimeIndexer,
        images: Arc<ImageStore>,
    }

    fn fixture() -> Fixture {
        fixture_with_partition(None)
    }

    fn fixture_with_partition(partition: Option<(usize, usize)>) -> Fixture {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig { dim: DIM, ..Default::default() }),
            CostModel::free(),
        ));
        // Bootstrap quantizer on generic Gaussian data.
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> =
            (0..64).map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect()).collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig { dim: DIM, num_lists: 4, initial_list_capacity: 4, ..Default::default() },
            &train,
        ));
        let mut indexer =
            RealtimeIndexer::for_index(index, extractor, Arc::clone(&images), feature_db);
        if let Some((p, n)) = partition {
            indexer = indexer.with_partition(p, n);
        }
        Fixture { indexer, images }
    }

    fn add_event(f: &Fixture, product: u64, urls: &[&str]) -> ProductEvent {
        let images = urls
            .iter()
            .map(|u| {
                f.images.put_synthetic(u, product * 31);
                ProductAttributes::new(ProductId(product), 1, 100, 1, u.to_string())
            })
            .collect();
        ProductEvent::AddProduct { product_id: ProductId(product), images }
    }

    #[test]
    fn add_product_inserts_and_is_searchable() {
        let f = fixture();
        let ev = add_event(&f, 1, &["u1", "u2"]);
        let r = f.indexer.apply(&ev);
        assert_eq!(r.inserted, 2);
        assert_eq!(r.touched(), 2);
        let index = f.indexer.index();
        index.flush();
        assert_eq!(index.valid_images(), 2);
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        let feats = index.features(id).unwrap();
        let hits = index.search(feats.as_slice(), 1, 4);
        assert_eq!(hits[0].id, id.as_u64());
    }

    #[test]
    fn remove_then_readd_takes_reuse_path() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let rm = ProductEvent::RemoveProduct { product_id: ProductId(1), urls: vec!["u1".into()] };
        let r = f.indexer.apply(&rm);
        assert_eq!(r.deleted, 1);
        assert_eq!(f.indexer.index().valid_images(), 0);
        // Re-add: must revalidate, not insert.
        let r = f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(r.revalidated, 1);
        assert_eq!(r.inserted, 0);
        assert_eq!(f.indexer.index().valid_images(), 1);
        assert_eq!(f.indexer.index().num_images(), 1, "no duplicate record");
    }

    #[test]
    fn update_changes_attributes() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
            sales: Some(777),
            price: None,
            praise: None,
        };
        let r = f.indexer.apply(&up);
        assert_eq!(r.updated, 1);
        let index = f.indexer.index();
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        assert_eq!(index.attributes(id).unwrap().sales, 777);
    }

    #[test]
    fn operations_on_unknown_urls_fail_gracefully() {
        let f = fixture();
        let rm = ProductEvent::RemoveProduct { product_id: ProductId(9), urls: vec!["x".into()] };
        assert_eq!(f.indexer.apply(&rm).failed, 1);
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["x".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(f.indexer.apply(&up).failed, 1);
    }

    #[test]
    fn partition_scoping_skips_foreign_images() {
        let f = fixture_with_partition(Some((0, 4)));
        // Generate many images; only ~1/4 should be owned.
        let urls: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let r = f.indexer.apply(&add_event(&f, 1, &url_refs));
        assert_eq!(r.inserted + r.skipped, 40);
        assert!(r.skipped > 0, "some images belong elsewhere");
        assert!(r.inserted > 0, "some images belong here");
        // Every inserted image must actually hash to partition 0.
        for u in &urls {
            let key = ImageKey::from_url(u);
            let owned = key.partition(4) == 0;
            assert_eq!(f.indexer.index().lookup(key).is_some(), owned);
        }
    }

    #[test]
    fn run_loop_consumes_until_stopped() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..20u64 {
            queue.publish(add_event(&f, i, &[&format!("u{i}")]));
        }
        let mut consumer = queue.consumer();
        let stop = AtomicBool::new(true); // run drains the backlog then exits
        let report = f.indexer.run(&mut consumer, &stop, Duration::from_millis(1));
        assert_eq!(report.inserted, 20);
        assert_eq!(f.indexer.index().valid_images(), 20);
    }

    #[test]
    fn reuse_avoids_feature_extraction_cost() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let extractions_after_first = f.indexer.extractor.misses();
        f.indexer
            .apply(&ProductEvent::RemoveProduct { product_id: ProductId(1), urls: vec!["u1".into()] });
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(
            f.indexer.extractor.misses(),
            extractions_after_first,
            "re-listing must not re-extract"
        );
    }
}
