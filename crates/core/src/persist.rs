//! Index snapshots: serialize a partition's index to bytes and back.
//!
//! Production context (Figure 2/3): the weekly full indexer builds fresh
//! indexes and *distributes* them to searcher nodes. That hand-off needs a
//! durable, self-describing on-disk format. [`save`] captures everything a
//! partition needs — config, quantizer centroids, every record's
//! attributes, features and validity — and [`load`] reconstructs an
//! equivalent [`VisualIndex`] (same ids, same attributes, same searchable
//! set; inverted lists are rebuilt deterministically from the quantizer).
//!
//! The format is a versioned little-endian binary layout (no external
//! serialization dependency on the hot path):
//!
//! ```text
//! magic "JDVS" | u32 version | config (incl. pq_subspaces, 0 = none) |
//! quantizer (k × dim f32) | u64 n_images |
//! n × { attrs, valid u8, features dim × f32 } |
//! n × { category u32, in_stock u8 } (v4) | u32 crc32c (v2)
//! ```
//!
//! **Version 2** appends a CRC32C trailer computed over every preceding
//! byte. [`load`] verifies the trailer *before* decoding, so a corrupt
//! snapshot (bit rot, short write, bad shipping) fails with
//! [`PersistError::ChecksumMismatch`] instead of decoding garbage.
//! **Version 3** adds the `pq_bits` and `rerank_factor` config fields
//! (fast-scan PQ). **Version 4** appends a listing-attribute section
//! (category + in-stock per record) after the record array; loading it
//! rebuilds the filter bitmaps through the ordinary insert path.
//! **Version 5** adds the hierarchical coarse-quantizer config fields
//! (`coarse_beam_width` + `coarse_balance_factor`) — beam width is index
//! structure, not a serving knob: assignment shaped the inverted lists, so a
//! reloaded partition must probe identically. Older snapshots still load —
//! v1/v2 with the pre-fast-scan defaults, pre-v4 with every record
//! uncategorized and in stock, pre-v5 with the flat centroid scan.
//!
//! PQ codebooks and the centroid graph are *derived* data (rebuilt
//! deterministically from the stored vectors/centroids and the config), so
//! snapshots carry raw vectors and centroids only; [`load`] retrains the
//! codebook when `pq_subspaces` is set and rebuilds the centroid graph when
//! `coarse_beam_width` is positive.

use jdvs_storage::checksum::crc32c;
use jdvs_storage::model::{ProductAttributes, ProductId};
use jdvs_vector::kmeans::Kmeans;
use jdvs_vector::Vector;

use crate::config::IndexConfig;
use crate::ids::ImageId;
use crate::index::VisualIndex;

/// Format magic.
const MAGIC: &[u8; 4] = b"JDVS";
/// Current format version (v2 = v1 payload + CRC32C trailer; v3 adds the
/// `pq_bits` / `rerank_factor` config fields for the fast-scan PQ mode;
/// v4 appends the per-record listing-attribute section; v5 adds the
/// hierarchical coarse-quantizer config fields).
const VERSION: u32 = 5;
/// Oldest version [`load`] still accepts.
const MIN_VERSION: u32 = 1;

/// Errors from snapshot encode/decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream does not start with the JDVS magic.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The stream ended before a field was complete.
    Truncated {
        /// What was being read.
        field: &'static str,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8 {
        /// What was being read.
        field: &'static str,
    },
    /// A structural invariant failed (e.g. zero dimension).
    Corrupt {
        /// Human-readable description.
        reason: &'static str,
    },
    /// The CRC32C trailer does not match the snapshot payload (v2+).
    ChecksumMismatch {
        /// Checksum the trailer recorded.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => f.write_str("not a jdvs index snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            PersistError::Truncated { field } => {
                write!(f, "snapshot truncated while reading {field}")
            }
            PersistError::InvalidUtf8 { field } => write!(f, "invalid utf-8 in {field}"),
            PersistError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
            PersistError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: trailer says {expected:#010x}, \
                 payload hashes to {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self {
            buf: Vec::with_capacity(4096),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Truncated { field });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, PersistError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, PersistError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32s(&mut self, n: usize, field: &'static str) -> Result<Vec<f32>, PersistError> {
        let b = self.take(n * 4, field)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn str(&mut self, field: &'static str) -> Result<String, PersistError> {
        let len = self.u32(field)? as usize;
        let b = self.take(len, field)?;
        String::from_utf8(b.to_vec()).map_err(|_| PersistError::InvalidUtf8 { field })
    }
}

/// Serializes `index` into a self-describing snapshot.
pub fn save(index: &VisualIndex) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);

    let c = index.config();
    w.u32(c.dim as u32);
    w.u32(c.num_lists as u32);
    w.u32(c.initial_list_capacity as u32);
    w.u32(c.nprobe as u32);
    w.u8(u8::from(c.background_expansion));
    w.u32(c.kmeans_iters as u32);
    w.u64(c.train_sample as u64);
    w.u32(c.pq_subspaces.unwrap_or(0) as u32);
    w.u64(c.seed);
    // v3 fields; v1/v2 readers never see them, older snapshots load with
    // the pre-fast-scan defaults (8-bit codes, 4x over-fetch).
    w.u8(c.pq_bits);
    w.u32(c.rerank_factor as u32);
    // v5 fields: hierarchical coarse-quantizer knobs. The graph itself is
    // derived data, rebuilt from the centroids on load.
    w.u32(c.coarse_beam_width as u32);
    w.u64(c.coarse_balance_factor.to_bits());

    let q = index.quantizer();
    w.u32(q.k() as u32);
    for centroid in q.centroids() {
        w.f32s(centroid.as_slice());
    }

    let n = index.num_images();
    w.u64(n as u64);
    for raw in 0..n {
        let id = ImageId(raw as u32);
        let attrs = index.attributes(id).expect("record below len");
        let features = index.features(id).expect("vector below len");
        w.u64(attrs.product_id.0);
        w.u64(attrs.sales);
        w.u64(attrs.price);
        w.u64(attrs.praise);
        w.bytes(attrs.url.as_bytes());
        w.u8(u8::from(index.is_valid(id)));
        w.f32s(features.as_slice());
    }
    // v4 section: per-record listing attributes, appended after the legacy
    // record array so the record grammar itself never changed shape.
    for raw in 0..n {
        let attrs = index
            .attributes(ImageId(raw as u32))
            .expect("record below len");
        w.u32(attrs.category);
        w.u8(u8::from(attrs.in_stock));
    }
    // v2 trailer: CRC32C over everything written so far. The checksum is
    // verified before any field is decoded, so shipping corruption is an
    // explicit error, never silently-decoded garbage.
    let crc = crc32c(&w.buf);
    w.u32(crc);
    w.buf
}

/// Reconstructs an index from a snapshot produced by [`save`].
///
/// The rebuilt index assigns the same sequential ids, attributes, features
/// and validity; inverted lists are re-derived from the (identical)
/// quantizer, so search results match the snapshotted index exactly.
///
/// # Errors
///
/// Returns a [`PersistError`] on malformed input.
pub fn load(bytes: &[u8]) -> Result<VisualIndex, PersistError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic")? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if version >= 2 {
        // Verify the trailer before decoding anything else; the payload
        // the reader may consume ends where the trailer begins.
        if bytes.len() < 12 {
            return Err(PersistError::Truncated { field: "checksum" });
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = crc32c(payload);
        if expected != actual {
            return Err(PersistError::ChecksumMismatch { expected, actual });
        }
        r.buf = payload;
    }

    let dim = r.u32("config.dim")? as usize;
    if dim == 0 {
        return Err(PersistError::Corrupt {
            reason: "zero dimension",
        });
    }
    let config = IndexConfig {
        dim,
        num_lists: r.u32("config.num_lists")? as usize,
        initial_list_capacity: r.u32("config.initial_list_capacity")? as usize,
        nprobe: r.u32("config.nprobe")? as usize,
        background_expansion: r.u8("config.background_expansion")? != 0,
        kmeans_iters: r.u32("config.kmeans_iters")? as usize,
        train_sample: r.u64("config.train_sample")? as usize,
        pq_subspaces: match r.u32("config.pq_subspaces")? {
            0 => None,
            m => Some(m as usize),
        },
        // Serving-time knobs, not index structure: snapshots stay portable
        // across hosts with different core counts / probing policies.
        intra_query_threads: 1,
        nprobe_escalation: 0,
        seed: r.u64("config.seed")?,
        // Struct-literal fields evaluate in textual order, so these v3
        // reads consume the bytes directly after `seed`; pre-v3 snapshots
        // get the defaults their builds used.
        pq_bits: if version >= 3 {
            r.u8("config.pq_bits")?
        } else {
            8
        },
        rerank_factor: if version >= 3 {
            r.u32("config.rerank_factor")? as usize
        } else {
            4
        },
        // v5 fields; pre-v5 snapshots were written by flat-scan builds.
        coarse_beam_width: if version >= 5 {
            r.u32("config.coarse_beam_width")? as usize
        } else {
            0
        },
        coarse_balance_factor: if version >= 5 {
            f64::from_bits(r.u64("config.coarse_balance_factor")?)
        } else {
            0.0
        },
    };
    if !config.coarse_balance_factor.is_finite() || config.coarse_balance_factor < 0.0 {
        // Guard the validate() assertion inside the index constructor:
        // corrupt input must surface as an error, never a panic.
        return Err(PersistError::Corrupt {
            reason: "invalid coarse_balance_factor",
        });
    }

    let k = r.u32("quantizer.k")? as usize;
    if k == 0 {
        return Err(PersistError::Corrupt {
            reason: "zero centroids",
        });
    }
    let centroids: Vec<Vector> = (0..k)
        .map(|_| r.f32s(dim, "quantizer.centroid").map(Vector::from))
        .collect::<Result<_, _>>()?;
    let quantizer = Kmeans::from_centroids(centroids);

    // Decode all records first: the (derived) PQ codebook is retrained on
    // the stored vectors before inserts encode against it.
    let n = r.u64("n_images")? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let product_id = ProductId(r.u64("record.product_id")?);
        let sales = r.u64("record.sales")?;
        let price = r.u64("record.price")?;
        let praise = r.u64("record.praise")?;
        let url = r.str("record.url")?;
        let valid = r.u8("record.valid")? != 0;
        let features = Vector::from(r.f32s(dim, "record.features")?);
        records.push((
            ProductAttributes::new(product_id, sales, price, praise, url),
            valid,
            features,
        ));
    }
    // v4 listing-attribute section; pre-v4 records default to
    // uncategorized + in stock (what those builds assumed).
    if version >= 4 {
        for rec in records.iter_mut() {
            rec.0.category = r.u32("listing.category")?;
            rec.0.in_stock = r.u8("listing.in_stock")? != 0;
        }
    }
    let pq = match config.pq_subspaces {
        Some(m) if !records.is_empty() => {
            let sample: Vec<Vector> = records
                .iter()
                .take(config.train_sample.max(1))
                .map(|(_, _, f)| f.clone())
                .collect();
            Some(std::sync::Arc::new(
                jdvs_vector::pq::ProductQuantizer::train(
                    &sample,
                    &jdvs_vector::pq::PqConfig {
                        num_subspaces: m,
                        max_iters: config.kmeans_iters,
                        seed: config.seed ^ 0x90DE,
                        bits: config.pq_bits,
                    },
                ),
            ))
        }
        Some(m) => {
            // Degenerate: no vectors to train on; a zero codebook suffices.
            Some(std::sync::Arc::new(
                jdvs_vector::pq::ProductQuantizer::train(
                    &[Vector::zeros(dim)],
                    &jdvs_vector::pq::PqConfig {
                        num_subspaces: m,
                        max_iters: 1,
                        seed: config.seed,
                        bits: config.pq_bits,
                    },
                ),
            ))
        }
        None => None,
    };
    let index = VisualIndex::with_quantizers(config, quantizer, pq);

    let mut invalid: Vec<(jdvs_storage::model::ImageKey, String)> = Vec::new();
    for (attrs, valid, features) in records {
        let key = attrs.image_key();
        let url = attrs.url.clone();
        index
            .insert(features, attrs)
            .map_err(|_| PersistError::Corrupt {
                reason: "record rejected on rebuild",
            })?;
        if !valid {
            invalid.push((key, url));
        }
    }
    // Insert marks records valid; restore snapshot validity afterwards.
    for (key, url) in invalid {
        index
            .invalidate(key, &url)
            .map_err(|_| PersistError::Corrupt {
                reason: "validity restore failed",
            })?;
    }
    index.flush();
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_storage::model::ImageKey;
    use jdvs_vector::rng::Xoshiro256;

    const DIM: usize = 8;

    fn build_index(n: u64) -> VisualIndex {
        let mut rng = Xoshiro256::seed_from(21);
        let train: Vec<Vector> = (0..32)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                initial_list_capacity: 4,
                ..Default::default()
            },
            &train,
        );
        for i in 0..n {
            let v: Vector = (0..DIM).map(|_| rng.next_gaussian() as f32).collect();
            index
                .insert(
                    v,
                    ProductAttributes::new(ProductId(i), i * 2, 100 + i, i % 5, format!("u{i}"))
                        .with_category((i % 3) as u32)
                        .with_stock(i % 2 == 0),
                )
                .unwrap();
        }
        // Delete every 4th image so validity state is non-trivial.
        for i in (0..n).step_by(4) {
            index
                .invalidate(ImageKey::from_url(&format!("u{i}")), &format!("u{i}"))
                .unwrap();
        }
        index.flush();
        index
    }

    #[test]
    fn round_trip_preserves_everything() {
        let index = build_index(100);
        let bytes = save(&index);
        let loaded = load(&bytes).expect("load");
        assert_eq!(loaded.num_images(), index.num_images());
        assert_eq!(loaded.valid_images(), index.valid_images());
        assert_eq!(loaded.config(), index.config());
        for raw in 0..100u32 {
            let id = ImageId(raw);
            assert_eq!(
                loaded.attributes(id).unwrap(),
                index.attributes(id).unwrap()
            );
            assert_eq!(loaded.features(id), index.features(id));
            assert_eq!(loaded.is_valid(id), index.is_valid(id));
        }
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let index = build_index(200);
        let loaded = load(&save(&index)).expect("load");
        for probe in 0..10u32 {
            let q = index.features(ImageId(probe * 13)).unwrap();
            let a = index.search(q.as_slice(), 10, 4);
            let b = loaded.search(q.as_slice(), 10, 4);
            assert_eq!(a, b, "query {probe}");
        }
    }

    #[test]
    fn pq_index_round_trips_and_serves_compressed_search() {
        let mut rng = Xoshiro256::seed_from(77);
        let train: Vec<Vector> = (0..128)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                pq_subspaces: Some(4),
                ..Default::default()
            },
            &train,
        );
        for (i, v) in train.iter().take(60).enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        let restored = load(&save(&index)).expect("round trip");
        assert!(restored.has_pq(), "PQ mode must survive the snapshot");
        // Raw searches match exactly; compressed searches work on the
        // retrained (derived) codebook and surface exact matches.
        for i in (0..60u32).step_by(13) {
            let q = index.features(ImageId(i)).unwrap();
            assert_eq!(
                index.search(q.as_slice(), 5, 4),
                restored.search(q.as_slice(), 5, 4)
            );
            let hits = restored.search_compressed(q.as_slice(), 1, 4, 8);
            assert_eq!(hits[0].id, u64::from(i));
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load(b"NOPE....").unwrap_err();
        assert_eq!(err, PersistError::BadMagic);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let index = build_index(3);
        let mut bytes = save(&index);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            load(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let index = build_index(5);
        let bytes = save(&index);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let result = load(&bytes[..cut]);
            assert!(result.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::Truncated { field: "x" }
            .to_string()
            .contains('x'));
        assert!(PersistError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        let mismatch = PersistError::ChecksumMismatch {
            expected: 0xDEAD_BEEF,
            actual: 0x0BAD_F00D,
        };
        assert!(mismatch.to_string().contains("0xdeadbeef"));
        assert!(mismatch.to_string().contains("0x0badf00d"));
    }

    /// Byte offset of the v3-only config fields (`pq_bits` +
    /// `rerank_factor`, 5 bytes) inside a saved snapshot: magic + version
    /// + the fixed-width config fields up to and including `seed`.
    const V3_FIELDS_AT: usize = 4 + 4 + 4 + 4 + 4 + 4 + 1 + 4 + 8 + 4 + 8;

    /// Byte offset of the v5-only config fields (`coarse_beam_width` +
    /// `coarse_balance_factor`, 12 bytes): directly after the v3 fields.
    const V5_FIELDS_AT: usize = V3_FIELDS_AT + 5;

    /// Rewrites a freshly-saved (v5) snapshot of `n` records into the
    /// older `version` layout: drops the v4 listing section (5 bytes per
    /// record, directly before the trailer) for pre-v4 targets, splices out
    /// the v5/v3 config fields when needed (v5 first — it sits after the v3
    /// fields, so draining it never shifts their offset), and drops or
    /// recomputes the trailer.
    fn downgrade(mut bytes: Vec<u8>, version: u32, n: usize) -> Vec<u8> {
        if version < 4 {
            let trailer_at = bytes.len() - 4;
            bytes.drain(trailer_at - 5 * n..trailer_at);
        }
        if version < 5 {
            bytes.drain(V5_FIELDS_AT..V5_FIELDS_AT + 12);
        }
        if version < 3 {
            bytes.drain(V3_FIELDS_AT..V3_FIELDS_AT + 5);
        }
        bytes[4..8].copy_from_slice(&version.to_le_bytes());
        let len = bytes.len();
        if version >= 2 {
            let crc = crc32c(&bytes[..len - 4]);
            bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        } else {
            bytes.truncate(len - 4);
        }
        bytes
    }

    #[test]
    fn v1_snapshots_without_trailer_still_load() {
        let index = build_index(20);
        let loaded = load(&downgrade(save(&index), 1, 20)).expect("v1 must stay loadable");
        assert_eq!(loaded.num_images(), index.num_images());
        assert_eq!(loaded.valid_images(), index.valid_images());
    }

    #[test]
    fn v2_snapshots_load_with_fastscan_defaults() {
        let index = build_index(20);
        let loaded = load(&downgrade(save(&index), 2, 20)).expect("v2 must stay loadable");
        assert_eq!(loaded.num_images(), index.num_images());
        assert_eq!(loaded.valid_images(), index.valid_images());
        // Pre-fast-scan snapshots behave as the builds that wrote them did.
        assert_eq!(loaded.config().pq_bits, 8);
        assert_eq!(loaded.config().rerank_factor, 4);
    }

    #[test]
    fn v3_snapshots_load_with_default_listing() {
        let index = build_index(20);
        let loaded = load(&downgrade(save(&index), 3, 20)).expect("v3 must stay loadable");
        assert_eq!(loaded.num_images(), index.num_images());
        // Pre-v4 snapshots carry no listing attributes: every record loads
        // uncategorized and in stock.
        for raw in 0..20u32 {
            let a = loaded.attributes(ImageId(raw)).unwrap();
            assert_eq!(a.category, 0);
            assert!(a.in_stock);
        }
    }

    #[test]
    fn v4_snapshots_load_with_flat_coarse_defaults() {
        let index = build_index(20);
        let loaded = load(&downgrade(save(&index), 4, 20)).expect("v4 must stay loadable");
        assert_eq!(loaded.num_images(), index.num_images());
        assert_eq!(loaded.valid_images(), index.valid_images());
        // Pre-v5 snapshots were written by flat-scan builds: no graph.
        assert_eq!(loaded.config().coarse_beam_width, 0);
        assert_eq!(loaded.config().coarse_balance_factor, 0.0);
        assert!(loaded.quantizer().coarse_graph().is_none());
        // Listing attributes (a v4 feature) survive the v4 downgrade.
        for raw in 0..20u32 {
            let a = loaded.attributes(ImageId(raw)).unwrap();
            let b = index.attributes(ImageId(raw)).unwrap();
            assert_eq!(a.category, b.category);
            assert_eq!(a.in_stock, b.in_stock);
        }
    }

    #[test]
    fn coarse_graph_is_rebuilt_on_load() {
        let mut rng = Xoshiro256::seed_from(55);
        let train: Vec<Vector> = (0..256)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 32,
                nprobe: 4,
                coarse_beam_width: 8,
                coarse_balance_factor: 2.5,
                ..Default::default()
            },
            &train,
        );
        for (i, v) in train.iter().take(120).enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        let loaded = load(&save(&index)).expect("round trip");
        // The knobs persist and the graph (derived data, absent from the
        // snapshot bytes) is rebuilt deterministically on load.
        assert_eq!(loaded.config().coarse_beam_width, 8);
        assert_eq!(loaded.config().coarse_balance_factor, 2.5);
        assert_eq!(
            loaded.quantizer().coarse_graph(),
            index.quantizer().coarse_graph(),
            "rebuilt graph must equal the original bit for bit"
        );
        // Graph-assigned probing reproduces the original's searches exactly.
        for i in (0..120u32).step_by(17) {
            let q = index.features(ImageId(i)).unwrap();
            assert_eq!(
                index.search(q.as_slice(), 5, 4),
                loaded.search(q.as_slice(), 5, 4)
            );
        }
    }

    #[test]
    fn listing_attributes_round_trip_and_serve_filtered_search() {
        let index = build_index(60);
        let loaded = load(&save(&index)).expect("load");
        for raw in 0..60u32 {
            let id = ImageId(raw);
            let a = loaded.attributes(id).unwrap();
            let b = index.attributes(id).unwrap();
            assert_eq!(a.category, b.category);
            assert_eq!(a.in_stock, b.in_stock);
        }
        // The rebuilt filter bitmaps serve filtered searches identically.
        let spec = crate::filter::FilterSpec::by_category(1).in_stock();
        for probe in 0..5u32 {
            let q = index.features(ImageId(probe * 7)).unwrap();
            assert_eq!(
                index.search_filtered(q.as_slice(), 5, 4, &spec),
                loaded.search_filtered(q.as_slice(), 5, 4, &spec),
            );
        }
    }

    #[test]
    fn four_bit_pq_config_round_trips() {
        let mut rng = Xoshiro256::seed_from(99);
        let train: Vec<Vector> = (0..128)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                pq_subspaces: Some(8),
                pq_bits: 4,
                rerank_factor: 6,
                ..Default::default()
            },
            &train,
        );
        for (i, v) in train.iter().take(60).enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        let restored = load(&save(&index)).expect("round trip");
        assert_eq!(restored.config().pq_bits, 4);
        assert_eq!(restored.config().rerank_factor, 6);
        // The retrained 4-bit codebook serves fast-scan searches.
        for i in (0..60u32).step_by(13) {
            let q = index.features(ImageId(i)).unwrap();
            let hits = restored.search_compressed(q.as_slice(), 1, 4, 8);
            assert_eq!(hits[0].id, u64::from(i));
        }
    }

    #[test]
    fn payload_bit_flip_fails_with_checksum_mismatch() {
        let index = build_index(10);
        let bytes = save(&index);
        // Any flip strictly inside the payload (past magic + version, before
        // the trailer) must surface as a checksum mismatch: the CRC runs
        // before field decoding.
        for pos in [8usize, 9, 40, bytes.len() / 2, bytes.len() - 5] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            match load(&corrupted) {
                Err(PersistError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {pos}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn fuzzed_mutations_never_decode_garbage() {
        let index = build_index(30);
        let bytes = save(&index);
        let mut rng = Xoshiro256::seed_from(0xF022);
        for round in 0..300 {
            let mut mutated = bytes.clone();
            match rng.next_u64() % 3 {
                0 => {
                    // Single bit flip anywhere.
                    let pos = (rng.next_u64() as usize) % mutated.len();
                    let bit = rng.next_u64() % 8;
                    mutated[pos] ^= 1 << bit;
                }
                1 => {
                    // Truncation to a random strict prefix.
                    let cut = (rng.next_u64() as usize) % mutated.len();
                    mutated.truncate(cut);
                }
                _ => {
                    // Overwrite a random run with random bytes.
                    let start = (rng.next_u64() as usize) % mutated.len();
                    let len = 1 + (rng.next_u64() as usize) % 16;
                    for b in mutated.iter_mut().skip(start).take(len) {
                        *b = rng.next_u64() as u8;
                    }
                }
            }
            if mutated == bytes {
                continue; // overwrite happened to reproduce the original
            }
            // Must error (never panic, never silently decode a different
            // index). The specific error kind depends on where the damage
            // landed; what matters is that nothing corrupt decodes.
            assert!(
                load(&mutated).is_err(),
                "round {round}: mutated snapshot must not decode"
            );
        }
    }
}
