//! Error types for index operations.

use crate::ids::ImageId;

/// Errors surfaced by index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A feature vector's dimension does not match the index configuration.
    DimensionMismatch {
        /// Dimension the index was built with.
        expected: usize,
        /// Dimension the caller supplied.
        actual: usize,
    },
    /// An operation referenced an image id beyond the forward index.
    UnknownImage(ImageId),
    /// An operation referenced an image URL the index has never seen.
    UnknownUrl(String),
    /// The per-partition image capacity (u32 id space) is exhausted.
    CapacityExhausted,
    /// A variable-length attribute exceeds the buffer's record limit.
    AttributeTooLarge {
        /// Size the caller attempted to store.
        len: usize,
        /// Maximum supported record size.
        max: usize,
    },
    /// A packed buffer reference points outside the bytes the attribute
    /// buffer has allocated — it was corrupted, fabricated, or belongs to a
    /// different buffer.
    CorruptReference {
        /// Global byte offset the reference claimed.
        offset: u64,
        /// Record length the reference claimed.
        len: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "feature dimension mismatch: index expects {expected}, got {actual}"
                )
            }
            IndexError::UnknownImage(id) => write!(f, "unknown image id {id}"),
            IndexError::UnknownUrl(url) => write!(f, "unknown image url {url:?}"),
            IndexError::CapacityExhausted => f.write_str("partition image capacity exhausted"),
            IndexError::AttributeTooLarge { len, max } => {
                write!(
                    f,
                    "variable-length attribute of {len} bytes exceeds the {max}-byte limit"
                )
            }
            IndexError::CorruptReference { offset, len } => {
                write!(
                    f,
                    "corrupt buffer reference: offset {offset}, length {len} \
                     is outside the allocated attribute buffer"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = IndexError::DimensionMismatch {
            expected: 64,
            actual: 32,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("32"));
        assert!(IndexError::UnknownImage(ImageId(5))
            .to_string()
            .contains("#5"));
        assert!(IndexError::UnknownUrl("u".into()).to_string().contains("u"));
        assert!(!IndexError::CapacityExhausted.to_string().is_empty());
        assert!(IndexError::AttributeTooLarge { len: 10, max: 5 }
            .to_string()
            .contains("10"));
        let corrupt = IndexError::CorruptReference {
            offset: 4096,
            len: 17,
        };
        assert!(corrupt.to_string().contains("4096"));
        assert!(corrupt.to_string().contains("17"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&IndexError::CapacityExhausted);
    }
}
