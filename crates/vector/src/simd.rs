//! Runtime-dispatched SIMD distance kernels.
//!
//! The searcher's inner loop evaluates `squared_l2` (raw scans), `dot`
//! (cosine/MIPS modes) and the PQ ADC lookup (compressed scans) millions of
//! times per second; Section 2.4's sub-second latency target makes these the
//! hottest instructions in the system. This module provides three
//! implementations of each kernel behind one [`KernelSet`] of function
//! pointers:
//!
//! - **scalar** — the always-correct reference: 4-way manually unrolled,
//!   identical to the original hand-written loops. Used for differential
//!   testing and as the fallback on hardware without SIMD.
//! - **avx2-fma** (`x86_64`) — 8-lane `f32` FMA kernels with two
//!   independent accumulators; the ADC kernel uses `vgatherdps` to fetch
//!   8 codebook entries per instruction.
//! - **neon** (`aarch64`) — 4-lane `f32` FMA kernels (NEON is part of the
//!   baseline AArch64 ISA, so no runtime detection is needed).
//!
//! Selection happens **once**, on first use, via
//! `is_x86_feature_detected!`; every later call is an indirect call through
//! a cached function pointer. Setting the environment variable
//! `JDVS_FORCE_SCALAR` (to anything but `0`) before first use pins the
//! dispatcher to the scalar set — CI runs the whole test suite in that mode
//! so both code paths stay green.
//!
//! Floating-point caveat: SIMD kernels associate the reduction differently
//! from the scalar ones (and FMA skips an intermediate rounding), so results
//! may differ in the last bits. Property tests bound the relative error at
//! `1e-4`; orderings of well-separated candidates are unaffected.

use std::sync::OnceLock;

/// Codewords per PQ sub-quantizer; ADC tables are `m` rows of this many
/// `f32` entries, flattened row-major (mirrors
/// [`crate::pq::CODEBOOK_SIZE`], duplicated here to keep the kernel layer
/// free of higher-level imports).
pub const ADC_ROW: usize = 256;

/// Codes per fast-scan block: one 4-bit fast-scan kernel call scores this
/// many candidates at once (mirrors `jdvs_core`'s interleaved block size).
pub const FASTSCAN_LANES: usize = 32;

/// LUT sets one batched fast-scan kernel call scores against a single
/// loaded block. Eight queries keep the accumulators (2 × 256-bit per
/// query on AVX2, 4 × 128-bit on NEON) within the architectural register
/// file; [`KernelSet::fastscan16_multi`] chunks larger batches.
pub const FASTSCAN_MAX_BATCH: usize = 8;

/// Bytes per subspace row in a fast-scan block / quantized LUT: 16 packed
/// byte slots (two 4-bit codes each) and 16 u8 LUT entries respectively.
const FASTSCAN_ROW: usize = 16;

#[inline]
fn assert_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(
        a.len(),
        b.len(),
        "distance between vectors of different dimension"
    );
}

/// Signature of the batched fast-scan kernel: one loaded block, one LUT
/// set per subscribed query, one accumulator array per query.
type Fastscan16x = fn(&[u8], &[&[u8]], &mut [[u16; FASTSCAN_LANES]]);

/// One complete set of distance kernels (see the module docs).
#[derive(Clone, Copy)]
pub struct KernelSet {
    name: &'static str,
    squared_l2: fn(&[f32], &[f32]) -> f32,
    dot: fn(&[f32], &[f32]) -> f32,
    adc: fn(&[u8], &[f32]) -> f32,
    fastscan16: fn(&[u8], &[u8], &mut [u16; FASTSCAN_LANES]),
    fastscan16x: Fastscan16x,
    lanes_le16: fn(&[u16; FASTSCAN_LANES], u16) -> u32,
}

impl std::fmt::Debug for KernelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelSet")
            .field("name", &self.name)
            .finish()
    }
}

impl KernelSet {
    /// Kernel family name: `"scalar"`, `"avx2-fma"` or `"neon"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Squared Euclidean distance `Σ (aᵢ - bᵢ)²`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn squared_l2(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        (self.squared_l2)(a, b)
    }

    /// Inner product `Σ aᵢ·bᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        (self.dot)(a, b)
    }

    /// ADC lookup: `Σ table[sub * ADC_ROW + code[sub]]` over a flattened
    /// per-query distance table (see [`crate::pq::AdcTable`]).
    ///
    /// # Panics
    ///
    /// Panics if `table.len() != code.len() * ADC_ROW`.
    #[inline]
    pub fn adc(&self, code: &[u8], table: &[f32]) -> f32 {
        assert_eq!(
            table.len(),
            code.len() * ADC_ROW,
            "ADC table shape mismatch"
        );
        (self.adc)(code, table)
    }

    /// 4-bit fast-scan over one interleaved 32-code block.
    ///
    /// `block` and `luts` are both `m` rows of 16 bytes, row `s` belonging
    /// to subspace `s`. In `block`, byte `t` of a row packs the sub-code of
    /// block lane `t` in its low nibble and of lane `t + 16` in its high
    /// nibble; in `luts`, byte `w` of a row is the quantized distance of
    /// codeword `w` (see [`crate::pq::QuantizedAdcTable`]). Writes the 32
    /// per-lane sums into `out` using **saturating** u16 adds in subspace
    /// order `0..m` — every implementation accumulates in this exact order,
    /// so scalar and SIMD results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `block` and `luts` differ in length or are not a whole
    /// number of 16-byte rows.
    #[inline]
    pub fn fastscan16(&self, block: &[u8], luts: &[u8], out: &mut [u16; FASTSCAN_LANES]) {
        assert_eq!(
            block.len(),
            luts.len(),
            "fast-scan block/LUT shape mismatch"
        );
        assert_eq!(
            block.len() % FASTSCAN_ROW,
            0,
            "fast-scan rows must be 16 bytes"
        );
        (self.fastscan16)(block, luts, out)
    }

    /// Batched 4-bit fast-scan: scores one interleaved 32-code block
    /// against `luts.len()` quantized LUT sets, writing query `j`'s 32
    /// per-lane sums into `outs[j]`. Each query's accumulation is the
    /// exact per-lane saturating-add sequence of
    /// [`KernelSet::fastscan16`], so `outs[j]` is bit-identical to a
    /// single-query call with `luts[j]` — what the batch amortizes is the
    /// block load and nibble expansion, done once instead of per query.
    /// Batches larger than [`FASTSCAN_MAX_BATCH`] are chunked internally
    /// (the per-chunk accumulators must stay register-resident).
    ///
    /// # Panics
    ///
    /// Panics if `outs` is shorter than `luts`, any LUT set differs from
    /// `block` in length, or `block` is not a whole number of 16-byte
    /// rows.
    #[inline]
    pub fn fastscan16_multi(
        &self,
        block: &[u8],
        luts: &[&[u8]],
        outs: &mut [[u16; FASTSCAN_LANES]],
    ) {
        assert!(
            outs.len() >= luts.len(),
            "fast-scan batch needs one output row per LUT set"
        );
        assert_eq!(
            block.len() % FASTSCAN_ROW,
            0,
            "fast-scan rows must be 16 bytes"
        );
        for l in luts {
            assert_eq!(block.len(), l.len(), "fast-scan block/LUT shape mismatch");
        }
        for (lc, oc) in luts
            .chunks(FASTSCAN_MAX_BATCH)
            .zip(outs.chunks_mut(FASTSCAN_MAX_BATCH))
        {
            // A lone LUT set takes the single-query kernel: same result by
            // the bit-exactness contract, but its accumulator pair stays in
            // two registers where the batched kernel's accumulator *arrays*
            // may spill — a batch of one must not run slower than unbatched.
            if lc.len() == 1 {
                (self.fastscan16)(block, lc[0], &mut oc[0]);
            } else {
                (self.fastscan16x)(block, lc, oc);
            }
        }
    }

    /// Bitmask of fast-scan lanes whose u16 accumulator is `<= bound`
    /// (bit `t` set ⇔ `accs[t] <= bound`). The scan loops use this as a
    /// block-level top-k prune: with the current k-th distance mapped back
    /// to a quantized bound, one call replaces 32 per-lane compares, and a
    /// zero result skips a block's candidate processing entirely. Pure
    /// integer compares, so every implementation returns the identical
    /// mask.
    #[inline]
    pub fn lanes_le16(&self, accs: &[u16; FASTSCAN_LANES], bound: u16) -> u32 {
        (self.lanes_le16)(accs, bound)
    }
}

static SCALAR: KernelSet = KernelSet {
    name: "scalar",
    squared_l2: scalar::squared_l2,
    dot: scalar::dot,
    adc: scalar::adc,
    fastscan16: scalar::fastscan16,
    fastscan16x: scalar::fastscan16_multi,
    lanes_le16: scalar::lanes_le16,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelSet = KernelSet {
    name: "avx2-fma",
    squared_l2: x86::squared_l2,
    dot: x86::dot,
    adc: x86::adc,
    fastscan16: x86::fastscan16,
    fastscan16x: x86::fastscan16_multi,
    lanes_le16: x86::lanes_le16,
};

#[cfg(target_arch = "aarch64")]
static NEON: KernelSet = KernelSet {
    name: "neon",
    squared_l2: neon::squared_l2,
    dot: neon::dot,
    // Table lookups have no NEON gather; the unrolled scalar loop is
    // already load-bound, so reuse it.
    adc: scalar::adc,
    // 16-entry LUTs do have a NEON home: `vqtbl1q_u8`.
    fastscan16: neon::fastscan16,
    fastscan16x: neon::fastscan16_multi,
    // 32 u16 compares are branch-free and already cheap unrolled; keep
    // the shared reference implementation.
    lanes_le16: scalar::lanes_le16,
};

/// The scalar reference kernels (always correct, never dispatched away).
pub fn scalar() -> &'static KernelSet {
    &SCALAR
}

/// The best kernel set this CPU supports, ignoring `JDVS_FORCE_SCALAR`.
/// Differential tests use this to exercise the SIMD path explicitly.
pub fn detect_best() -> &'static KernelSet {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return &AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return &NEON;
    }
    #[allow(unreachable_code)]
    &SCALAR
}

/// The kernel set every hot path dispatches through: [`detect_best`] unless
/// `JDVS_FORCE_SCALAR` pins the scalar fallback. Selected once, cached for
/// the process lifetime.
pub fn active() -> &'static KernelSet {
    static ACTIVE: OnceLock<&'static KernelSet> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        if std::env::var_os("JDVS_FORCE_SCALAR").is_some_and(|v| v != "0") {
            &SCALAR
        } else {
            detect_best()
        }
    })
}

/// The scalar reference implementations (4-way unrolled; the pre-SIMD hot
/// loops, kept verbatim as the correctness oracle).
pub mod scalar {
    use super::ADC_ROW;

    /// Reference `Σ (aᵢ - bᵢ)²`; caller guarantees equal lengths.
    pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let j = i * 4;
            let d0 = a[j] - b[j];
            let d1 = a[j + 1] - b[j + 1];
            let d2 = a[j + 2] - b[j + 2];
            let d3 = a[j + 3] - b[j + 3];
            acc0 += d0 * d0;
            acc1 += d1 * d1;
            acc2 += d2 * d2;
            acc3 += d3 * d3;
        }
        let mut acc = acc0 + acc1 + acc2 + acc3;
        for j in chunks * 4..a.len() {
            let d = a[j] - b[j];
            acc += d * d;
        }
        acc
    }

    /// Reference `Σ aᵢ·bᵢ`; caller guarantees equal lengths.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        let chunks = a.len() / 4;
        for i in 0..chunks {
            let j = i * 4;
            acc0 += a[j] * b[j];
            acc1 += a[j + 1] * b[j + 1];
            acc2 += a[j + 2] * b[j + 2];
            acc3 += a[j + 3] * b[j + 3];
        }
        let mut acc = acc0 + acc1 + acc2 + acc3;
        for j in chunks * 4..a.len() {
            acc += a[j] * b[j];
        }
        acc
    }

    /// Reference ADC lookup; caller guarantees
    /// `table.len() == code.len() * ADC_ROW`.
    pub fn adc(code: &[u8], table: &[f32]) -> f32 {
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        let chunks = code.len() / 4;
        for i in 0..chunks {
            let j = i * 4;
            acc0 += table[j * ADC_ROW + code[j] as usize];
            acc1 += table[(j + 1) * ADC_ROW + code[j + 1] as usize];
            acc2 += table[(j + 2) * ADC_ROW + code[j + 2] as usize];
            acc3 += table[(j + 3) * ADC_ROW + code[j + 3] as usize];
        }
        let mut acc = acc0 + acc1 + acc2 + acc3;
        for j in chunks * 4..code.len() {
            acc += table[j * ADC_ROW + code[j] as usize];
        }
        acc
    }

    /// Reference fast-scan (see [`super::KernelSet::fastscan16`]); caller
    /// guarantees `block.len() == luts.len()` and 16-byte rows. Lane `t`
    /// reads the low nibble of byte `t % 16`, lane `t + 16` the high
    /// nibble; saturating adds run in subspace order so this is the
    /// bit-exact oracle for the SIMD kernels.
    pub fn fastscan16(block: &[u8], luts: &[u8], out: &mut [u16; super::FASTSCAN_LANES]) {
        let m = block.len() / super::FASTSCAN_ROW;
        for (lane, slot) in out.iter_mut().enumerate() {
            let byte = lane % super::FASTSCAN_ROW;
            let shift = if lane < super::FASTSCAN_ROW { 0 } else { 4 };
            let mut acc = 0u16;
            for sub in 0..m {
                let code = (block[sub * super::FASTSCAN_ROW + byte] >> shift) & 0x0f;
                acc =
                    acc.saturating_add(u16::from(luts[sub * super::FASTSCAN_ROW + code as usize]));
            }
            *slot = acc;
        }
    }

    /// Reference batched fast-scan: one single-query pass per LUT set,
    /// which *is* the bit-exactness contract of
    /// [`super::KernelSet::fastscan16_multi`] — each output row equals a
    /// standalone [`fastscan16`] call.
    pub fn fastscan16_multi(
        block: &[u8],
        luts: &[&[u8]],
        outs: &mut [[u16; super::FASTSCAN_LANES]],
    ) {
        for (l, out) in luts.iter().zip(outs.iter_mut()) {
            fastscan16(block, l, out);
        }
    }

    /// Reference lane-prune mask (see [`super::KernelSet::lanes_le16`]):
    /// bit `t` ⇔ `accs[t] <= bound`. Integer compares only — the SIMD
    /// versions must return this exact mask.
    pub fn lanes_le16(accs: &[u16; super::FASTSCAN_LANES], bound: u16) -> u32 {
        let mut mask = 0u32;
        for (lane, &acc) in accs.iter().enumerate() {
            mask |= u32::from(acc <= bound) << lane;
        }
        mask
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::ADC_ROW;
    use std::arch::x86_64::*;

    /// Horizontal sum of the 8 lanes of `v`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    pub(super) fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: this function is only reachable through the AVX2 kernel
        // set, which `detect_best` installs after `is_x86_feature_detected!`
        // confirmed avx2+fma support.
        unsafe { squared_l2_avx2(a, b) }
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: as above — only selected on avx2+fma hardware.
        unsafe { dot_avx2(a, b) }
    }

    pub(super) fn adc(code: &[u8], table: &[f32]) -> f32 {
        // SAFETY: as above — only selected on avx2+fma hardware.
        unsafe { adc_avx2(code, table) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn squared_l2_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
            );
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut total = hsum(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = *a.get_unchecked(i) - *b.get_unchecked(i);
            total += d * d;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            i += 8;
        }
        let mut total = hsum(_mm256_add_ps(acc0, acc1));
        while i < n {
            total += *a.get_unchecked(i) * *b.get_unchecked(i);
            i += 1;
        }
        total
    }

    pub(super) fn fastscan16(block: &[u8], luts: &[u8], out: &mut [u16; super::FASTSCAN_LANES]) {
        // SAFETY: as above — only selected on avx2+fma hardware.
        unsafe { fastscan16_avx2(block, luts, out) }
    }

    /// 4-bit fast-scan: per subspace, one `_mm256_shuffle_epi8` performs
    /// all 32 LUT lookups with the 16-entry LUT broadcast into both
    /// register halves — the table never leaves registers. Accumulation is
    /// `_mm256_adds_epu16` (saturating), one subspace per iteration, which
    /// matches the scalar oracle's per-lane add order exactly.
    #[target_feature(enable = "avx2")]
    unsafe fn fastscan16_avx2(block: &[u8], luts: &[u8], out: &mut [u16; super::FASTSCAN_LANES]) {
        let m = block.len() / super::FASTSCAN_ROW;
        let zero = _mm256_setzero_si256();
        let nib = _mm256_set1_epi8(0x0f);
        // acc_lo: u16 lanes for block lanes 0..8 (128-half 0) and 16..24
        // (128-half 1); acc_hi: lanes 8..16 and 24..32.
        let mut acc_lo = zero;
        let mut acc_hi = zero;
        for sub in 0..m {
            let row = sub * super::FASTSCAN_ROW;
            let codes = _mm_loadu_si128(block.as_ptr().add(row) as *const __m128i);
            let lut = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                luts.as_ptr().add(row) as *const __m128i
            ));
            // Half 0 indexes with the low nibbles (lanes 0..16), half 1
            // with the high nibbles (lanes 16..32).
            let idx = _mm256_and_si256(_mm256_set_m128i(_mm_srli_epi16::<4>(codes), codes), nib);
            let vals = _mm256_shuffle_epi8(lut, idx);
            acc_lo = _mm256_adds_epu16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
            acc_hi = _mm256_adds_epu16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
        }
        // unpacklo/hi interleave within each 128-bit half, so the lane map
        // is: acc_lo half 0 → out[0..8], acc_hi half 0 → out[8..16],
        // acc_lo half 1 → out[16..24], acc_hi half 1 → out[24..32].
        let op = out.as_mut_ptr() as *mut __m128i;
        _mm_storeu_si128(op, _mm256_castsi256_si128(acc_lo));
        _mm_storeu_si128(op.add(1), _mm256_castsi256_si128(acc_hi));
        _mm_storeu_si128(op.add(2), _mm256_extracti128_si256::<1>(acc_lo));
        _mm_storeu_si128(op.add(3), _mm256_extracti128_si256::<1>(acc_hi));
    }

    pub(super) fn fastscan16_multi(
        block: &[u8],
        luts: &[&[u8]],
        outs: &mut [[u16; super::FASTSCAN_LANES]],
    ) {
        // SAFETY: as above — only selected on avx2+fma hardware.
        unsafe { fastscan16_multi_avx2(block, luts, outs) }
    }

    /// Batched fast-scan: the 16 code bytes and their nibble expansion are
    /// computed **once per subspace** and shuffled against every query's
    /// broadcast LUT, with per-query accumulator pairs held in registers
    /// (2 × `__m256i` × up to [`super::FASTSCAN_MAX_BATCH`] queries). Each
    /// query's adds run in the same subspace order as the single-query
    /// kernel, so every output row is bit-identical to it.
    #[target_feature(enable = "avx2")]
    unsafe fn fastscan16_multi_avx2(
        block: &[u8],
        luts: &[&[u8]],
        outs: &mut [[u16; super::FASTSCAN_LANES]],
    ) {
        let m = block.len() / super::FASTSCAN_ROW;
        let q = luts.len().min(super::FASTSCAN_MAX_BATCH);
        let zero = _mm256_setzero_si256();
        let nib = _mm256_set1_epi8(0x0f);
        let mut acc_lo = [zero; super::FASTSCAN_MAX_BATCH];
        let mut acc_hi = [zero; super::FASTSCAN_MAX_BATCH];
        for sub in 0..m {
            let row = sub * super::FASTSCAN_ROW;
            let codes = _mm_loadu_si128(block.as_ptr().add(row) as *const __m128i);
            let idx = _mm256_and_si256(_mm256_set_m128i(_mm_srli_epi16::<4>(codes), codes), nib);
            for (j, l) in luts.iter().take(q).enumerate() {
                let lut = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    l.as_ptr().add(row) as *const __m128i
                ));
                let vals = _mm256_shuffle_epi8(lut, idx);
                acc_lo[j] = _mm256_adds_epu16(acc_lo[j], _mm256_unpacklo_epi8(vals, zero));
                acc_hi[j] = _mm256_adds_epu16(acc_hi[j], _mm256_unpackhi_epi8(vals, zero));
            }
        }
        for j in 0..q {
            let op = outs[j].as_mut_ptr() as *mut __m128i;
            _mm_storeu_si128(op, _mm256_castsi256_si128(acc_lo[j]));
            _mm_storeu_si128(op.add(1), _mm256_castsi256_si128(acc_hi[j]));
            _mm_storeu_si128(op.add(2), _mm256_extracti128_si256::<1>(acc_lo[j]));
            _mm_storeu_si128(op.add(3), _mm256_extracti128_si256::<1>(acc_hi[j]));
        }
    }

    pub(super) fn lanes_le16(accs: &[u16; super::FASTSCAN_LANES], bound: u16) -> u32 {
        // SAFETY: as above — only selected on avx2+fma hardware.
        unsafe { lanes_le16_avx2(accs, bound) }
    }

    /// Lane-prune mask: `acc <= bound` per u16 lane has no unsigned
    /// compare on AVX2, so test `saturating_sub(acc, bound) == 0` instead.
    /// `movemask_epi8` yields 2 identical bits per u16 lane; `pack` the
    /// two compare results to i8 first (with `permute4x64` undoing the
    /// in-lane interleave) so one movemask covers all 32 lanes.
    #[target_feature(enable = "avx2")]
    unsafe fn lanes_le16_avx2(accs: &[u16; super::FASTSCAN_LANES], bound: u16) -> u32 {
        let zero = _mm256_setzero_si256();
        let b = _mm256_set1_epi16(bound as i16);
        let a0 = _mm256_loadu_si256(accs.as_ptr() as *const __m256i);
        let a1 = _mm256_loadu_si256(accs.as_ptr().add(16) as *const __m256i);
        let le0 = _mm256_cmpeq_epi16(_mm256_subs_epu16(a0, b), zero);
        let le1 = _mm256_cmpeq_epi16(_mm256_subs_epu16(a1, b), zero);
        // packs interleaves 128-bit halves: [le0.lo, le1.lo, le0.hi,
        // le1.hi]; permute to [le0.lo, le0.hi, le1.lo, le1.hi] so bit t of
        // the movemask is lane t.
        let packed = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packs_epi16(le0, le1));
        _mm256_movemask_epi8(packed) as u32
    }

    #[target_feature(enable = "avx2")]
    unsafe fn adc_avx2(code: &[u8], table: &[f32]) -> f32 {
        let m = code.len();
        let tp = table.as_ptr();
        // Row offsets of 8 consecutive subspaces: 0, 256, 512, ...
        let rows = _mm256_setr_epi32(
            0,
            ADC_ROW as i32,
            2 * ADC_ROW as i32,
            3 * ADC_ROW as i32,
            4 * ADC_ROW as i32,
            5 * ADC_ROW as i32,
            6 * ADC_ROW as i32,
            7 * ADC_ROW as i32,
        );
        let mut acc = _mm256_setzero_ps();
        let mut sub = 0usize;
        while sub + 8 <= m {
            // 8 one-byte codes → 8 i32 lanes → absolute table indices.
            let codes8 = _mm_loadl_epi64(code.as_ptr().add(sub) as *const __m128i);
            let idx = _mm256_add_epi32(
                _mm256_add_epi32(_mm256_cvtepu8_epi32(codes8), rows),
                _mm256_set1_epi32((sub * ADC_ROW) as i32),
            );
            acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(tp, idx));
            sub += 8;
        }
        let mut total = hsum(acc);
        while sub < m {
            total += *table.get_unchecked(sub * ADC_ROW + *code.get_unchecked(sub) as usize);
            sub += 1;
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    pub(super) fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: NEON is part of the baseline AArch64 ISA; the loads stay
        // inside the slices (equal lengths checked by the caller).
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut i = 0usize;
            while i + 8 <= n {
                let d0 = vsubq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                acc0 = vfmaq_f32(acc0, d0, d0);
                let d1 = vsubq_f32(vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
                acc1 = vfmaq_f32(acc1, d1, d1);
                i += 8;
            }
            if i + 4 <= n {
                let d = vsubq_f32(vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                acc0 = vfmaq_f32(acc0, d, d);
                i += 4;
            }
            let mut total = vaddvq_f32(vaddq_f32(acc0, acc1));
            while i < n {
                let d = a[i] - b[i];
                total += d * d;
                i += 1;
            }
            total
        }
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: as above.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut i = 0usize;
            while i + 8 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
                i += 8;
            }
            if i + 4 <= n {
                acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
                i += 4;
            }
            let mut total = vaddvq_f32(vaddq_f32(acc0, acc1));
            while i < n {
                total += a[i] * b[i];
                i += 1;
            }
            total
        }
    }

    /// 4-bit fast-scan: `vqtbl1q_u8` does all 16 LUT lookups of one nibble
    /// set in a single instruction with the LUT register-resident;
    /// accumulation is `vqaddq_u16` (saturating) one subspace at a time,
    /// matching the scalar oracle's per-lane add order exactly.
    pub(super) fn fastscan16(block: &[u8], luts: &[u8], out: &mut [u16; super::FASTSCAN_LANES]) {
        // SAFETY: NEON is baseline AArch64; loads/stores stay inside the
        // slices (lengths validated by the `KernelSet` wrapper).
        unsafe {
            let m = block.len() / super::FASTSCAN_ROW;
            let nib = vdupq_n_u8(0x0f);
            // acc0..acc3 hold u16 sums for block lanes 0..8, 8..16,
            // 16..24 and 24..32 respectively.
            let mut acc0 = vdupq_n_u16(0);
            let mut acc1 = vdupq_n_u16(0);
            let mut acc2 = vdupq_n_u16(0);
            let mut acc3 = vdupq_n_u16(0);
            for sub in 0..m {
                let row = sub * super::FASTSCAN_ROW;
                let codes = vld1q_u8(block.as_ptr().add(row));
                let lut = vld1q_u8(luts.as_ptr().add(row));
                // Low nibbles → lanes 0..16, high nibbles → lanes 16..32.
                let vals_lo = vqtbl1q_u8(lut, vandq_u8(codes, nib));
                let vals_hi = vqtbl1q_u8(lut, vshrq_n_u8::<4>(codes));
                acc0 = vqaddq_u16(acc0, vmovl_u8(vget_low_u8(vals_lo)));
                acc1 = vqaddq_u16(acc1, vmovl_u8(vget_high_u8(vals_lo)));
                acc2 = vqaddq_u16(acc2, vmovl_u8(vget_low_u8(vals_hi)));
                acc3 = vqaddq_u16(acc3, vmovl_u8(vget_high_u8(vals_hi)));
            }
            let op = out.as_mut_ptr();
            vst1q_u16(op, acc0);
            vst1q_u16(op.add(8), acc1);
            vst1q_u16(op.add(16), acc2);
            vst1q_u16(op.add(24), acc3);
        }
    }

    /// Batched fast-scan: code bytes and both nibble index sets are
    /// computed once per subspace and table-looked-up against every
    /// query's LUT, with per-query accumulator quads held in registers.
    /// Per-query add order matches the single-query kernel exactly.
    pub(super) fn fastscan16_multi(
        block: &[u8],
        luts: &[&[u8]],
        outs: &mut [[u16; super::FASTSCAN_LANES]],
    ) {
        // SAFETY: NEON is baseline AArch64; loads/stores stay inside the
        // slices (lengths validated by the `KernelSet` wrapper).
        unsafe {
            let m = block.len() / super::FASTSCAN_ROW;
            let q = luts.len().min(super::FASTSCAN_MAX_BATCH);
            let nib = vdupq_n_u8(0x0f);
            let mut acc = [[vdupq_n_u16(0); 4]; super::FASTSCAN_MAX_BATCH];
            for sub in 0..m {
                let row = sub * super::FASTSCAN_ROW;
                let codes = vld1q_u8(block.as_ptr().add(row));
                let idx_lo = vandq_u8(codes, nib);
                let idx_hi = vshrq_n_u8::<4>(codes);
                for (j, l) in luts.iter().take(q).enumerate() {
                    let lut = vld1q_u8(l.as_ptr().add(row));
                    let vals_lo = vqtbl1q_u8(lut, idx_lo);
                    let vals_hi = vqtbl1q_u8(lut, idx_hi);
                    acc[j][0] = vqaddq_u16(acc[j][0], vmovl_u8(vget_low_u8(vals_lo)));
                    acc[j][1] = vqaddq_u16(acc[j][1], vmovl_u8(vget_high_u8(vals_lo)));
                    acc[j][2] = vqaddq_u16(acc[j][2], vmovl_u8(vget_low_u8(vals_hi)));
                    acc[j][3] = vqaddq_u16(acc[j][3], vmovl_u8(vget_high_u8(vals_hi)));
                }
            }
            for (j, out) in outs.iter_mut().take(q).enumerate() {
                let op = out.as_mut_ptr();
                vst1q_u16(op, acc[j][0]);
                vst1q_u16(op.add(8), acc[j][1]);
                vst1q_u16(op.add(16), acc[j][2]);
                vst1q_u16(op.add(24), acc[j][3]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_vec(dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..dim).map(|_| rng.next_gaussian() as f32).collect()
    }

    fn close(a: f32, b: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() / scale < 1e-4
    }

    #[test]
    fn active_is_cached_and_named() {
        let k = active();
        assert_eq!(k.name(), active().name(), "selection is stable");
        assert!(["scalar", "avx2-fma", "neon"].contains(&k.name()));
    }

    #[test]
    fn best_matches_scalar_on_awkward_dims() {
        let best = detect_best();
        for dim in [
            1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 100, 255, 1024,
        ] {
            let a = random_vec(dim, dim as u64);
            let b = random_vec(dim, dim as u64 + 1000);
            assert!(
                close(best.squared_l2(&a, &b), scalar().squared_l2(&a, &b)),
                "squared_l2 dim {dim}"
            );
            assert!(
                close(best.dot(&a, &b), scalar().dot(&a, &b)),
                "dot dim {dim}"
            );
        }
    }

    #[test]
    fn adc_matches_scalar_on_awkward_widths() {
        let best = detect_best();
        let mut rng = Xoshiro256::seed_from(7);
        for m in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 32] {
            let table: Vec<f32> = (0..m * ADC_ROW)
                .map(|_| rng.next_gaussian().abs() as f32)
                .collect();
            let code: Vec<u8> = (0..m).map(|_| (rng.next_index(ADC_ROW)) as u8).collect();
            assert!(
                close(best.adc(&code, &table), scalar().adc(&code, &table)),
                "adc m {m}"
            );
        }
    }

    /// A pseudo-random fast-scan block + LUT pair for `m` subspaces.
    fn random_fastscan(m: usize, seed: u64, lut_max: u8) -> (Vec<u8>, Vec<u8>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let block: Vec<u8> = (0..m * 16).map(|_| rng.next_index(256) as u8).collect();
        let luts: Vec<u8> = (0..m * 16)
            .map(|_| rng.next_index(lut_max as usize + 1) as u8)
            .collect();
        (block, luts)
    }

    #[test]
    fn fastscan_best_is_bit_exact_with_scalar() {
        let best = detect_best();
        for m in [1usize, 2, 3, 5, 8, 13, 16, 17, 32, 64] {
            let (block, luts) = random_fastscan(m, m as u64 * 31 + 5, 255);
            let mut want = [0u16; FASTSCAN_LANES];
            let mut got = [1u16; FASTSCAN_LANES];
            scalar().fastscan16(&block, &luts, &mut want);
            best.fastscan16(&block, &luts, &mut got);
            assert_eq!(want, got, "fastscan m {m}");
        }
    }

    #[test]
    fn fastscan_saturates_identically() {
        // m·255 > u16::MAX for m ≥ 258: every lane must clamp to 65535 in
        // both implementations rather than wrap.
        let best = detect_best();
        for m in [258usize, 300] {
            let (block, _) = random_fastscan(m, 99, 255);
            let luts = vec![255u8; m * 16];
            let mut want = [0u16; FASTSCAN_LANES];
            let mut got = [0u16; FASTSCAN_LANES];
            scalar().fastscan16(&block, &luts, &mut want);
            best.fastscan16(&block, &luts, &mut got);
            assert_eq!(want, got, "saturating fastscan m {m}");
            assert!(want.iter().all(|&v| v == u16::MAX));
        }
    }

    #[test]
    fn fastscan_matches_per_lane_recomputation() {
        // Independent oracle: unpack each lane's nibbles and sum by hand.
        let m = 12usize;
        let (block, luts) = random_fastscan(m, 4242, 200);
        let mut out = [0u16; FASTSCAN_LANES];
        active().fastscan16(&block, &luts, &mut out);
        for (lane, &got) in out.iter().enumerate() {
            let mut want = 0u16;
            for sub in 0..m {
                let byte = block[sub * 16 + lane % 16];
                let code = if lane < 16 { byte & 0x0f } else { byte >> 4 };
                want = want.saturating_add(u16::from(luts[sub * 16 + code as usize]));
            }
            assert_eq!(want, got, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "block/LUT shape mismatch")]
    fn fastscan_shape_mismatch_panics() {
        let mut out = [0u16; FASTSCAN_LANES];
        active().fastscan16(&[0u8; 16], &[0u8; 32], &mut out);
    }

    /// The batched kernel's contract: row `j` of a multi-LUT call is
    /// bit-identical to a single-query `fastscan16` call with `luts[j]`,
    /// for every batch size including ones that chunk internally.
    #[test]
    fn fastscan_multi_rows_match_single_query_calls() {
        let best = detect_best();
        for m in [1usize, 3, 8, 16, 17, 32] {
            for q in [1usize, 2, 3, 5, 8, 9, 13, 16, 17] {
                let (block, _) = random_fastscan(m, m as u64 * 7 + q as u64, 255);
                let lut_sets: Vec<Vec<u8>> = (0..q)
                    .map(|j| random_fastscan(m, j as u64 * 131 + m as u64, 255).1)
                    .collect();
                let luts: Vec<&[u8]> = lut_sets.iter().map(|l| l.as_slice()).collect();
                let mut outs = vec![[1u16; FASTSCAN_LANES]; q];
                best.fastscan16_multi(&block, &luts, &mut outs);
                for (j, l) in luts.iter().enumerate() {
                    let mut want = [0u16; FASTSCAN_LANES];
                    best.fastscan16(&block, l, &mut want);
                    assert_eq!(outs[j], want, "m {m} q {q} row {j}");
                }
            }
        }
    }

    /// Differential: batched SIMD vs batched scalar, bit-exact (the same
    /// guarantee `fastscan_best_is_bit_exact_with_scalar` pins for the
    /// single-query kernel).
    #[test]
    fn fastscan_multi_best_is_bit_exact_with_scalar() {
        let best = detect_best();
        for m in [2usize, 16, 32] {
            for q in [1usize, 4, 8, 11] {
                let (block, _) = random_fastscan(m, 555 + m as u64 + q as u64, 255);
                let lut_sets: Vec<Vec<u8>> = (0..q)
                    .map(|j| random_fastscan(m, j as u64 * 977 + 3, 255).1)
                    .collect();
                let luts: Vec<&[u8]> = lut_sets.iter().map(|l| l.as_slice()).collect();
                let mut want = vec![[0u16; FASTSCAN_LANES]; q];
                let mut got = vec![[1u16; FASTSCAN_LANES]; q];
                scalar().fastscan16_multi(&block, &luts, &mut want);
                best.fastscan16_multi(&block, &luts, &mut got);
                assert_eq!(want, got, "m {m} q {q}");
            }
        }
    }

    #[test]
    fn fastscan_multi_saturates_identically() {
        let best = detect_best();
        let m = 300usize;
        let (block, _) = random_fastscan(m, 77, 255);
        let lut_sets: Vec<Vec<u8>> = (0..3).map(|_| vec![255u8; m * 16]).collect();
        let luts: Vec<&[u8]> = lut_sets.iter().map(|l| l.as_slice()).collect();
        let mut want = vec![[0u16; FASTSCAN_LANES]; 3];
        let mut got = vec![[0u16; FASTSCAN_LANES]; 3];
        scalar().fastscan16_multi(&block, &luts, &mut want);
        best.fastscan16_multi(&block, &luts, &mut got);
        assert_eq!(want, got);
        assert!(want.iter().flatten().all(|&v| v == u16::MAX));
    }

    #[test]
    #[should_panic(expected = "one output row per LUT set")]
    fn fastscan_multi_short_outs_panics() {
        let block = [0u8; 16];
        let luts: Vec<&[u8]> = vec![&block, &block];
        let mut outs = vec![[0u16; FASTSCAN_LANES]; 1];
        active().fastscan16_multi(&block, &luts, &mut outs);
    }

    /// Differential: the lane-prune mask must be identical on every
    /// kernel set — it decides which lanes the scan loops even look at.
    #[test]
    fn lanes_le16_best_matches_scalar() {
        let best = detect_best();
        let mut state = 0x9E37u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u16
        };
        for _ in 0..200 {
            let mut accs = [0u16; FASTSCAN_LANES];
            for a in accs.iter_mut() {
                *a = next();
            }
            for bound in [0u16, 1, next(), next() / 2, u16::MAX - 1, u16::MAX] {
                let want = scalar().lanes_le16(&accs, bound);
                let got = best.lanes_le16(&accs, bound);
                assert_eq!(want, got, "accs {accs:?} bound {bound}");
                for (lane, &acc) in accs.iter().enumerate() {
                    assert_eq!(want >> lane & 1 == 1, acc <= bound, "lane {lane}");
                }
            }
        }
    }

    #[test]
    fn lanes_le16_boundaries() {
        let mut accs = [7u16; FASTSCAN_LANES];
        accs[0] = 0;
        accs[31] = u16::MAX;
        assert_eq!(active().lanes_le16(&accs, u16::MAX), u32::MAX);
        assert_eq!(active().lanes_le16(&accs, 0), 1);
        assert_eq!(active().lanes_le16(&accs, 7), u32::MAX >> 1);
        assert_eq!(active().lanes_le16(&accs, 6), 1);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(active().squared_l2(&[], &[]), 0.0);
        assert_eq!(active().dot(&[], &[]), 0.0);
        assert_eq!(active().adc(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn kernel_length_mismatch_panics() {
        active().squared_l2(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ADC table shape mismatch")]
    fn adc_shape_mismatch_panics() {
        active().adc(&[0, 1], &[0.0; ADC_ROW]);
    }
}
