//! Offline shim for the subset of `loom` used in this workspace.
//!
//! The real `loom` crate model-checks concurrent code by exhaustively
//! exploring thread interleavings under the C11 memory model. This build
//! environment has no registry access, so this shim reimplements the same
//! *API* on top of a *seeded cooperative scheduler*:
//!
//! - [`model`] runs the test body once per seed. Every instrumented
//!   operation (atomic access, lock acquisition, spawn, join, yield) is a
//!   **scheduling point**: exactly one logical thread runs at a time and
//!   the scheduler hands control to a pseudo-randomly chosen runnable
//!   thread at each point. Different seeds produce different — but
//!   reproducible — interleavings; a failing seed is printed so the exact
//!   schedule can be replayed with `JDVS_LOOM_SEED`.
//! - Because execution is serialized at every instrumented operation, the
//!   explored executions are **sequentially consistent**. The shim
//!   therefore checks interleaving correctness (publication ordering,
//!   lost updates, deadlocks, use-before-publish) but — unlike real loom —
//!   cannot surface bugs that require observable `Relaxed` reordering.
//!   The workspace's TSan leg covers that axis on real hardware.
//! - All-threads-blocked deadlocks panic immediately; lock livelocks and
//!   missed wakeups are caught by a per-iteration step budget.
//!
//! Environment knobs: `JDVS_LOOM_ITERS` (seeds explored per model,
//! default 256), `JDVS_LOOM_SEED` (run exactly one seed).
//!
//! API differences from real loom, chosen to match this workspace: the
//! [`sync::Mutex`] / [`sync::RwLock`] here expose the `parking_lot`-style
//! non-poisoning API (`lock()` returns the guard directly), because that
//! is what `jdvs-core`'s `sync` facade re-exports in both modes.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc as StdArc;

mod rt;
pub mod sync;
pub mod thread;

/// Explores the concurrent executions of `f`, one seeded schedule per
/// iteration. Panics (with the failing seed) if any execution panics.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let (start, end) = match std::env::var("JDVS_LOOM_SEED").ok().and_then(|s| s.parse().ok()) {
        Some(seed) => (seed, seed + 1),
        None => {
            let iters: u64 = std::env::var("JDVS_LOOM_ITERS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            (0, iters.max(1))
        }
    };
    for seed in start..end {
        let exec = StdArc::new(rt::Exec::new(seed));
        rt::enter(&exec, rt::MAIN_TID);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            f();
            // Loom semantics: the model ends only when every spawned
            // thread has finished; run stragglers to completion.
            rt::drain();
        }));
        rt::leave();
        if outcome.is_err() {
            // Wake every parked model thread so the OS threads can exit
            // (they observe the abandoned flag and unwind).
            exec.abandon();
        }
        exec.join_real_threads();
        if let Err(payload) = outcome {
            eprintln!("loom-shim: model failed under schedule seed {seed} (replay with JDVS_LOOM_SEED={seed})");
            resume_unwind(payload);
        }
        if exec.any_thread_panicked() {
            panic!("loom-shim: a model thread panicked under schedule seed {seed} (replay with JDVS_LOOM_SEED={seed})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex, RwLock};

    #[test]
    fn release_acquire_publication_is_preserved() {
        super::model(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = super::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
            assert_eq!(data.load(Ordering::Relaxed), 42);
        });
    }

    #[test]
    fn mutex_serializes_increments() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        for _ in 0..3 {
                            *n.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 6);
        });
    }

    #[test]
    fn rwlock_readers_see_complete_writes() {
        super::model(|| {
            let v = Arc::new(RwLock::new((0u32, 0u32)));
            let w = Arc::clone(&v);
            let t = super::thread::spawn(move || {
                let mut g = w.write();
                g.0 = 1;
                g.1 = 1;
            });
            {
                let g = v.read();
                assert_eq!(g.0, g.1, "writes under the lock are atomic");
            }
            t.join().unwrap();
        });
    }

    #[test]
    fn interleavings_actually_vary() {
        use std::sync::atomic::{AtomicBool as StdBool, Ordering as StdOrd};
        use std::sync::Arc as StdArc;
        // Writer-wins vs reader-wins must both be observed across seeds.
        let saw_zero = StdArc::new(StdBool::new(false));
        let saw_one = StdArc::new(StdBool::new(false));
        let (z, o) = (StdArc::clone(&saw_zero), StdArc::clone(&saw_one));
        super::model(move || {
            let cell = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&cell);
            let t = super::thread::spawn(move || c.store(1, Ordering::SeqCst));
            match cell.load(Ordering::SeqCst) {
                0 => z.store(true, StdOrd::SeqCst),
                _ => o.store(true, StdOrd::SeqCst),
            }
            t.join().unwrap();
        });
        assert!(saw_zero.load(StdOrd::SeqCst), "some seed must run the reader first");
        assert!(saw_one.load(StdOrd::SeqCst), "some seed must run the writer first");
    }

    #[test]
    fn thread_panics_propagate_with_seed() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let t = super::thread::spawn(|| panic!("boom"));
                let _ = t.join();
                panic!("model sees the failure");
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn spawn_outside_model_falls_back_to_std() {
        let t = super::thread::spawn(|| 7u32);
        assert_eq!(t.join().unwrap(), 7);
    }
}
