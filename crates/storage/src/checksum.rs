//! CRC32C (Castagnoli) checksums.
//!
//! Every durable byte the system writes — snapshot trailers, ingestion-log
//! record frames, checkpoint manifests — is guarded by the same checksum,
//! so corruption is detected at read time instead of decoded into garbage.
//! CRC32C is the variant production storage systems standardize on
//! (Elasticsearch translog, LevelDB/RocksDB WAL, ext4 metadata); the
//! polynomial's error-detection properties are well studied and hardware
//! acceleration exists everywhere, though this offline build uses the
//! portable slice-by-one table implementation.

/// Reflected CRC32C polynomial (Castagnoli, 0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, computed once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    })
}

/// CRC32C of `bytes` (full-message convenience over [`Crc32c`]).
///
/// # Example
///
/// ```
/// use jdvs_storage::checksum::crc32c;
///
/// // The canonical CRC32C check vector.
/// assert_eq!(crc32c(b"123456789"), 0xE306_9283);
/// ```
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32c::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Incremental CRC32C hasher for multi-part messages.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finalizes, returning the checksum (the hasher can keep updating; the
    /// finalization is a pure function of the state).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / Intel reference vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0usize, 1, 7, 100, 255] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc32c(&corrupted),
                    reference,
                    "flip at byte {byte} bit {bit} must change the checksum"
                );
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = vec![0xA5u8; 64];
        let reference = crc32c(&data);
        for cut in 0..data.len() {
            assert_ne!(crc32c(&data[..cut]), reference, "truncated at {cut}");
        }
    }
}
