//! The user-facing search client.
//!
//! A [`SearchClient`] is what the workload generator's emulated users hold:
//! a handle to the front-end load balancer plus a deadline. Clients are
//! cheap to clone — closed-loop drivers clone one per thread.

use std::sync::Arc;
use std::time::Duration;

use jdvs_net::balancer::Balancer;
use jdvs_net::node::NodeHandle;
use jdvs_net::rpc::{CallTarget, RpcError};

use crate::blender::BlenderService;
use crate::protocol::{SearchQuery, SearchResponse};

/// A cloneable user handle through the front end, generic over the
/// transport to the blender tier: in-process [`NodeHandle`]s (the default)
/// or [`jdvs_net::tcp::TcpChannel`]s when the front end listens on a
/// socket.
pub struct SearchClient<T = NodeHandle<BlenderService>>
where
    T: CallTarget<Request = SearchQuery, Response = SearchResponse>,
{
    frontend: Arc<Balancer<T>>,
    deadline: Duration,
}

impl<T> Clone for SearchClient<T>
where
    T: CallTarget<Request = SearchQuery, Response = SearchResponse>,
{
    fn clone(&self) -> Self {
        Self {
            frontend: Arc::clone(&self.frontend),
            deadline: self.deadline,
        }
    }
}

impl<T> std::fmt::Debug for SearchClient<T>
where
    T: CallTarget<Request = SearchQuery, Response = SearchResponse>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchClient")
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl<T> SearchClient<T>
where
    T: CallTarget<Request = SearchQuery, Response = SearchResponse>,
{
    /// Creates a client (usually via
    /// [`crate::topology::SearchTopology::client`]).
    pub fn new(frontend: Arc<Balancer<T>>, deadline: Duration) -> Self {
        Self { frontend, deadline }
    }

    /// The per-query deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Executes one query, stamping the client deadline as the query's
    /// end-to-end budget (unless the caller already stamped one); every
    /// hop below deducts its own elapsed time from that budget.
    ///
    /// # Errors
    ///
    /// Propagates the last [`RpcError`] if every blender fails.
    pub fn search(&self, mut query: SearchQuery) -> Result<SearchResponse, RpcError> {
        if query.budget.is_none() {
            query.budget = Some(self.deadline);
        }
        self.frontend.call(query, self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::RankingPolicy;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
    use jdvs_net::node::Node;
    use jdvs_storage::ImageStore;

    // A minimal single-blender stack that always answers empty (blender
    // with an unknown-image query path); enough to exercise the client.
    fn tiny_frontend() -> (
        Arc<Balancer<NodeHandle<BlenderService>>>,
        Vec<Node<BlenderService>>,
    ) {
        use crate::broker::BrokerService;
        use crate::searcher::SearcherService;
        use jdvs_core::{IndexConfig, VisualIndex};
        use jdvs_vector::Vector;
        let images = Arc::new(ImageStore::with_blob_len(32));
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: 4,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: 4,
                num_lists: 1,
                ..Default::default()
            },
            &[Vector::from(vec![0.0; 4])],
        ));
        let searcher = Node::spawn("s", SearcherService::for_index(0, index), 1);
        let broker = Node::spawn(
            "b",
            BrokerService::new(
                0,
                vec![Balancer::new(vec![searcher.handle()])],
                Duration::from_secs(1),
            ),
            1,
        );
        let blender = Node::spawn(
            "bl",
            BlenderService::new(
                vec![Balancer::new(vec![broker.handle()])],
                extractor,
                images,
                RankingPolicy::default(),
                Duration::from_secs(1),
            ),
            1,
        );
        let frontend = Arc::new(Balancer::new(vec![blender.handle()]));
        (frontend, vec![blender])
        // searcher/broker nodes intentionally leak into the test scope via
        // closure capture in handles; they stay alive because handles hold
        // Arcs to their shared state.
    }

    #[test]
    fn client_round_trip() {
        let (frontend, _nodes) = tiny_frontend();
        let client = SearchClient::new(frontend, Duration::from_secs(2));
        assert_eq!(client.deadline(), Duration::from_secs(2));
        let resp = client
            .search(SearchQuery::by_image_url("missing", 3))
            .unwrap();
        assert!(resp.results.is_empty());
    }

    #[test]
    fn clients_clone_cheaply() {
        let (frontend, _nodes) = tiny_frontend();
        let client = SearchClient::new(frontend, Duration::from_secs(2));
        let clones: Vec<SearchClient> = (0..8).map(|_| client.clone()).collect();
        for c in clones {
            let _ = c.search(SearchQuery::by_image_url("missing", 1)).unwrap();
        }
    }
}
