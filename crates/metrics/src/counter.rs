//! Monotonic event counters.
//!
//! Table 1 and Figure 11(a) are, at heart, counters: updates, additions and
//! deletions processed per hour and per day. [`Counter`] is a thin wrapper
//! over `AtomicU64` with relaxed ordering — counts are statistics, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe monotonic counter.
///
/// # Example
///
/// ```
/// use jdvs_metrics::Counter;
///
/// let c = Counter::new();
/// c.incr();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one, returning the previous value.
    pub fn incr(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds `n`, returning the previous value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the value at reset time.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self {
            value: AtomicU64::new(self.get()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Counter::new().get(), 0);
    }

    #[test]
    fn incr_and_add_accumulate() {
        let c = Counter::new();
        assert_eq!(c.incr(), 0);
        assert_eq!(c.add(10), 1);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn reset_returns_and_clears() {
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.incr();
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
