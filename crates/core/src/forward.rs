//! The forward index.
//!
//! Section 2.2: *"Each image is numbered sequentially and the product
//! attributes of the image are stored in a forward index, which is a custom
//! array... The numeric attributes such as product ID, sales, price are
//! stored in the fixed-length fields in the array. The variable length
//! attributes like URL are stored in an additional buffer, and the offset
//! of the attribute in the buffer is recorded in the array."*
//!
//! Section 2.3 (Figure 7): *"the associated images' attributes in the
//! forward index are updated. This operation is atomic and there is no
//! conflict between search and update processes for maximum concurrency."*
//!
//! [`ForwardIndex`] realizes that design:
//!
//! - records live in fixed-size chunks that are never moved, so a record's
//!   address is stable for the life of the index;
//! - every fixed-length field is an `AtomicU64` cell — updates are
//!   single-word atomic stores, reads are single-word atomic loads, and a
//!   reader can never observe a torn value;
//! - the URL is a [`PackedRef`] into the [`VarBuffer`], stored in one more
//!   atomic cell — a URL update appends the new bytes and swings this word;
//! - appended records become visible when the global `len` counter is
//!   bumped with release ordering (single appender per partition).

use crate::sync::{Arc, AtomicU64, Ordering, RwLock, RwLockReadGuard};

use jdvs_storage::model::{ProductAttributes, ProductId};

use crate::buffer::{PackedRef, VarBuffer};
use crate::error::IndexError;
use crate::ids::ImageId;

/// Records per chunk.
const CHUNK_RECORDS: usize = 4096;

/// One fixed-length record: the numeric attribute cells plus the packed
/// URL reference (Figure 7's update targets). Category and stock state are
/// one cell each so filtered search can read them with the same single-word
/// atomicity as the ranking attributes.
#[derive(Debug, Default)]
struct Record {
    product_id: AtomicU64,
    sales: AtomicU64,
    price: AtomicU64,
    praise: AtomicU64,
    category: AtomicU64,
    in_stock: AtomicU64,
    url_ref: AtomicU64,
}

struct Chunk {
    records: Box<[Record]>,
}

impl Chunk {
    fn new() -> Self {
        let mut v = Vec::with_capacity(CHUNK_RECORDS);
        v.resize_with(CHUNK_RECORDS, Record::default);
        Self {
            records: v.into_boxed_slice(),
        }
    }
}

/// A snapshot of one record's numeric fields (read atomically field-by-
/// field; each field is internally consistent, which is the paper's
/// guarantee — it does not promise cross-field transactionality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericAttributes {
    /// Owning product.
    pub product_id: ProductId,
    /// Sales count.
    pub sales: u64,
    /// Price in minor units.
    pub price: u64,
    /// Praise count.
    pub praise: u64,
    /// Product category id.
    pub category: u32,
    /// Whether the product is currently purchasable.
    pub in_stock: bool,
}

/// The forward index; see the module docs.
pub struct ForwardIndex {
    chunks: RwLock<Vec<Arc<Chunk>>>,
    len: AtomicU64,
    buffer: VarBuffer,
}

impl std::fmt::Debug for ForwardIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForwardIndex")
            .field("len", &self.len())
            .finish()
    }
}

impl Default for ForwardIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ForwardIndex {
    /// Creates an empty forward index with its own attribute buffer.
    pub fn new() -> Self {
        Self {
            chunks: RwLock::new(Vec::new()),
            len: AtomicU64::new(0),
            buffer: VarBuffer::new(),
        }
    }

    /// Number of records (images ever appended; logical deletion does not
    /// shrink the forward index — the bitmap handles liveness).
    pub fn len(&self) -> usize {
        // Acquire: pairs with the Release store in `append`, so a reader
        // that observes `len > id` also observes record `id`'s field
        // stores (and the buffer bytes behind its url_ref).
        self.len.load(Ordering::Acquire) as usize
    }

    /// Returns `true` if no image has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a record, returning the new image's sequential id.
    ///
    /// Single-appender discipline: one thread per partition appends (the
    /// searcher that owns the partition); concurrent readers are unlimited.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::CapacityExhausted`] if the `u32` id space is
    /// full, or [`IndexError::AttributeTooLarge`] if the URL exceeds the
    /// buffer record limit.
    pub fn append(&self, attrs: &ProductAttributes) -> Result<ImageId, IndexError> {
        // Relaxed: `len` is only advanced by the single appender (this
        // thread), so the latest value is always visible to it.
        let id = self.len.load(Ordering::Relaxed);
        if id > u64::from(u32::MAX) {
            return Err(IndexError::CapacityExhausted);
        }
        let url_ref = self.buffer.append(attrs.url.as_bytes())?;
        let chunk_idx = (id as usize) / CHUNK_RECORDS;
        let rec_idx = (id as usize) % CHUNK_RECORDS;
        {
            let chunks = self.chunks.read();
            if chunks.len() <= chunk_idx {
                drop(chunks);
                let mut chunks = self.chunks.write();
                while chunks.len() <= chunk_idx {
                    chunks.push(Arc::new(Chunk::new()));
                }
            }
        }
        let chunks = self.chunks.read();
        let rec = &chunks[chunk_idx].records[rec_idx];
        // Relaxed field stores: record `id` is unreachable until the
        // Release `len` store below publishes it, which orders all five.
        rec.product_id.store(attrs.product_id.0, Ordering::Relaxed);
        rec.sales.store(attrs.sales, Ordering::Relaxed);
        rec.price.store(attrs.price, Ordering::Relaxed);
        rec.praise.store(attrs.praise, Ordering::Relaxed);
        rec.category
            .store(u64::from(attrs.category), Ordering::Relaxed);
        rec.in_stock
            .store(u64::from(attrs.in_stock), Ordering::Relaxed);
        rec.url_ref.store(url_ref.as_raw(), Ordering::Relaxed);
        drop(chunks);
        // Release: pairs with the Acquire in `len()`; readers that observe
        // len > id see fully-written fields.
        self.len.store(id + 1, Ordering::Release);
        Ok(ImageId(id as u32))
    }

    fn record(&self, id: ImageId) -> Result<Arc<Chunk>, IndexError> {
        if id.as_usize() >= self.len() {
            return Err(IndexError::UnknownImage(id));
        }
        Ok(Arc::clone(
            &self.chunks.read()[id.as_usize() / CHUNK_RECORDS],
        ))
    }

    /// Reads the numeric attributes of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids.
    pub fn numeric(&self, id: ImageId) -> Result<NumericAttributes, IndexError> {
        let chunk = self.record(id)?;
        let rec = &chunk.records[id.as_usize() % CHUNK_RECORDS];
        // Relaxed loads: the record was published by the Acquire `len`
        // check in `record()`, and later in-place updates are single-word
        // stores with no cross-field ordering promise (module docs).
        Ok(NumericAttributes {
            product_id: ProductId(rec.product_id.load(Ordering::Relaxed)),
            sales: rec.sales.load(Ordering::Relaxed),
            price: rec.price.load(Ordering::Relaxed),
            praise: rec.praise.load(Ordering::Relaxed),
            category: rec.category.load(Ordering::Relaxed) as u32,
            in_stock: rec.in_stock.load(Ordering::Relaxed) != 0,
        })
    }

    /// Reads the URL of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids, or
    /// [`IndexError::CorruptReference`] if the stored reference word does
    /// not decode to bytes the attribute buffer allocated.
    pub fn url(&self, id: ImageId) -> Result<String, IndexError> {
        let chunk = self.record(id)?;
        let rec = &chunk.records[id.as_usize() % CHUNK_RECORDS];
        // Acquire: pairs with the Release store in `update_url`, making
        // the appended URL bytes visible before the reference is decoded.
        let r = PackedRef::from_raw(rec.url_ref.load(Ordering::Acquire));
        self.buffer.read_string(r)
    }

    /// Reads the full attribute record of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids, or
    /// [`IndexError::CorruptReference`] for a corrupt stored URL reference.
    pub fn attributes(&self, id: ImageId) -> Result<ProductAttributes, IndexError> {
        let n = self.numeric(id)?;
        let url = self.url(id)?;
        Ok(
            ProductAttributes::new(n.product_id, n.sales, n.price, n.praise, url)
                .with_category(n.category)
                .with_stock(n.in_stock),
        )
    }

    /// Atomically updates the numeric attributes present in the arguments
    /// (Figure 7: each changed field is one atomic store; concurrent
    /// searches see either the old or the new value, never garbage).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids.
    pub fn update_numeric(
        &self,
        id: ImageId,
        sales: Option<u64>,
        price: Option<u64>,
        praise: Option<u64>,
    ) -> Result<(), IndexError> {
        let chunk = self.record(id)?;
        let rec = &chunk.records[id.as_usize() % CHUNK_RECORDS];
        if let Some(s) = sales {
            rec.sales.store(s, Ordering::Relaxed);
        }
        if let Some(p) = price {
            rec.price.store(p, Ordering::Relaxed);
        }
        if let Some(p) = praise {
            rec.praise.store(p, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Updates the category and stock cells (a re-listing's refresh path).
    /// Each field is one atomic store, same contract as
    /// [`ForwardIndex::update_numeric`].
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids.
    pub fn update_listing(
        &self,
        id: ImageId,
        category: u32,
        in_stock: bool,
    ) -> Result<(), IndexError> {
        let chunk = self.record(id)?;
        let rec = &chunk.records[id.as_usize() % CHUNK_RECORDS];
        rec.category.store(u64::from(category), Ordering::Relaxed);
        rec.in_stock.store(u64::from(in_stock), Ordering::Relaxed);
        Ok(())
    }

    /// Pins the chunk spine once and returns a reader for repeated numeric
    /// reads — the filtered-scan hot path: one read-lock acquisition covers
    /// a whole query instead of one per candidate (the same pattern as
    /// [`crate::bitmap::AtomicBitmap::reader`]). In-place attribute updates
    /// made while the reader is live remain visible (the cells are
    /// atomics); only records appended past the pinned length read as
    /// absent, and those are invisible to the scan's snapshot anyway.
    pub fn reader(&self) -> ForwardReader<'_> {
        let len = self.len();
        ForwardReader {
            chunks: self.chunks.read(),
            len,
        }
    }

    /// Updates the variable-length URL: appends the new value to the buffer
    /// and swings the packed reference word (Section 2.3's varying-length
    /// update protocol). Old bytes stay readable for in-flight readers.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids or
    /// [`IndexError::AttributeTooLarge`] for oversized values.
    pub fn update_url(&self, id: ImageId, url: &str) -> Result<(), IndexError> {
        let chunk = self.record(id)?;
        let new_ref = self.buffer.append(url.as_bytes())?;
        let rec = &chunk.records[id.as_usize() % CHUNK_RECORDS];
        // Release: pairs with the Acquire load in `url`; a reader that
        // decodes the new reference also sees the bytes appended above.
        rec.url_ref.store(new_ref.as_raw(), Ordering::Release);
        Ok(())
    }

    /// The underlying variable-length buffer (exposed for stats).
    pub fn buffer(&self) -> &VarBuffer {
        &self.buffer
    }
}

/// A pinned view of the forward index for repeated numeric reads; see
/// [`ForwardIndex::reader`].
pub struct ForwardReader<'a> {
    chunks: RwLockReadGuard<'a, Vec<Arc<Chunk>>>,
    len: usize,
}

impl std::fmt::Debug for ForwardReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForwardReader")
            .field("len", &self.len)
            .finish()
    }
}

impl ForwardReader<'_> {
    /// Records visible to this reader.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the pinned view holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the numeric attributes of record `id`; `None` beyond the
    /// pinned length.
    #[inline]
    pub fn numeric(&self, id: usize) -> Option<NumericAttributes> {
        if id >= self.len {
            return None;
        }
        let rec = &self.chunks[id / CHUNK_RECORDS].records[id % CHUNK_RECORDS];
        Some(NumericAttributes {
            product_id: ProductId(rec.product_id.load(Ordering::Relaxed)),
            sales: rec.sales.load(Ordering::Relaxed),
            price: rec.price.load(Ordering::Relaxed),
            praise: rec.praise.load(Ordering::Relaxed),
            category: rec.category.load(Ordering::Relaxed) as u32,
            in_stock: rec.in_stock.load(Ordering::Relaxed) != 0,
        })
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn attrs(product: u64, url: &str) -> ProductAttributes {
        ProductAttributes::new(ProductId(product), 100, 1999, 50, url.to_string())
    }

    #[test]
    fn append_assigns_sequential_ids() {
        let fwd = ForwardIndex::new();
        assert_eq!(fwd.append(&attrs(1, "u1")).unwrap(), ImageId(0));
        assert_eq!(fwd.append(&attrs(2, "u2")).unwrap(), ImageId(1));
        assert_eq!(fwd.len(), 2);
        assert!(!fwd.is_empty());
    }

    #[test]
    fn round_trips_attributes() {
        let fwd = ForwardIndex::new();
        let a = attrs(7, "https://img.jd.com/7/0.jpg");
        let id = fwd.append(&a).unwrap();
        assert_eq!(fwd.attributes(id).unwrap(), a);
        let n = fwd.numeric(id).unwrap();
        assert_eq!(n.product_id, ProductId(7));
        assert_eq!(n.sales, 100);
        assert_eq!(n.price, 1999);
        assert_eq!(n.praise, 50);
        assert_eq!(fwd.url(id).unwrap(), "https://img.jd.com/7/0.jpg");
    }

    #[test]
    fn unknown_id_errors() {
        let fwd = ForwardIndex::new();
        assert_eq!(
            fwd.numeric(ImageId(0)).unwrap_err(),
            IndexError::UnknownImage(ImageId(0))
        );
        fwd.append(&attrs(1, "u")).unwrap();
        assert!(fwd.numeric(ImageId(0)).is_ok());
        assert!(fwd.numeric(ImageId(1)).is_err());
    }

    #[test]
    fn numeric_update_is_selective() {
        let fwd = ForwardIndex::new();
        let id = fwd.append(&attrs(1, "u")).unwrap();
        fwd.update_numeric(id, Some(500), None, None).unwrap();
        let n = fwd.numeric(id).unwrap();
        assert_eq!(n.sales, 500);
        assert_eq!(n.price, 1999, "unspecified fields unchanged");
        fwd.update_numeric(id, None, Some(999), Some(3)).unwrap();
        let n = fwd.numeric(id).unwrap();
        assert_eq!(n.price, 999);
        assert_eq!(n.praise, 3);
        assert_eq!(n.sales, 500);
    }

    #[test]
    fn listing_cells_round_trip_and_update() {
        let fwd = ForwardIndex::new();
        let a = attrs(1, "u").with_category(9).with_stock(false);
        let id = fwd.append(&a).unwrap();
        let n = fwd.numeric(id).unwrap();
        assert_eq!(n.category, 9);
        assert!(!n.in_stock);
        assert_eq!(fwd.attributes(id).unwrap(), a);
        fwd.update_listing(id, 12, true).unwrap();
        let n = fwd.numeric(id).unwrap();
        assert_eq!(n.category, 12);
        assert!(n.in_stock);
        assert!(fwd.update_listing(ImageId(5), 0, true).is_err());
    }

    #[test]
    fn pinned_reader_matches_numeric_and_sees_live_updates() {
        let fwd = ForwardIndex::new();
        for i in 0..10u64 {
            fwd.append(&attrs(i, &format!("u{i}"))).unwrap();
        }
        let r = fwd.reader();
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        for i in 0..10usize {
            assert_eq!(
                r.numeric(i).unwrap(),
                fwd.numeric(ImageId(i as u32)).unwrap()
            );
        }
        assert!(r.numeric(10).is_none(), "beyond pinned length reads absent");
        // An in-place update made while the reader is pinned is visible —
        // the filtered scan's freshness contract.
        fwd.update_numeric(ImageId(3), Some(777), None, None)
            .unwrap();
        assert_eq!(r.numeric(3).unwrap().sales, 777);
    }

    #[test]
    fn url_update_swings_reference() {
        let fwd = ForwardIndex::new();
        let id = fwd.append(&attrs(1, "old-url")).unwrap();
        fwd.update_url(id, "new-url").unwrap();
        assert_eq!(fwd.url(id).unwrap(), "new-url");
    }

    #[test]
    fn spans_multiple_chunks() {
        let fwd = ForwardIndex::new();
        let n = CHUNK_RECORDS + 10;
        for i in 0..n {
            fwd.append(&attrs(i as u64, &format!("u{i}"))).unwrap();
        }
        assert_eq!(fwd.len(), n);
        assert_eq!(fwd.attributes(ImageId(0)).unwrap().url, "u0");
        let last = ImageId((n - 1) as u32);
        assert_eq!(fwd.attributes(last).unwrap().url, format!("u{}", n - 1));
        assert_eq!(
            fwd.numeric(last).unwrap().product_id,
            ProductId((n - 1) as u64)
        );
    }

    #[test]
    fn concurrent_readers_with_updates_never_see_torn_values() {
        let fwd = StdArc::new(ForwardIndex::new());
        let id = fwd.append(&attrs(1, "u")).unwrap();
        // Writer flips between two consistent field values; readers must
        // only ever observe one of the two per field.
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let fwd = StdArc::clone(&fwd);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let n = fwd.numeric(id).unwrap();
                        assert!(
                            n.sales == 100 || n.sales == 77_777,
                            "torn sales {}",
                            n.sales
                        );
                        assert!(n.price == 1999 || n.price == 1, "torn price {}", n.price);
                    }
                })
            })
            .collect();
        for i in 0..20_000 {
            if i % 2 == 0 {
                fwd.update_numeric(id, Some(77_777), Some(1), None).unwrap();
            } else {
                fwd.update_numeric(id, Some(100), Some(1999), None).unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_readers_during_appends_see_only_published_records() {
        let fwd = StdArc::new(ForwardIndex::new());
        let stop = StdArc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let fwd = StdArc::clone(&fwd);
                let stop = StdArc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let len = fwd.len();
                        if len > 0 {
                            // Any published record must read back consistent.
                            let id = ImageId((len - 1) as u32);
                            let a = fwd.attributes(id).unwrap();
                            assert_eq!(a.product_id.0, u64::from(id.0));
                            assert_eq!(a.url, format!("u{}", id.0));
                        }
                    }
                })
            })
            .collect();
        for i in 0..10_000u64 {
            fwd.append(&attrs(i, &format!("u{i}"))).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(fwd.len(), 10_000);
    }
}
