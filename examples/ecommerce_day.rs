//! Replay a (scaled) production day — the Section 3.1 operation story.
//!
//! ```sh
//! cargo run --release --example ecommerce_day
//! ```
//!
//! Generates a day of catalog updates with Table 1's mix (32% attribute
//! updates, 53% additions — ~98.5% of them re-listings — 14% deletions)
//! and Figure 11(a)'s hourly curve, replays it through the live real-time
//! indexers while measuring per-event apply latency, and prints the
//! Table-1 / Figure-11 analogues.

use std::time::{Duration, Instant};

use jdvs::metrics::HourlySeries;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::events::{DailyPlan, DailyPlanConfig};
use jdvs::workload::scenario::{World, WorldConfig};

fn main() {
    let scale_events = 20_000usize; // 977 M × ~2e-5
    println!("jdvs e-commerce day replay — {scale_events} events (977 M scaled)\n");

    let mut world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: scale_events, // sized so re-listings never starve
            num_clusters: 100,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    });

    let store = std::sync::Arc::clone(world.images());
    let plan = DailyPlan::generate(
        world.catalog_mut(),
        &store,
        &DailyPlanConfig {
            total_events: scale_events,
            seed: 11,
            ..Default::default()
        },
    );

    // Table 1 analogue.
    let c = plan.counts();
    println!(
        "Table 1 (scaled): total={} updates={} additions={} (re-listings={}) deletions={}",
        c.total, c.updates, c.additions, c.relists, c.deletions
    );
    println!(
        "  mix: {:.1}% updates / {:.1}% additions / {:.1}% deletions; re-list share {:.1}%\n",
        100.0 * c.updates as f64 / c.total as f64,
        100.0 * c.additions as f64 / c.total as f64,
        100.0 * c.deletions as f64 / c.total as f64,
        100.0 * c.relists as f64 / c.additions as f64,
    );

    // Replay through the live queue, tracking apply latency per hour.
    // (Publishing in order; the topology's per-partition indexers consume.)
    let series = HourlySeries::new();
    let reuse_before: u64 = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.stats().reuses.get())
        .sum();
    let t0 = Instant::now();
    for te in plan.events() {
        let before = world.topology().queue().len();
        let start = Instant::now();
        world.topology().publish(te.event.clone());
        // Apply latency ≈ time until every indexer consumed this event.
        while world.topology().max_indexer_lag() > 0 {
            std::hint::spin_loop();
        }
        let _ = before;
        series.record(te.hour, start.elapsed().as_micros() as u64);
    }
    world.topology().wait_for_freshness(Duration::from_secs(60));
    let wall = t0.elapsed();
    let reuse_after: u64 = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.stats().reuses.get())
        .sum();

    println!(
        "replayed {} events in {:?} ({:.0} events/s)",
        c.total,
        wall,
        c.total as f64 / wall.as_secs_f64()
    );
    println!(
        "feature reuse events during replay: {}\n",
        reuse_after - reuse_before
    );

    // Figure 11(a) analogue: hourly rates.
    println!("Figure 11(a) (scaled): hourly real-time index updates");
    let hourly = plan.hourly_counts();
    let max_total: u64 = (0..24)
        .map(|h| hourly[h].iter().sum::<u64>())
        .max()
        .unwrap_or(1);
    for (h, counts) in hourly.iter().enumerate() {
        let total: u64 = counts.iter().sum();
        let bar = "#".repeat((total * 40 / max_total.max(1)) as usize);
        println!(
            "  {h:>2}:00  upd={:>5} add={:>5} del={:>5} total={:>6} {bar}",
            counts[0], counts[1], counts[2], total
        );
    }
    println!("  peak hour: {}:00 (paper: 11:00)\n", plan.peak_hour());

    // Figure 11(b) analogue: apply latency per hour.
    println!("Figure 11(b) (scaled): real-time index apply latency by hour");
    for (h, (mean, p90, p99)) in series.latency_stats().iter().enumerate() {
        if series.hour_histogram(h).count() == 0 {
            continue;
        }
        println!(
            "  {h:>2}:00  mean={:>8.1}µs p90={:>6}µs p99={:>6}µs",
            mean, p90, p99
        );
    }
    let day = series.day_histogram();
    println!("  whole day: {}", day.summary());
    println!("\nday replay OK");
}
