//! Adaptive (learned) ranking — the paper's stated future work.
//!
//! Section 5: *"We plan on integrating advanced search and ranking
//! algorithms into our visual search system in the future work."*
//!
//! [`AdaptiveRanking`] is that integration point: an online logistic
//! model over the same signals the static [`crate::ranking::RankingPolicy`]
//! blends (visual similarity, sales, praise, price), trained from click
//! feedback with per-impression SGD. The blender can rank with it directly;
//! the serving path stays identical, only the scorer changes — which is
//! exactly how ranking models are swapped in production systems.
//!
//! The model is deliberately compact (5 weights, atomic-free reads via a
//! lock): this is the *systems* integration of learned ranking, not a
//! leaderboard model.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::{PartialHit, RankedHit};

/// Number of model features (bias + 4 signals).
pub const NUM_FEATURES: usize = 5;

/// An online logistic ranking model; see the module docs.
#[derive(Debug)]
pub struct AdaptiveRanking {
    /// `[bias, similarity, log1p(sales), log1p(praise), 1/(1+log1p(price))]`.
    weights: RwLock<[f64; NUM_FEATURES]>,
    learning_rate: f64,
    updates: AtomicU64,
}

impl Default for AdaptiveRanking {
    fn default() -> Self {
        Self::new(0.05)
    }
}

impl AdaptiveRanking {
    /// Creates a model with similarity-dominant initial weights (it starts
    /// out behaving like the static policy and drifts with feedback).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive and finite.
    pub fn new(learning_rate: f64) -> Self {
        assert!(
            learning_rate > 0.0 && learning_rate.is_finite(),
            "learning rate must be positive and finite"
        );
        Self {
            weights: RwLock::new([0.0, 2.0, 0.05, 0.02, 0.01]),
            learning_rate,
            updates: AtomicU64::new(0),
        }
    }

    /// The feature vector of a hit.
    pub fn features(hit: &PartialHit) -> [f64; NUM_FEATURES] {
        [
            1.0,
            1.0 / (1.0 + f64::from(hit.distance)),
            (hit.sales as f64).ln_1p(),
            (hit.praise as f64).ln_1p(),
            1.0 / (1.0 + (hit.price as f64).ln_1p()),
        ]
    }

    fn dot(weights: &[f64; NUM_FEATURES], x: &[f64; NUM_FEATURES]) -> f64 {
        weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// Predicted click probability for a hit.
    pub fn score(&self, hit: &PartialHit) -> f64 {
        let x = Self::features(hit);
        let z = Self::dot(&self.weights.read(), &x);
        1.0 / (1.0 + (-z).exp())
    }

    /// Ranks hits by predicted click probability, deduplicating by product
    /// and truncating to `k` (same contract as the static policy).
    pub fn rank(&self, hits: Vec<PartialHit>, k: usize) -> Vec<RankedHit> {
        let weights = *self.weights.read();
        let mut scored: Vec<RankedHit> = hits
            .into_iter()
            .map(|h| {
                let z = Self::dot(&weights, &Self::features(&h));
                RankedHit {
                    score: 1.0 / (1.0 + (-z).exp()),
                    hit: h,
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.hit.url.cmp(&b.hit.url))
        });
        let mut seen = std::collections::HashSet::new();
        scored.retain(|r| seen.insert(r.hit.product_id));
        scored.truncate(k);
        scored
    }

    /// Records one impression outcome: the user clicked (`true`) or
    /// skipped (`false`) this hit. One SGD step on the logistic loss.
    pub fn record_feedback(&self, hit: &PartialHit, clicked: bool) {
        let x = Self::features(hit);
        let mut weights = self.weights.write();
        let z = Self::dot(&weights, &x);
        let p = 1.0 / (1.0 + (-z).exp());
        let gradient = p - f64::from(u8::from(clicked));
        for (w, v) in weights.iter_mut().zip(&x) {
            *w -= self.learning_rate * gradient * v;
        }
        drop(weights);
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the current weights.
    pub fn weights(&self) -> [f64; NUM_FEATURES] {
        *self.weights.read()
    }

    /// Number of feedback events applied.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_storage::model::ProductId;

    fn hit(product: u64, distance: f32, sales: u64, price: u64) -> PartialHit {
        PartialHit {
            partition: 0,
            local_id: product as u32,
            distance,
            product_id: ProductId(product),
            sales,
            price,
            praise: 0,
            url: format!("u{product}"),
        }
    }

    #[test]
    fn initial_model_prefers_similarity() {
        let model = AdaptiveRanking::default();
        assert!(model.score(&hit(1, 0.1, 0, 100)) > model.score(&hit(2, 3.0, 0, 100)));
    }

    #[test]
    fn scores_are_probabilities() {
        let model = AdaptiveRanking::default();
        for h in [hit(1, 0.0, 1_000_000, 1), hit(2, 100.0, 0, u64::MAX / 2)] {
            let s = model.score(&h);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn click_feedback_shifts_preferences_toward_cheap_items() {
        let model = AdaptiveRanking::new(0.1);
        let cheap = hit(1, 1.0, 10, 50);
        let pricey = hit(2, 1.0, 10, 5_000_000);
        let before = model.score(&cheap) - model.score(&pricey);
        // Users click cheap items and skip expensive ones, repeatedly.
        for _ in 0..500 {
            model.record_feedback(&cheap, true);
            model.record_feedback(&pricey, false);
        }
        let after = model.score(&cheap) - model.score(&pricey);
        assert!(after > before, "gap must widen: {before} → {after}");
        assert!(model.score(&cheap) > model.score(&pricey));
        assert_eq!(model.updates(), 1_000);
    }

    #[test]
    fn rank_dedupes_and_sorts_like_static_policy() {
        let model = AdaptiveRanking::default();
        let hits = vec![hit(1, 2.0, 0, 0), hit(1, 0.1, 0, 0), hit(2, 1.0, 0, 0)];
        let ranked = model.rank(hits, 5);
        assert_eq!(ranked.len(), 2, "deduped by product");
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(ranked[0].hit.product_id, ProductId(1));
        assert!(
            (ranked[0].hit.distance - 0.1).abs() < 1e-6,
            "best image per product"
        );
    }

    #[test]
    fn training_converges_on_a_separable_pattern() {
        // Clicks depend only on sales; the model must learn to rank a
        // high-sales far item above a low-sales near item.
        let model = AdaptiveRanking::new(0.05);
        let popular_far = hit(1, 2.0, 100_000, 100);
        let obscure_near = hit(2, 0.5, 0, 100);
        assert!(
            model.score(&obscure_near) > model.score(&popular_far),
            "starts similarity-led"
        );
        for _ in 0..2_000 {
            model.record_feedback(&popular_far, true);
            model.record_feedback(&obscure_near, false);
        }
        assert!(
            model.score(&popular_far) > model.score(&obscure_near),
            "feedback overrides the similarity prior"
        );
    }

    #[test]
    fn concurrent_feedback_is_safe() {
        use std::sync::Arc;
        let model = Arc::new(AdaptiveRanking::new(0.01));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        model.record_feedback(&hit(t * 500 + i, 1.0, i, 100), i % 2 == 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(model.updates(), 2_000);
        assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn invalid_learning_rate_panics() {
        AdaptiveRanking::new(0.0);
    }
}
