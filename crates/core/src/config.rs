//! Index configuration.

use serde::{Deserialize, Serialize};

/// Configuration for a partition's [`crate::index::VisualIndex`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Feature vector dimensionality.
    pub dim: usize,
    /// Number of inverted lists (the paper's `N`, = k-means `k`).
    pub num_lists: usize,
    /// Pre-allocated slots per inverted list (Section 2.3's "the memory of
    /// an inverted list is pre-allocated"). Lists double from here.
    pub initial_list_capacity: usize,
    /// Default number of inverted lists probed per query.
    pub nprobe: usize,
    /// Copy old-slab contents on a background thread during expansion
    /// (Figure 9's design). `false` copies inline — the ablation baseline.
    pub background_expansion: bool,
    /// k-means training: maximum Lloyd iterations.
    pub kmeans_iters: usize,
    /// k-means training: sample size cap (training on every image would
    /// dominate full-index build time).
    pub train_sample: usize,
    /// Product-quantized scan mode: `Some(m)` additionally stores an
    /// `m`-byte PQ code per image and enables
    /// [`crate::index::VisualIndex::search_compressed`] (two-stage ADC
    /// scan + raw rerank). `m` must divide `dim`. `None` scans raw
    /// vectors only — the paper's baseline behaviour.
    pub pq_subspaces: Option<usize>,
    /// Bits per PQ code: `8` (classic per-byte ADC scan) or `4` (fast-scan:
    /// 16-centroid sub-codebooks packed two codes per byte, scanned with
    /// register-resident SIMD lookup tables and re-ranked exactly).
    /// Ignored when `pq_subspaces` is `None`.
    pub pq_bits: u8,
    /// Two-stage compressed search over-fetch: stage 1 shortlists
    /// `k · rerank_factor` candidates by (quantized) ADC distance, stage 2
    /// re-ranks them with exact f32 distances. Must be positive.
    pub rerank_factor: usize,
    /// Intra-query parallelism: maximum scoped threads a single search may
    /// fan its probed lists across. `1` (the default) scans sequentially on
    /// the calling thread; values above 1 only engage when the probed lists
    /// hold enough candidates to amortize thread spawn (small queries stay
    /// sequential regardless). Results are identical either way — per-thread
    /// top-k collectors merge under a total order on (distance, id).
    pub intra_query_threads: usize,
    /// Selectivity-aware probe escalation for **filtered** searches: when a
    /// filtered scan cannot fill its top-k from the base `nprobe` lists,
    /// probing widens (doubling each round, scanning only the newly added
    /// lists) until the top-k fills or this many lists have been probed.
    /// `0` disables escalation; unfiltered searches never escalate. A
    /// serving-time knob like `intra_query_threads` — not persisted in
    /// snapshots.
    pub nprobe_escalation: usize,
    /// Hierarchical coarse quantizer: beam width (`ef`) of the navigable
    /// small-world graph searched over the trained centroids instead of the
    /// flat `O(num_lists)` centroid scan. `0` disables the graph (flat scan,
    /// the exact baseline); positive values search with an effective beam of
    /// `max(coarse_beam_width, nprobe)`, and a beam at or above `num_lists`
    /// degenerates to the flat scan's exact output. Worth enabling from a
    /// few thousand lists up, where centroid assignment dominates pre-kernel
    /// query cost. Persisted (format v5): assignment results shape the index
    /// contents, so a reloaded partition must probe identically.
    pub coarse_beam_width: usize,
    /// Imbalance-aware k-means training: when `> 0`, each Lloyd iteration
    /// splits clusters whose population exceeds `coarse_balance_factor ×`
    /// the mean count by reseating the smallest clusters' centroids onto
    /// their farthest members (hot inverted lists dominate tail latency at
    /// 10k+ lists). `0.0` keeps plain Lloyd. Persisted (format v5) for
    /// training provenance.
    pub coarse_balance_factor: f64,
    /// Master seed for quantizer training.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            num_lists: 64,
            initial_list_capacity: 64,
            nprobe: 4,
            background_expansion: true,
            kmeans_iters: 15,
            train_sample: 10_000,
            pq_subspaces: None,
            pq_bits: 8,
            rerank_factor: 4,
            intra_query_threads: 1,
            nprobe_escalation: 0,
            coarse_beam_width: 0,
            coarse_balance_factor: 0.0,
            seed: 0x1D05,
        }
    }
}

impl IndexConfig {
    /// Validates invariants; called by index constructors.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero where a positive value is required.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.num_lists > 0, "num_lists must be positive");
        assert!(
            self.initial_list_capacity > 0,
            "initial_list_capacity must be positive"
        );
        assert!(self.nprobe > 0, "nprobe must be positive");
        assert!(self.train_sample > 0, "train_sample must be positive");
        assert!(
            self.intra_query_threads > 0,
            "intra_query_threads must be positive"
        );
        assert!(
            self.pq_bits == 4 || self.pq_bits == 8,
            "pq_bits must be 4 or 8"
        );
        assert!(self.rerank_factor > 0, "rerank_factor must be positive");
        if let Some(m) = self.pq_subspaces {
            assert!(m > 0, "pq_subspaces must be positive");
            assert!(
                self.dim.is_multiple_of(m),
                "pq_subspaces ({m}) must divide dim ({})",
                self.dim
            );
        }
        assert!(
            self.coarse_balance_factor >= 0.0 && self.coarse_balance_factor.is_finite(),
            "coarse_balance_factor must be finite and non-negative"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        IndexConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        IndexConfig {
            dim: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "num_lists must be positive")]
    fn zero_lists_rejected() {
        IndexConfig {
            num_lists: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "nprobe must be positive")]
    fn zero_nprobe_rejected() {
        IndexConfig {
            nprobe: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must divide dim")]
    fn indivisible_pq_rejected() {
        IndexConfig {
            dim: 10,
            pq_subspaces: Some(3),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "intra_query_threads must be positive")]
    fn zero_intra_query_threads_rejected() {
        IndexConfig {
            intra_query_threads: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "pq_bits must be 4 or 8")]
    fn odd_pq_bits_rejected() {
        IndexConfig {
            pq_bits: 6,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rerank_factor must be positive")]
    fn zero_rerank_factor_rejected() {
        IndexConfig {
            rerank_factor: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn four_bit_pq_accepted() {
        IndexConfig {
            dim: 64,
            pq_subspaces: Some(16),
            pq_bits: 4,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "coarse_balance_factor must be finite")]
    fn negative_balance_factor_rejected() {
        IndexConfig {
            coarse_balance_factor: -1.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn coarse_knobs_accepted() {
        IndexConfig {
            coarse_beam_width: 32,
            coarse_balance_factor: 2.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn valid_pq_accepted() {
        IndexConfig {
            dim: 64,
            pq_subspaces: Some(8),
            ..Default::default()
        }
        .validate();
    }
}
