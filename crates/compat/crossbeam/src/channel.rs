//! MPMC channel with crossbeam-compatible semantics for the operations jdvs
//! uses: `unbounded`, `bounded`, cloneable senders *and* receivers, blocking
//! `send`/`recv`, `recv_timeout`, and disconnect detection when all peers on
//! one side drop.

#![allow(clippy::type_complexity)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// All senders or all receivers on the other side have disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => f.write_str("timed out waiting on channel"),
            Self::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

impl<T> Chan<T> {
    fn new(cap: Option<usize>) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        })
    }
}

pub struct Sender<T>(Arc<Chan<T>>);
pub struct Receiver<T>(Arc<Chan<T>>);

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(None);
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

/// Creates a channel holding at most `cap` in-flight messages; `send` blocks
/// when full. `cap == 0` is treated as capacity 1 (this shim has no
/// rendezvous mode; jdvs never uses zero-capacity channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Chan::new(Some(cap.max(1)));
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

impl<T> Sender<T> {
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.0.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.0.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                _ => {
                    state.queue.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    pub fn try_send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.receivers == 0 {
            return Err(SendError(msg));
        }
        if let Some(cap) = self.0.cap {
            if state.queue.len() >= cap {
                return Err(SendError(msg));
            }
        }
        state.queue.push_back(msg);
        self.0.not_empty.notify_one();
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap_or_else(PoisonError::into_inner).senders += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.0.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, _res) = self
                .0
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(msg) = state.queue.pop_front() {
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking iterator: yields until all senders disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator: drains whatever is currently queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    pub fn len(&self) -> usize {
        self.0.state.lock().unwrap_or_else(PoisonError::into_inner).queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.state.lock().unwrap_or_else(PoisonError::into_inner).receivers += 1;
        Self(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            self.0.not_full.notify_all();
        }
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_detected_on_recv() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn bounded_blocks_then_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
