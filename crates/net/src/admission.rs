//! Admission control for a serving tier: token-bucket rate limiting, a
//! bounded admission queue with deadline-aware load shedding, and a
//! per-tier concurrency limit.
//!
//! The controller sits at the front door of a [`crate::tcp::TcpTier`] and
//! decides the fate of each request *before* its body is decoded:
//!
//! 1. **Drain check** — a draining tier sheds everything new immediately.
//! 2. **Rate limit** — a token bucket caps the sustained admission rate
//!    while allowing short bursts; requests beyond the rate are shed with
//!    [`ShedReason::RateLimited`].
//! 3. **Queue bound + deadline check** — admitted requests wait for a
//!    concurrency slot. The wait is bounded: if the queue is full the
//!    request is shed ([`ShedReason::QueueFull`]); if the request's
//!    remaining budget cannot plausibly cover the estimated queue wait
//!    (EWMA of recent service times × queue depth), it is shed *now* with
//!    [`ShedReason::DeadlineHopeless`] instead of timing out later after
//!    wasting a slot.
//!
//! Shedding is deliberate and fast — the caller gets an `Overloaded`
//! response in microseconds, keeping goodput near capacity when offered
//! load far exceeds it (the paper's Figure 12 regime is the motivating
//! scenario: 3× capacity bursts on promotion days).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use jdvs_metrics::ServingMetrics;

pub use crate::frame::ShedReason;

/// Tuning knobs for one tier's [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Sustained admission rate in requests/second; `None` disables rate
    /// limiting.
    pub rate_limit: Option<f64>,
    /// Token-bucket burst size (maximum tokens banked while idle).
    pub burst: u32,
    /// Maximum requests allowed to wait for a concurrency slot before new
    /// arrivals are shed with [`ShedReason::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum requests being served concurrently.
    pub max_concurrency: usize,
    /// Requests arriving with less remaining budget than this are shed as
    /// hopeless without queueing.
    pub min_budget: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate_limit: None,
            burst: 64,
            queue_capacity: 128,
            max_concurrency: 8,
            min_budget: Duration::from_micros(200),
        }
    }
}

/// EWMA smoothing factor for the service-time estimate.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

struct Slots {
    in_flight: usize,
    queued: usize,
}

/// The admission state machine guarding one tier.
///
/// Thread-safe and shared (via `Arc`) by every connection handler of the
/// tier. See the module docs for the decision sequence.
pub struct AdmissionController {
    config: AdmissionConfig,
    metrics: Arc<ServingMetrics>,
    // Token bucket: tokens scaled by 1e6 so the bucket can be refilled
    // fractionally under a mutex-free fast path is not needed — a mutex is
    // fine at the request rates the tier sees.
    bucket: Mutex<TokenBucket>,
    slots: Mutex<Slots>,
    slot_freed: Condvar,
    /// EWMA of observed service time, in nanoseconds (0 = no estimate yet).
    service_ns: AtomicU64,
    draining: AtomicBool,
    started: Instant,
}

struct TokenBucket {
    tokens: f64,
    last_refill: Duration,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.slots.lock();
        f.debug_struct("AdmissionController")
            .field("config", &self.config)
            .field("in_flight", &slots.in_flight)
            .field("queued", &slots.queued)
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl AdmissionController {
    /// Creates a controller recording into `metrics`.
    pub fn new(config: AdmissionConfig, metrics: Arc<ServingMetrics>) -> Self {
        let burst = f64::from(config.burst.max(1));
        Self {
            config,
            metrics,
            bucket: Mutex::new(TokenBucket {
                tokens: burst,
                last_refill: Duration::ZERO,
            }),
            slots: Mutex::new(Slots {
                in_flight: 0,
                queued: 0,
            }),
            slot_freed: Condvar::new(),
            service_ns: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// The metrics sink this controller records into.
    pub fn metrics(&self) -> &Arc<ServingMetrics> {
        &self.metrics
    }

    /// Flips the tier into draining mode: every subsequent [`Self::admit`]
    /// sheds with [`ShedReason::Draining`]; in-flight requests finish.
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Wake queued waiters so they observe the drain and bail out.
        self.slot_freed.notify_all();
    }

    /// Whether the tier is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Current in-flight request count.
    pub fn in_flight(&self) -> usize {
        self.slots.lock().in_flight
    }

    /// Runs the admission decision for a request carrying `budget` of
    /// remaining deadline.
    ///
    /// # Errors
    ///
    /// Returns the [`ShedReason`] when the request must be rejected; the
    /// caller answers `Overloaded` without decoding the body. On success
    /// the returned [`Permit`] holds a concurrency slot until dropped.
    pub fn admit(&self, budget: Duration) -> Result<Permit<'_>, ShedReason> {
        if self.is_draining() {
            self.metrics.shed_draining.incr();
            return Err(ShedReason::Draining);
        }
        if !self.take_token() {
            self.metrics.shed_rate_limited.incr();
            return Err(ShedReason::RateLimited);
        }
        if budget < self.config.min_budget {
            self.metrics.shed_deadline.incr();
            return Err(ShedReason::DeadlineHopeless);
        }

        let deadline = Instant::now() + budget;
        let mut slots = self.slots.lock();
        if slots.in_flight < self.config.max_concurrency {
            slots.in_flight += 1;
            self.metrics.max_in_flight.set_max(slots.in_flight as u64);
            drop(slots);
            self.metrics.admitted.incr();
            return Ok(Permit {
                controller: self,
                begun: Instant::now(),
            });
        }

        // Every slot is busy: the request must queue. Shed instead if the
        // queue is full or the wait estimate already eats the budget.
        if slots.queued >= self.config.queue_capacity {
            drop(slots);
            self.metrics.shed_queue_full.incr();
            return Err(ShedReason::QueueFull);
        }
        let est_wait = self.estimated_wait(slots.queued);
        if est_wait > budget {
            drop(slots);
            self.metrics.shed_deadline.incr();
            return Err(ShedReason::DeadlineHopeless);
        }

        slots.queued += 1;
        self.metrics.max_queue_depth.set_max(slots.queued as u64);
        loop {
            let now = Instant::now();
            if now >= deadline {
                slots.queued -= 1;
                drop(slots);
                self.metrics.shed_deadline.incr();
                return Err(ShedReason::DeadlineHopeless);
            }
            if self.is_draining() {
                slots.queued -= 1;
                drop(slots);
                self.metrics.shed_draining.incr();
                return Err(ShedReason::Draining);
            }
            if slots.in_flight < self.config.max_concurrency {
                slots.queued -= 1;
                slots.in_flight += 1;
                self.metrics.max_in_flight.set_max(slots.in_flight as u64);
                drop(slots);
                self.metrics.admitted.incr();
                return Ok(Permit {
                    controller: self,
                    begun: Instant::now(),
                });
            }
            let remaining = deadline.saturating_duration_since(now);
            self.slot_freed.wait_for(&mut slots, remaining);
        }
    }

    /// Estimated queue wait with `queued` requests already ahead: each
    /// waiter needs a full service time to clear, all `max_concurrency`
    /// lanes drain in parallel.
    fn estimated_wait(&self, queued: usize) -> Duration {
        let service = self.service_ns.load(Ordering::Relaxed);
        if service == 0 {
            return Duration::ZERO; // no estimate yet: optimistic
        }
        let lanes = self.config.max_concurrency.max(1) as u64;
        let ahead = (queued as u64) + 1; // this request joins the back
        Duration::from_nanos(service.saturating_mul(ahead.div_ceil(lanes)))
    }

    fn take_token(&self) -> bool {
        let Some(rate) = self.config.rate_limit else {
            return true;
        };
        if rate <= 0.0 {
            return false;
        }
        let now = self.started.elapsed();
        let mut bucket = self.bucket.lock();
        let elapsed = now.saturating_sub(bucket.last_refill);
        bucket.last_refill = now;
        let burst = f64::from(self.config.burst.max(1));
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * rate).min(burst);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn release(&self, began: Instant) {
        let elapsed_ns = u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // EWMA the service-time estimate; first sample seeds it directly.
        let prev = self.service_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            elapsed_ns
        } else {
            let blended = (prev as f64) * (1.0 - SERVICE_EWMA_ALPHA)
                + (elapsed_ns as f64) * SERVICE_EWMA_ALPHA;
            blended as u64
        };
        self.service_ns.store(next.max(1), Ordering::Relaxed);

        let mut slots = self.slots.lock();
        slots.in_flight -= 1;
        drop(slots);
        self.metrics.completed.incr();
        self.slot_freed.notify_one();
    }
}

/// RAII concurrency slot: dropping it frees the slot, records the service
/// time into the EWMA estimate and wakes one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    begun: Instant,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.release(self.begun);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn controller(config: AdmissionConfig) -> AdmissionController {
        AdmissionController::new(config, Arc::new(ServingMetrics::new()))
    }

    #[test]
    fn admits_within_concurrency() {
        let c = controller(AdmissionConfig {
            max_concurrency: 2,
            ..AdmissionConfig::default()
        });
        let p1 = c.admit(Duration::from_secs(1)).unwrap();
        let _p2 = c.admit(Duration::from_secs(1)).unwrap();
        assert_eq!(c.in_flight(), 2);
        drop(p1);
        assert_eq!(c.in_flight(), 1);
        assert_eq!(c.metrics().admitted.get(), 2);
        assert_eq!(c.metrics().completed.get(), 1);
    }

    #[test]
    fn sheds_when_queue_full() {
        let c = controller(AdmissionConfig {
            max_concurrency: 1,
            queue_capacity: 0,
            ..AdmissionConfig::default()
        });
        let _held = c.admit(Duration::from_secs(1)).unwrap();
        assert_eq!(
            c.admit(Duration::from_secs(1)).unwrap_err(),
            ShedReason::QueueFull
        );
        assert_eq!(c.metrics().shed_queue_full.get(), 1);
    }

    #[test]
    fn sheds_tiny_budgets_immediately() {
        let c = controller(AdmissionConfig {
            min_budget: Duration::from_millis(5),
            ..AdmissionConfig::default()
        });
        assert_eq!(
            c.admit(Duration::from_millis(1)).unwrap_err(),
            ShedReason::DeadlineHopeless
        );
    }

    #[test]
    fn queued_request_gets_slot_when_freed() {
        let c = Arc::new(controller(AdmissionConfig {
            max_concurrency: 1,
            queue_capacity: 4,
            ..AdmissionConfig::default()
        }));
        let held = c.admit(Duration::from_secs(5)).unwrap();
        let c2 = Arc::clone(&c);
        let waiter = thread::spawn(move || c2.admit(Duration::from_secs(5)).map(drop));
        thread::sleep(Duration::from_millis(30));
        drop(held);
        waiter.join().unwrap().unwrap();
        assert_eq!(c.metrics().admitted.get(), 2);
    }

    #[test]
    fn queued_request_expires_with_budget() {
        let c = controller(AdmissionConfig {
            max_concurrency: 1,
            queue_capacity: 4,
            min_budget: Duration::ZERO,
            ..AdmissionConfig::default()
        });
        let _held = c.admit(Duration::from_secs(5)).unwrap();
        let start = Instant::now();
        assert_eq!(
            c.admit(Duration::from_millis(25)).unwrap_err(),
            ShedReason::DeadlineHopeless
        );
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn rate_limiter_sheds_beyond_burst() {
        let c = controller(AdmissionConfig {
            rate_limit: Some(1.0),
            burst: 2,
            max_concurrency: 16,
            ..AdmissionConfig::default()
        });
        let _a = c.admit(Duration::from_secs(1)).unwrap();
        let _b = c.admit(Duration::from_secs(1)).unwrap();
        assert_eq!(
            c.admit(Duration::from_secs(1)).unwrap_err(),
            ShedReason::RateLimited
        );
        assert_eq!(c.metrics().shed_rate_limited.get(), 1);
    }

    #[test]
    fn draining_sheds_everything_and_wakes_waiters() {
        let c = Arc::new(controller(AdmissionConfig {
            max_concurrency: 1,
            queue_capacity: 4,
            ..AdmissionConfig::default()
        }));
        let _held = c.admit(Duration::from_secs(5)).unwrap();
        let c2 = Arc::clone(&c);
        let waiter = thread::spawn(move || c2.admit(Duration::from_secs(5)).err());
        thread::sleep(Duration::from_millis(30));
        c.start_draining();
        assert_eq!(waiter.join().unwrap(), Some(ShedReason::Draining));
        assert_eq!(
            c.admit(Duration::from_secs(1)).unwrap_err(),
            ShedReason::Draining
        );
        assert_eq!(c.metrics().shed_draining.get(), 2);
    }
}
