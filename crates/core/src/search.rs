//! Single-partition query evaluation (Section 2.4).
//!
//! *"Each searcher node identifies the cluster that is most similar to the
//! queried image based on its features. It then scans the cluster's
//! inverted list and calculates the similarity as each image in the
//! inverted list. The top N most similar images are returned."*
//!
//! [`ann_search`] generalizes "the cluster" to the `nprobe` nearest
//! clusters (probing one list is the paper's letter; multi-probe is the
//! standard recall knob and the `ablate-nprobe` experiment sweeps it).
//! Invalid images — cleared bits in the validity bitmap — are skipped
//! during the scan, so logically deleted products never surface.

use jdvs_vector::distance::squared_l2;
use jdvs_vector::topk::{Neighbor, TopK};

use crate::ids::{ImageId, ListId};
use crate::index::VisualIndex;

/// IVF search over one partition; see the module docs.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search(index: &VisualIndex, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = TopK::new(k);
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return; // logically deleted
            }
            let d = index
                .vectors()
                .with(id, |v| squared_l2(query, v.as_slice()))
                .unwrap_or(f32::INFINITY);
            topk.push(id.as_u64(), d);
        });
    }
    topk.into_sorted_vec()
}

/// Two-stage compressed (PQ) search; see
/// [`VisualIndex::search_compressed`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");

    // Stage 1: ADC scan of the probed lists over m-byte codes.
    let table = pq.adc_table(query);
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut shortlist = TopK::new(k.saturating_mul(rerank_factor).max(k));
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return;
            }
            if let Some(d) = pq.distance(&table, id) {
                shortlist.push(id.as_u64(), d);
            }
        });
    }

    // Stage 2: exact rerank of the shortlist over raw vectors.
    let mut topk = TopK::new(k);
    for candidate in shortlist.into_sorted_vec() {
        let id = ImageId(candidate.id as u32);
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(candidate.id, d);
        }
    }
    topk.into_sorted_vec()
}

/// Exact top-k over every valid image (ground truth; `O(n·d)`).
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn brute_force(index: &VisualIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let mut topk = TopK::new(k);
    for raw in 0..index.forward().len() {
        let id = ImageId(raw as u32);
        if !index.bitmap().test(raw) {
            continue;
        }
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(id.as_u64(), d);
        }
    }
    topk.into_sorted_vec()
}

/// Recall@k of `got` against ground-truth `expected` (fraction of expected
/// ids present in got).
pub fn recall(got: &[Neighbor], expected: &[Neighbor]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let got_ids: std::collections::HashSet<u64> = got.iter().map(|n| n.id).collect();
    let hit = expected.iter().filter(|n| got_ids.contains(&n.id)).count();
    hit as f64 / expected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    fn build_index(n: usize, num_lists: usize, seed: u64) -> (VisualIndex, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists,
            initial_list_capacity: 8,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        (index, data)
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let (index, data) = build_index(300, 8, 3);
        for q in data.iter().take(20) {
            let ann = ann_search(&index, q.as_slice(), 5, 8);
            let exact = brute_force(&index, q.as_slice(), 5);
            assert_eq!(recall(&ann, &exact), 1.0);
        }
    }

    #[test]
    fn recall_grows_with_nprobe() {
        let (index, data) = build_index(500, 16, 5);
        let mut totals = Vec::new();
        for nprobe in [1usize, 4, 16] {
            let mut total = 0.0;
            for q in data.iter().take(30) {
                let ann = ann_search(&index, q.as_slice(), 10, nprobe);
                let exact = brute_force(&index, q.as_slice(), 10);
                total += recall(&ann, &exact);
            }
            totals.push(total / 30.0);
        }
        assert!(totals[0] <= totals[1] + 1e-9);
        assert!(totals[1] <= totals[2] + 1e-9);
        assert!((totals[2] - 1.0).abs() < 1e-9, "full probe is exact");
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let (index, data) = build_index(200, 4, 7);
        let hits = ann_search(&index, data[0].as_slice(), 10, 4);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn deleted_images_are_skipped_by_both_paths() {
        let (index, data) = build_index(50, 4, 9);
        let key = jdvs_storage::model::ImageKey::from_url("u0");
        index.invalidate(key, "u0").unwrap();
        let ann = ann_search(&index, data[0].as_slice(), 50, 4);
        let exact = brute_force(&index, data[0].as_slice(), 50);
        assert!(ann.iter().all(|n| n.id != 0));
        assert!(exact.iter().all(|n| n.id != 0));
        assert_eq!(ann.len(), 49);
    }

    #[test]
    fn recall_of_identical_sets_is_one() {
        let a = vec![Neighbor::new(1, 0.0), Neighbor::new(2, 1.0)];
        assert_eq!(recall(&a, &a), 1.0);
        assert_eq!(recall(&a, &[]), 1.0);
        let b = vec![Neighbor::new(1, 0.0), Neighbor::new(9, 1.0)];
        assert_eq!(recall(&b, &a), 0.5);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn wrong_query_dim_panics() {
        let (index, _) = build_index(10, 2, 1);
        ann_search(&index, &[0.0; 4], 1, 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (index, data) = build_index(10, 2, 1);
        ann_search(&index, data[0].as_slice(), 0, 1);
    }
}
