//! Query-side category detection.
//!
//! Section 2.4: *"To search a picture, an item in the picture is detected
//! and the product category of the item is identified."* Category detection
//! narrows ranking and lets the blender attach category metadata to the
//! query. We model it as a nearest-centroid classifier over category
//! prototypes in feature space — which is also how coarse heads on CNN
//! backbones behave.

use jdvs_vector::distance::squared_l2;
use jdvs_vector::Vector;
use serde::{Deserialize, Serialize};

/// A product category label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl std::fmt::Display for CategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cat-{}", self.0)
    }
}

/// Nearest-prototype category detector.
///
/// # Example
///
/// ```
/// use jdvs_features::category::{CategoryDetector, CategoryId};
/// use jdvs_vector::Vector;
///
/// let detector = CategoryDetector::new(vec![
///     (CategoryId(1), Vector::from(vec![0.0, 0.0])),
///     (CategoryId(2), Vector::from(vec![10.0, 10.0])),
/// ]);
/// assert_eq!(detector.detect(&[0.5, 0.5]), CategoryId(1));
/// assert_eq!(detector.detect(&[9.0, 9.5]), CategoryId(2));
/// ```
#[derive(Debug, Clone)]
pub struct CategoryDetector {
    prototypes: Vec<(CategoryId, Vector)>,
}

impl CategoryDetector {
    /// Creates a detector from `(category, prototype)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `prototypes` is empty or dimensions are inconsistent.
    pub fn new(prototypes: Vec<(CategoryId, Vector)>) -> Self {
        assert!(
            !prototypes.is_empty(),
            "at least one category prototype required"
        );
        let dim = prototypes[0].1.dim();
        for (_, p) in &prototypes {
            assert_eq!(p.dim(), dim, "prototypes must share a dimension");
        }
        Self { prototypes }
    }

    /// Number of known categories.
    pub fn num_categories(&self) -> usize {
        self.prototypes.len()
    }

    /// Classifies `features` to the nearest prototype's category.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different dimension than the prototypes.
    pub fn detect(&self, features: &[f32]) -> CategoryId {
        self.detect_with_distance(features).0
    }

    /// Classifies and also returns the squared distance to the winning
    /// prototype (a confidence proxy).
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different dimension than the prototypes.
    pub fn detect_with_distance(&self, features: &[f32]) -> (CategoryId, f32) {
        let mut best = self.prototypes[0].0;
        let mut best_d = f32::INFINITY;
        for (cat, proto) in &self.prototypes {
            let d = squared_l2(proto.as_slice(), features);
            if d < best_d {
                best_d = d;
                best = *cat;
            }
        }
        (best, best_d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> CategoryDetector {
        CategoryDetector::new(vec![
            (CategoryId(10), Vector::from(vec![0.0, 0.0])),
            (CategoryId(20), Vector::from(vec![5.0, 0.0])),
            (CategoryId(30), Vector::from(vec![0.0, 5.0])),
        ])
    }

    #[test]
    fn detects_nearest_prototype() {
        let d = detector();
        assert_eq!(d.detect(&[0.1, 0.1]), CategoryId(10));
        assert_eq!(d.detect(&[4.0, 0.5]), CategoryId(20));
        assert_eq!(d.detect(&[0.5, 4.9]), CategoryId(30));
        assert_eq!(d.num_categories(), 3);
    }

    #[test]
    fn distance_is_reported() {
        let d = detector();
        let (cat, dist) = d.detect_with_distance(&[0.0, 0.0]);
        assert_eq!(cat, CategoryId(10));
        assert_eq!(dist, 0.0);
    }

    #[test]
    fn ties_resolve_to_first_prototype() {
        let d = CategoryDetector::new(vec![
            (CategoryId(1), Vector::from(vec![1.0])),
            (CategoryId(2), Vector::from(vec![-1.0])),
        ]);
        assert_eq!(d.detect(&[0.0]), CategoryId(1));
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_prototypes_panics() {
        CategoryDetector::new(vec![]);
    }

    #[test]
    fn display_format() {
        assert_eq!(CategoryId(4).to_string(), "cat-4");
    }
}
