//! Cross-crate property-based tests (proptest).
//!
//! Invariants of the core data structures under arbitrary inputs: the
//! validity bitmap, the variable-length buffer, the forward index, the
//! inverted lists under expansion, top-k selection, histograms, queue
//! ordering and the partitioner.

use proptest::prelude::*;

use jdvs::core::bitmap::AtomicBitmap;
use jdvs::core::buffer::VarBuffer;
use jdvs::core::forward::ForwardIndex;
use jdvs::core::ids::ImageId;
use jdvs::core::inverted::InvertedList;
use jdvs::metrics::Histogram;
use jdvs::storage::{ImageKey, MessageQueue, ProductAttributes, ProductId};
use jdvs::vector::topk::select_topk;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitmap reflects exactly the last operation applied per bit.
    #[test]
    fn bitmap_reflects_last_write(ops in prop::collection::vec((0usize..2_000, any::<bool>()), 1..200)) {
        let bm = AtomicBitmap::new();
        let mut model = std::collections::HashMap::new();
        for (bit, value) in ops {
            bm.assign(bit, value);
            model.insert(bit, value);
        }
        for (bit, value) in model {
            prop_assert_eq!(bm.test(bit), value);
        }
    }

    /// count_ones equals the model's set-bit count.
    #[test]
    fn bitmap_popcount_matches_model(bits in prop::collection::hash_set(0usize..5_000, 0..300)) {
        let bm = AtomicBitmap::new();
        for &b in &bits {
            bm.set(b);
        }
        prop_assert_eq!(bm.count_ones(), bits.len());
    }

    /// Every appended record reads back byte-identical, regardless of
    /// chunk-size-induced boundary skips.
    #[test]
    fn buffer_round_trips(
        chunk in 32usize..256,
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..100),
    ) {
        let buf = VarBuffer::with_chunk_size(chunk);
        let refs: Vec<_> = records.iter().map(|r| buf.append(r).unwrap()).collect();
        for (r, expected) in refs.iter().zip(&records) {
            prop_assert_eq!(&buf.read(*r).unwrap(), expected);
        }
    }

    /// The forward index is an exact map from id to the last-written
    /// attributes.
    #[test]
    fn forward_index_is_a_faithful_map(
        products in prop::collection::vec((any::<u64>(), 0u64..1_000_000, 0u64..1_000_000, ".{0,20}"), 1..60),
        updates in prop::collection::vec((0usize..60, 0u64..999), 0..40),
    ) {
        let fwd = ForwardIndex::new();
        let mut model: Vec<ProductAttributes> = Vec::new();
        for (pid, sales, price, url) in &products {
            let attrs = ProductAttributes::new(ProductId(*pid), *sales, *price, 0, url.clone());
            fwd.append(&attrs).unwrap();
            model.push(attrs);
        }
        for (slot, new_sales) in updates {
            if slot < model.len() {
                fwd.update_numeric(ImageId(slot as u32), Some(new_sales), None, None).unwrap();
                model[slot].sales = new_sales;
            }
        }
        for (i, expected) in model.iter().enumerate() {
            prop_assert_eq!(&fwd.attributes(ImageId(i as u32)).unwrap(), expected);
        }
    }

    /// Inverted lists preserve append order across arbitrary expansion
    /// schedules (any initial capacity, inline or background copy).
    #[test]
    fn inverted_list_preserves_order(
        initial in 1usize..32,
        background in any::<bool>(),
        n in 1u32..500,
    ) {
        let list = InvertedList::new(initial, background);
        for i in 0..n {
            list.append(ImageId(i));
        }
        list.flush();
        let mut got = Vec::new();
        list.scan(|id| got.push(id.0));
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    /// Top-k equals the sorted prefix of the full candidate list.
    #[test]
    fn topk_equals_sort_prefix(
        items in prop::collection::vec((any::<u64>(), 0.0f32..1e6), 1..200),
        k in 1usize..20,
    ) {
        // Deduplicate ids to make the ground truth unambiguous.
        let mut seen = std::collections::HashSet::new();
        let items: Vec<(u64, f32)> =
            items.into_iter().filter(|(id, _)| seen.insert(*id)).collect();
        prop_assume!(!items.is_empty());
        let got = select_topk(k, items.clone());
        let mut expected = items;
        expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        expected.truncate(k);
        let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        let expected_ids: Vec<u64> = expected.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(got_ids, expected_ids);
    }

    /// Histogram percentiles are bounded by min/max and monotone in q; the
    /// relative quantization error is within the documented bound.
    #[test]
    fn histogram_quantiles_are_sane(values in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record_us(v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile_us(q);
            prop_assert!(p >= min && p <= max, "p({}) = {} outside [{}, {}]", q, p, min, max);
            prop_assert!(p >= prev);
            prev = p;
        }
        // Exact median check against the sorted data, within quantization.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(values.len() - 1) / 2];
        let est = h.percentile_us(0.5) as f64;
        let tolerance = (true_median as f64 * 0.02).max(1.0);
        prop_assert!(
            (est - true_median as f64).abs() <= tolerance + f64::EPSILON,
            "median {} vs true {}", est, true_median
        );
    }

    /// Queue consumption returns exactly the published sequence.
    #[test]
    fn queue_is_fifo(messages in prop::collection::vec(any::<u32>(), 0..200)) {
        let q = MessageQueue::new();
        for &m in &messages {
            q.publish(m);
        }
        let mut c = q.consumer();
        let got: Vec<u32> = std::iter::from_fn(|| c.poll_now()).collect();
        prop_assert_eq!(got, messages);
    }

    /// The partitioner is total, stable and in-range for any URL.
    #[test]
    fn partitioner_is_total_and_stable(url in ".{0,64}", parts in 1usize..64) {
        let key = ImageKey::from_url(&url);
        let p = key.partition(parts);
        prop_assert!(p < parts);
        prop_assert_eq!(p, ImageKey::from_url(&url).partition(parts));
    }

    /// Vector byte serialization round-trips bit-exactly.
    #[test]
    fn vector_bytes_round_trip(data in prop::collection::vec(any::<f32>(), 0..64)) {
        let v = jdvs::vector::Vector::from(data.clone());
        let back = jdvs::vector::Vector::from_le_bytes(&v.to_le_bytes()).unwrap();
        // Compare bit patterns (NaN-safe).
        let a: Vec<u32> = v.as_slice().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = back.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a, b);
    }
}
