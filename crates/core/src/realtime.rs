//! The real-time indexer (Section 2.3, Figures 4 and 6).
//!
//! *"Messages about product or image updates are received from a message
//! queue and processed instantly."* [`RealtimeIndexer`] is that consumer:
//! it applies each [`ProductEvent`] to its partition's [`VisualIndex`],
//! using the feature-reuse path whenever the image was extracted before.
//!
//! Each searcher owns one partition, so an indexer can be scoped with
//! [`RealtimeIndexer::with_partition`] to process only the images that hash
//! into its partition — exactly how the paper's searchers share one queue.
//!
//! Failed images are never silently dropped: each failure is recorded in a
//! bounded **dead-letter buffer** (newest kept, oldest evicted) together
//! with the error and a retryable/permanent classification, and surfaced
//! through [`RealtimeIndexer::drain_dead_letters`] for an operator or a
//! replay job to act on.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use jdvs_features::cache::FetchOutcome;
use jdvs_features::CachingExtractor;
use jdvs_storage::model::{ImageKey, ProductEvent};
use jdvs_storage::queue::{Consumer, Offset};
use jdvs_storage::{FeatureDb, ImageStore, MessageQueue};

use crate::error::IndexError;
use crate::full::KeyFilter;
use crate::index::VisualIndex;
use crate::swap::IndexHandle;

/// What applying one event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApplyReport {
    /// Images inserted fresh (feature extraction performed or reused from
    /// the feature DB).
    pub inserted: u64,
    /// Images revalidated via the in-index reuse path (bitmap flip).
    pub revalidated: u64,
    /// Images whose attributes were updated.
    pub updated: u64,
    /// Images logically deleted.
    pub deleted: u64,
    /// Images skipped because they hash to another partition.
    pub skipped: u64,
    /// Images that could not be processed (e.g. blob missing, URL unknown).
    pub failed: u64,
    /// Applied-offset watermark: the queue offset *after* the newest event
    /// covered by this report (`None` when events were applied without a
    /// source offset, e.g. direct [`RealtimeIndexer::apply`] calls).
    pub watermark: Option<Offset>,
}

impl ApplyReport {
    /// Total images this event touched on this partition.
    pub fn touched(&self) -> u64 {
        self.inserted + self.revalidated + self.updated + self.deleted
    }

    /// Accumulates another report into this one (watermark keeps the max).
    pub fn merge(&mut self, other: ApplyReport) {
        self.inserted += other.inserted;
        self.revalidated += other.revalidated;
        self.updated += other.updated;
        self.deleted += other.deleted;
        self.skipped += other.skipped;
        self.failed += other.failed;
        self.watermark = self.watermark.max(other.watermark);
    }
}

/// Default capacity of the dead-letter buffer.
pub const DEFAULT_DEAD_LETTER_CAPACITY: usize = 256;

/// One failed image operation, preserved for inspection or replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// URL of the image that failed.
    pub url: String,
    /// What the event was trying to do.
    pub operation: DeadLetterOp,
    /// Human-readable error.
    pub error: String,
    /// Whether a later retry could plausibly succeed (e.g. an update that
    /// raced ahead of its add in the stream) or the failure is permanent
    /// (e.g. a capacity or validation error).
    pub retryable: bool,
    /// Offset of the source event in the message queue, when the event was
    /// applied through [`RealtimeIndexer::apply_at`] or
    /// [`RealtimeIndexer::run`]. With a durable log behind the queue this
    /// makes every dead letter re-drivable: the original event can be
    /// re-read from the log ([`RealtimeIndexer::redrive`]).
    pub offset: Option<Offset>,
}

/// The operation a [`DeadLetter`] was performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterOp {
    /// Inserting or revalidating an image.
    Insert,
    /// Logically deleting an image.
    Delete,
    /// Updating numeric attributes.
    Update,
}

/// Counters over all failures the indexer has seen (dead-lettered or
/// already evicted from the bounded buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadLetterStats {
    /// Failures a retry could plausibly fix (out-of-order stream events).
    pub retryable: u64,
    /// Failures retrying cannot fix (validation/capacity errors).
    pub permanent: u64,
    /// Dead letters evicted because the buffer was full.
    pub evicted: u64,
}

impl DeadLetterStats {
    /// Total failures observed.
    pub fn total(&self) -> u64 {
        self.retryable + self.permanent
    }
}

/// Classifies an [`IndexError`]: unknown-URL/unknown-image failures are
/// retryable (the add that defines them may simply not have arrived yet);
/// everything else is a permanent property of the data or the index.
fn is_retryable(err: &IndexError) -> bool {
    matches!(err, IndexError::UnknownUrl(_) | IndexError::UnknownImage(_))
}

/// The per-partition real-time indexer; see the module docs.
///
/// The indexer resolves its index through an [`IndexHandle`] per event,
/// so a weekly full-index hot swap (Figure 2) redirects subsequent events
/// to the fresh index without restarting the indexer.
pub struct RealtimeIndexer {
    index: Arc<IndexHandle>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    /// Ownership predicate: only images it accepts are processed. `None`
    /// processes everything.
    filter: Option<KeyFilter>,
    /// Bounded buffer of failed operations, newest kept.
    dead_letters: Mutex<VecDeque<DeadLetter>>,
    dead_letter_capacity: usize,
    retryable_failures: AtomicU64,
    permanent_failures: AtomicU64,
    dead_letters_evicted: AtomicU64,
}

impl std::fmt::Debug for RealtimeIndexer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealtimeIndexer")
            .field("filtered", &self.filter.is_some())
            .field("dead_letter_capacity", &self.dead_letter_capacity)
            .finish()
    }
}

impl RealtimeIndexer {
    /// Creates an indexer that processes every event image, writing to
    /// whichever index `handle` currently points at.
    pub fn new(
        handle: Arc<IndexHandle>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self {
            index: handle,
            extractor,
            images,
            feature_db,
            filter: None,
            dead_letters: Mutex::new(VecDeque::new()),
            dead_letter_capacity: DEFAULT_DEAD_LETTER_CAPACITY,
            retryable_failures: AtomicU64::new(0),
            permanent_failures: AtomicU64::new(0),
            dead_letters_evicted: AtomicU64::new(0),
        }
    }

    /// Convenience: wraps a fixed index in a fresh (never-swapped) handle.
    pub fn for_index(
        index: Arc<VisualIndex>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        feature_db: Arc<FeatureDb>,
    ) -> Self {
        Self::new(
            Arc::new(IndexHandle::new(index)),
            extractor,
            images,
            feature_db,
        )
    }

    /// Scopes the indexer to one partition of `num_partitions`.
    ///
    /// # Panics
    ///
    /// Panics if `partition >= num_partitions` or `num_partitions == 0`.
    pub fn with_partition(self, partition: usize, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "num_partitions must be positive");
        assert!(partition < num_partitions, "partition out of range");
        self.with_filter(Arc::new(move |key: ImageKey| {
            key.partition(num_partitions) == partition
        }))
    }

    /// Scopes the indexer by an arbitrary ownership predicate (e.g. "routes
    /// to partition `p` under the live, possibly split, partition map").
    pub fn with_filter(mut self, filter: KeyFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Overrides the dead-letter buffer capacity (`0` keeps counting
    /// failures but retains no letters).
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> Self {
        self.dead_letter_capacity = capacity;
        self
    }

    /// Takes (and clears) everything in the dead-letter buffer, oldest
    /// first. Counters in [`RealtimeIndexer::dead_letter_stats`] are
    /// lifetime totals and are *not* reset by draining.
    pub fn drain_dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().drain(..).collect()
    }

    /// Lifetime failure counters (survive draining).
    pub fn dead_letter_stats(&self) -> DeadLetterStats {
        DeadLetterStats {
            retryable: self.retryable_failures.load(Ordering::Relaxed),
            permanent: self.permanent_failures.load(Ordering::Relaxed),
            evicted: self.dead_letters_evicted.load(Ordering::Relaxed),
        }
    }

    /// Records one failed image operation, evicting the oldest letter if
    /// the buffer is full.
    fn dead_letter(
        &self,
        url: &str,
        operation: DeadLetterOp,
        err: &IndexError,
        offset: Option<Offset>,
    ) {
        let retryable = is_retryable(err);
        if retryable {
            self.retryable_failures.fetch_add(1, Ordering::Relaxed);
        } else {
            self.permanent_failures.fetch_add(1, Ordering::Relaxed);
        }
        if self.dead_letter_capacity == 0 {
            return; // counted, nothing retained
        }
        self.requeue_dead_letter(DeadLetter {
            url: url.to_string(),
            operation,
            error: err.to_string(),
            retryable,
            offset,
        });
    }

    /// Puts a letter (back) into the bounded buffer without touching the
    /// failure counters.
    fn requeue_dead_letter(&self, letter: DeadLetter) {
        if self.dead_letter_capacity == 0 {
            return;
        }
        let mut letters = self.dead_letters.lock();
        if letters.len() == self.dead_letter_capacity {
            letters.pop_front();
            self.dead_letters_evicted.fetch_add(1, Ordering::Relaxed);
        }
        letters.push_back(letter);
    }

    /// Snapshot of the index this indexer currently maintains.
    pub fn index(&self) -> Arc<VisualIndex> {
        self.index.get()
    }

    /// The swappable handle (rebuilds publish through this).
    pub fn handle(&self) -> &Arc<IndexHandle> {
        &self.index
    }

    fn owns(&self, key: ImageKey) -> bool {
        match &self.filter {
            Some(filter) => filter(key),
            None => true,
        }
    }

    /// Applies one event (Figure 6's dispatch) without a source offset.
    /// Dead letters it produces cannot be re-driven from the durable log;
    /// prefer [`RealtimeIndexer::apply_at`] when the offset is known.
    pub fn apply(&self, event: &ProductEvent) -> ApplyReport {
        self.apply_inner(event, None)
    }

    /// Applies one event read from queue offset `offset`, advancing the
    /// index's applied-offset watermark
    /// ([`IndexStats::applied_offset`](crate::stats::IndexStats)) to
    /// `offset + 1` and stamping the offset on any dead letters.
    pub fn apply_at(&self, offset: Offset, event: &ProductEvent) -> ApplyReport {
        let mut report = self.apply_inner(event, Some(offset));
        let watermark = offset + 1;
        self.index.get().stats().applied_offset.set_max(watermark);
        report.watermark = Some(watermark);
        report
    }

    fn apply_inner(&self, event: &ProductEvent, offset: Option<Offset>) -> ApplyReport {
        let index = self.index.get();
        let mut report = ApplyReport::default();
        match event {
            ProductEvent::AddProduct { images, .. } => {
                for attrs in images {
                    let key = attrs.image_key();
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    // Figure 8: check-if-exists → reuse, else extract+insert.
                    let outcome = index.upsert(attrs.clone(), || {
                        let (features, fetch) =
                            self.extractor
                                .features_for(attrs, &self.images, &self.feature_db);
                        debug_assert_ne!(
                            fetch,
                            FetchOutcome::Missing,
                            "catalog generated an image with no blob"
                        );
                        features
                    });
                    match outcome {
                        Ok(o) if o.reused() => report.revalidated += 1,
                        Ok(_) => report.inserted += 1,
                        Err(err) => {
                            self.dead_letter(&attrs.url, DeadLetterOp::Insert, &err, offset);
                            report.failed += 1;
                        }
                    }
                }
            }
            ProductEvent::RemoveProduct { urls, .. } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.invalidate(key, url) {
                        Ok(_) => report.deleted += 1,
                        Err(err) => {
                            self.dead_letter(url, DeadLetterOp::Delete, &err, offset);
                            report.failed += 1;
                        }
                    }
                }
            }
            ProductEvent::UpdateAttributes {
                urls,
                sales,
                price,
                praise,
                ..
            } => {
                for url in urls {
                    let key = ImageKey::from_url(url);
                    if !self.owns(key) {
                        report.skipped += 1;
                        continue;
                    }
                    match index.update_numeric(key, url, *sales, *price, *praise) {
                        Ok(_) => report.updated += 1,
                        Err(err) => {
                            self.dead_letter(url, DeadLetterOp::Update, &err, offset);
                            report.failed += 1;
                        }
                    }
                }
            }
        }
        report
    }

    /// Consumes events from `consumer` until `stop` is set, applying each
    /// instantly. When the queue idles for `idle` the in-flight inverted-
    /// list expansions are flushed (migration-window inserts become
    /// searchable) and the loop re-polls. Returns the cumulative report.
    ///
    /// Every event is applied through [`RealtimeIndexer::apply_at`] with its
    /// queue offset, so the index's applied-offset watermark advances and
    /// dead letters stay re-drivable.
    pub fn run(
        &self,
        consumer: &mut Consumer<ProductEvent>,
        stop: &AtomicBool,
        idle: Duration,
    ) -> ApplyReport {
        let mut total = ApplyReport::default();
        while !stop.load(Ordering::Relaxed) {
            let offset = consumer.position();
            match consumer.poll(idle) {
                Some(event) => total.merge(self.apply_at(offset, &event)),
                None => self.index.get().flush(),
            }
        }
        // Drain whatever is left so shutdown is deterministic.
        loop {
            let offset = consumer.position();
            match consumer.poll_now() {
                Some(event) => total.merge(self.apply_at(offset, &event)),
                None => break,
            }
        }
        self.index.get().flush();
        total
    }

    /// Re-applies retryable dead letters from their source events.
    ///
    /// Each drained letter that is retryable and carries a queue [`Offset`]
    /// has its original event re-read from `queue`, narrowed to the one URL
    /// that failed, and re-applied via [`RealtimeIndexer::apply_at`]. This
    /// is how an out-of-order stream (update racing ahead of its add) heals
    /// once the missing add has landed. Letters that are permanent, carry
    /// no offset, or whose event has been pruned from the queue are put
    /// back into the buffer untouched (without re-counting the failure).
    pub fn redrive(&self, queue: &MessageQueue<ProductEvent>) -> ApplyReport {
        let mut total = ApplyReport::default();
        for letter in self.drain_dead_letters() {
            let offset = match letter.offset {
                Some(off) if letter.retryable && off >= queue.base() && off < queue.len() => off,
                _ => {
                    self.requeue_dead_letter(letter);
                    continue;
                }
            };
            let Some(event) = queue.read_range(offset, 1).into_iter().next() else {
                self.requeue_dead_letter(letter);
                continue;
            };
            let Some(narrowed) = narrow_event_to_url(&event, &letter.url) else {
                self.requeue_dead_letter(letter);
                continue;
            };
            total.merge(self.apply_at(offset, &narrowed));
        }
        total
    }
}

/// Restricts `event` to the single image `url`, for targeted re-application
/// of a dead-lettered operation. Returns `None` when the event no longer
/// mentions the URL (e.g. the letter's offset points at a different event
/// after queue compaction).
fn narrow_event_to_url(event: &ProductEvent, url: &str) -> Option<ProductEvent> {
    match event {
        ProductEvent::AddProduct { product_id, images } => {
            let image = images.iter().find(|a| a.url == url)?.clone();
            Some(ProductEvent::AddProduct {
                product_id: *product_id,
                images: vec![image],
            })
        }
        ProductEvent::RemoveProduct { product_id, urls } => {
            urls.iter()
                .any(|u| u == url)
                .then(|| ProductEvent::RemoveProduct {
                    product_id: *product_id,
                    urls: vec![url.to_string()],
                })
        }
        ProductEvent::UpdateAttributes {
            product_id,
            urls,
            sales,
            price,
            praise,
        } => urls
            .iter()
            .any(|u| u == url)
            .then(|| ProductEvent::UpdateAttributes {
                product_id: *product_id,
                urls: vec![url.to_string()],
                sales: *sales,
                price: *price,
                praise: *praise,
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::MessageQueue;
    use jdvs_vector::Vector;

    const DIM: usize = 16;

    struct Fixture {
        indexer: RealtimeIndexer,
        images: Arc<ImageStore>,
    }

    fn fixture() -> Fixture {
        fixture_with_partition(None)
    }

    fn fixture_with_partition(partition: Option<(usize, usize)>) -> Fixture {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        // Bootstrap quantizer on generic Gaussian data.
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                initial_list_capacity: 4,
                ..Default::default()
            },
            &train,
        ));
        let mut indexer =
            RealtimeIndexer::for_index(index, extractor, Arc::clone(&images), feature_db);
        if let Some((p, n)) = partition {
            indexer = indexer.with_partition(p, n);
        }
        Fixture { indexer, images }
    }

    fn add_event(f: &Fixture, product: u64, urls: &[&str]) -> ProductEvent {
        let images = urls
            .iter()
            .map(|u| {
                f.images.put_synthetic(u, product * 31);
                ProductAttributes::new(ProductId(product), 1, 100, 1, u.to_string())
            })
            .collect();
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images,
        }
    }

    #[test]
    fn add_product_inserts_and_is_searchable() {
        let f = fixture();
        let ev = add_event(&f, 1, &["u1", "u2"]);
        let r = f.indexer.apply(&ev);
        assert_eq!(r.inserted, 2);
        assert_eq!(r.touched(), 2);
        let index = f.indexer.index();
        index.flush();
        assert_eq!(index.valid_images(), 2);
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        let feats = index.features(id).unwrap();
        let hits = index.search(feats.as_slice(), 1, 4);
        assert_eq!(hits[0].id, id.as_u64());
    }

    #[test]
    fn remove_then_readd_takes_reuse_path() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
        };
        let r = f.indexer.apply(&rm);
        assert_eq!(r.deleted, 1);
        assert_eq!(f.indexer.index().valid_images(), 0);
        // Re-add: must revalidate, not insert.
        let r = f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(r.revalidated, 1);
        assert_eq!(r.inserted, 0);
        assert_eq!(f.indexer.index().valid_images(), 1);
        assert_eq!(f.indexer.index().num_images(), 1, "no duplicate record");
    }

    #[test]
    fn update_changes_attributes() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
            sales: Some(777),
            price: None,
            praise: None,
        };
        let r = f.indexer.apply(&up);
        assert_eq!(r.updated, 1);
        let index = f.indexer.index();
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        assert_eq!(index.attributes(id).unwrap().sales, 777);
    }

    #[test]
    fn operations_on_unknown_urls_fail_gracefully() {
        let f = fixture();
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(9),
            urls: vec!["x".into()],
        };
        assert_eq!(f.indexer.apply(&rm).failed, 1);
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["x".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(f.indexer.apply(&up).failed, 1);
    }

    #[test]
    fn partition_scoping_skips_foreign_images() {
        let f = fixture_with_partition(Some((0, 4)));
        // Generate many images; only ~1/4 should be owned.
        let urls: Vec<String> = (0..40).map(|i| format!("p{i}")).collect();
        let url_refs: Vec<&str> = urls.iter().map(String::as_str).collect();
        let r = f.indexer.apply(&add_event(&f, 1, &url_refs));
        assert_eq!(r.inserted + r.skipped, 40);
        assert!(r.skipped > 0, "some images belong elsewhere");
        assert!(r.inserted > 0, "some images belong here");
        // Every inserted image must actually hash to partition 0.
        for u in &urls {
            let key = ImageKey::from_url(u);
            let owned = key.partition(4) == 0;
            assert_eq!(f.indexer.index().lookup(key).is_some(), owned);
        }
    }

    #[test]
    fn run_loop_consumes_until_stopped() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        for i in 0..20u64 {
            queue.publish(add_event(&f, i, &[&format!("u{i}")]));
        }
        let mut consumer = queue.consumer();
        let stop = AtomicBool::new(true); // run drains the backlog then exits
        let report = f
            .indexer
            .run(&mut consumer, &stop, Duration::from_millis(1));
        assert_eq!(report.inserted, 20);
        assert_eq!(f.indexer.index().valid_images(), 20);
    }

    #[test]
    fn failures_land_in_the_dead_letter_buffer() {
        let f = fixture();
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(9),
            urls: vec!["x".into()],
        };
        assert_eq!(f.indexer.apply(&rm).failed, 1);
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["y".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(f.indexer.apply(&up).failed, 1);

        let letters = f.indexer.drain_dead_letters();
        assert_eq!(letters.len(), 2);
        assert_eq!(letters[0].url, "x");
        assert_eq!(letters[0].operation, DeadLetterOp::Delete);
        assert!(
            letters[0].retryable,
            "unknown URL may be an out-of-order event"
        );
        assert!(
            letters[0].error.contains("x"),
            "error names the URL: {}",
            letters[0].error
        );
        assert_eq!(letters[1].url, "y");
        assert_eq!(letters[1].operation, DeadLetterOp::Update);

        // Draining empties the buffer but keeps the lifetime counters.
        assert!(f.indexer.drain_dead_letters().is_empty());
        let stats = f.indexer.dead_letter_stats();
        assert_eq!(stats.retryable, 2);
        assert_eq!(stats.permanent, 0);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn dead_letter_buffer_is_bounded_and_counts_evictions() {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig {
                dim: DIM,
                ..Default::default()
            }),
            CostModel::free(),
        ));
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                ..Default::default()
            },
            &train,
        ));
        let indexer = RealtimeIndexer::for_index(index, extractor, images, feature_db)
            .with_dead_letter_capacity(3);
        for i in 0..5u64 {
            let rm = ProductEvent::RemoveProduct {
                product_id: ProductId(i),
                urls: vec![format!("missing-{i}")],
            };
            indexer.apply(&rm);
        }
        let stats = indexer.dead_letter_stats();
        assert_eq!(stats.total(), 5, "every failure is counted");
        assert_eq!(stats.evicted, 2, "two oldest letters evicted");
        let letters = indexer.drain_dead_letters();
        assert_eq!(letters.len(), 3, "buffer keeps the newest 3");
        assert_eq!(letters[0].url, "missing-2", "oldest retained letter");
        assert_eq!(letters[2].url, "missing-4", "newest letter last");
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let f = fixture();
        // Rebuild with zero capacity via the builder.
        let indexer = fixture().indexer.with_dead_letter_capacity(0);
        let _ = f; // keep original fixture alive for symmetry
        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["z".into()],
        };
        indexer.apply(&rm);
        assert_eq!(indexer.dead_letter_stats().total(), 1);
        assert!(indexer.drain_dead_letters().is_empty());
    }

    #[test]
    fn apply_at_advances_watermark_and_stamps_dead_letters() {
        let f = fixture();
        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["ghost".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        let r = f.indexer.apply_at(7, &up);
        assert_eq!(r.failed, 1);
        assert_eq!(r.watermark, Some(8));
        assert_eq!(f.indexer.index().stats().applied_offset.get(), 8);
        let letters = f.indexer.drain_dead_letters();
        assert_eq!(
            letters[0].offset,
            Some(7),
            "letter records its source offset"
        );

        // Plain apply leaves no offset and does not move the watermark.
        let r = f.indexer.apply(&up);
        assert_eq!(r.watermark, None);
        assert_eq!(f.indexer.index().stats().applied_offset.get(), 8);
        assert_eq!(f.indexer.drain_dead_letters()[0].offset, None);
    }

    #[test]
    fn run_loop_stamps_queue_offsets() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        queue.publish(add_event(&f, 1, &["u1"]));
        queue.publish(ProductEvent::UpdateAttributes {
            product_id: ProductId(2),
            urls: vec!["not-yet-added".into()],
            sales: Some(1),
            price: None,
            praise: None,
        });
        let mut consumer = queue.consumer();
        let stop = AtomicBool::new(true);
        let report = f
            .indexer
            .run(&mut consumer, &stop, Duration::from_millis(1));
        assert_eq!(report.watermark, Some(2), "both offsets applied");
        assert_eq!(f.indexer.index().stats().applied_offset.get(), 2);
        let letters = f.indexer.drain_dead_letters();
        assert_eq!(letters.len(), 1);
        assert_eq!(letters[0].offset, Some(1), "failure at queue offset 1");
    }

    #[test]
    fn redrive_heals_update_that_raced_ahead_of_its_add() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        // Out-of-order stream: the update arrives before the add exists.
        let off = queue.publish(ProductEvent::UpdateAttributes {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
            sales: Some(777),
            price: None,
            praise: None,
        });
        let event = queue.read_range(off, 1).remove(0);
        assert_eq!(f.indexer.apply_at(off, &event).failed, 1);

        // The add lands; redrive re-reads the update from the queue.
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let r = f.indexer.redrive(&queue);
        assert_eq!(r.updated, 1);
        assert!(f.indexer.drain_dead_letters().is_empty());
        let index = f.indexer.index();
        let id = index.lookup(ImageKey::from_url("u1")).unwrap();
        assert_eq!(index.attributes(id).unwrap().sales, 777);
    }

    #[test]
    fn redrive_requeues_offsetless_and_unavailable_letters() {
        let f = fixture();
        let queue: MessageQueue<ProductEvent> = MessageQueue::new();
        // Offsetless letter: applied outside the queue path.
        f.indexer.apply(&ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["never-added".into()],
        });
        // Offset below the queue base: the source event has been pruned.
        let pruned: MessageQueue<ProductEvent> = MessageQueue::with_base(10);
        f.indexer.apply_at(
            3,
            &ProductEvent::RemoveProduct {
                product_id: ProductId(2),
                urls: vec!["pruned-away".into()],
            },
        );
        assert_eq!(f.indexer.redrive(&queue).touched(), 0);
        assert_eq!(f.indexer.redrive(&pruned).touched(), 0);
        let letters = f.indexer.drain_dead_letters();
        assert_eq!(letters.len(), 2, "both letters survive for later");
        let stats = f.indexer.dead_letter_stats();
        assert_eq!(stats.total(), 2, "requeue does not double-count");
    }

    #[test]
    fn narrow_event_keeps_only_the_failed_url() {
        let ev = ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["a".into(), "b".into()],
        };
        match narrow_event_to_url(&ev, "b") {
            Some(ProductEvent::RemoveProduct { urls, .. }) => assert_eq!(urls, vec!["b"]),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(narrow_event_to_url(&ev, "c").is_none());
    }

    #[test]
    fn reuse_avoids_feature_extraction_cost() {
        let f = fixture();
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        let extractions_after_first = f.indexer.extractor.misses();
        f.indexer.apply(&ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["u1".into()],
        });
        f.indexer.apply(&add_event(&f, 1, &["u1"]));
        assert_eq!(
            f.indexer.extractor.misses(),
            extractions_after_first,
            "re-listing must not re-extract"
        );
    }
}
