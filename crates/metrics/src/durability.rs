//! Counters for the durable ingestion log and checkpoint/recovery path.
//!
//! One [`DurabilityMetrics`] instance is shared (via `Arc`) by the
//! segmented log writer, the checkpointer and the recovery path of a
//! serving stack, so a single snapshot answers the operational questions a
//! durable ingestion pipeline raises: how much is being written and
//! fsynced, how often checkpoints land, what recovery actually did (replay
//! volume, torn tails, corrupt records), and how much log the retention
//! policy reclaimed.

use crate::counter::Counter;
use crate::gauge::Gauge;

/// Shared durability counters; all fields are thread-safe.
#[derive(Debug, Default)]
pub struct DurabilityMetrics {
    /// Records appended to the ingestion log.
    pub log_appends: Counter,
    /// Payload bytes appended (excluding frame headers).
    pub log_bytes: Counter,
    /// Explicit `fsync`/`fdatasync` calls issued by the log writer.
    pub log_syncs: Counter,
    /// Segment files created (initial + rotations).
    pub segments_created: Counter,
    /// Segment files deleted by watermark-keyed retention.
    pub segments_pruned: Counter,
    /// Per-key compaction passes completed over the log.
    pub log_compactions: Counter,
    /// Events blanked into no-op tombstones by compaction.
    pub compaction_events_dropped: Counter,
    /// Log bytes reclaimed by compaction's segment rewrites.
    pub compaction_bytes_reclaimed: Counter,
    /// Checkpoints written successfully.
    pub checkpoints_written: Counter,
    /// Snapshot bytes written across all checkpoints.
    pub checkpoint_bytes: Counter,
    /// Recoveries performed (one per partition replica per startup).
    pub recoveries: Counter,
    /// Recoveries that loaded a checkpoint snapshot (vs. cold replay).
    pub recoveries_from_snapshot: Counter,
    /// Events replayed from the log during recovery.
    pub events_replayed: Counter,
    /// Bytes of torn (partially-written) log tail truncated on open.
    pub torn_bytes_truncated: Counter,
    /// Records dropped because their CRC32C check failed.
    pub corrupt_records_dropped: Counter,
    /// Snapshots that failed their checksum/decode and were skipped in
    /// favour of an older snapshot or a cold replay.
    pub snapshots_rejected: Counter,
    /// Highest offset known durable (appended, and synced when the policy
    /// requires it).
    pub durable_offset: Gauge,
    /// Highest offset applied to an index and covered by a checkpoint.
    pub checkpoint_offset: Gauge,
}

impl DurabilityMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value snapshot of every counter.
    pub fn snapshot(&self) -> DurabilitySnapshot {
        DurabilitySnapshot {
            log_appends: self.log_appends.get(),
            log_bytes: self.log_bytes.get(),
            log_syncs: self.log_syncs.get(),
            segments_created: self.segments_created.get(),
            segments_pruned: self.segments_pruned.get(),
            log_compactions: self.log_compactions.get(),
            compaction_events_dropped: self.compaction_events_dropped.get(),
            compaction_bytes_reclaimed: self.compaction_bytes_reclaimed.get(),
            checkpoints_written: self.checkpoints_written.get(),
            checkpoint_bytes: self.checkpoint_bytes.get(),
            recoveries: self.recoveries.get(),
            recoveries_from_snapshot: self.recoveries_from_snapshot.get(),
            events_replayed: self.events_replayed.get(),
            torn_bytes_truncated: self.torn_bytes_truncated.get(),
            corrupt_records_dropped: self.corrupt_records_dropped.get(),
            snapshots_rejected: self.snapshots_rejected.get(),
            durable_offset: self.durable_offset.get(),
            checkpoint_offset: self.checkpoint_offset.get(),
        }
    }
}

/// Point-in-time values of a [`DurabilityMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilitySnapshot {
    /// See [`DurabilityMetrics::log_appends`].
    pub log_appends: u64,
    /// See [`DurabilityMetrics::log_bytes`].
    pub log_bytes: u64,
    /// See [`DurabilityMetrics::log_syncs`].
    pub log_syncs: u64,
    /// See [`DurabilityMetrics::segments_created`].
    pub segments_created: u64,
    /// See [`DurabilityMetrics::segments_pruned`].
    pub segments_pruned: u64,
    /// See [`DurabilityMetrics::log_compactions`].
    pub log_compactions: u64,
    /// See [`DurabilityMetrics::compaction_events_dropped`].
    pub compaction_events_dropped: u64,
    /// See [`DurabilityMetrics::compaction_bytes_reclaimed`].
    pub compaction_bytes_reclaimed: u64,
    /// See [`DurabilityMetrics::checkpoints_written`].
    pub checkpoints_written: u64,
    /// See [`DurabilityMetrics::checkpoint_bytes`].
    pub checkpoint_bytes: u64,
    /// See [`DurabilityMetrics::recoveries`].
    pub recoveries: u64,
    /// See [`DurabilityMetrics::recoveries_from_snapshot`].
    pub recoveries_from_snapshot: u64,
    /// See [`DurabilityMetrics::events_replayed`].
    pub events_replayed: u64,
    /// See [`DurabilityMetrics::torn_bytes_truncated`].
    pub torn_bytes_truncated: u64,
    /// See [`DurabilityMetrics::corrupt_records_dropped`].
    pub corrupt_records_dropped: u64,
    /// See [`DurabilityMetrics::snapshots_rejected`].
    pub snapshots_rejected: u64,
    /// See [`DurabilityMetrics::durable_offset`].
    pub durable_offset: u64,
    /// See [`DurabilityMetrics::checkpoint_offset`].
    pub checkpoint_offset: u64,
}

impl DurabilitySnapshot {
    /// Events the durable log holds beyond the newest checkpoint — the
    /// replay work a crash right now would cost.
    pub fn replay_exposure(&self) -> u64 {
        self.durable_offset.saturating_sub(self.checkpoint_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = DurabilityMetrics::new();
        m.log_appends.add(5);
        m.log_bytes.add(500);
        m.log_syncs.incr();
        m.checkpoints_written.incr();
        m.durable_offset.set_max(5);
        m.checkpoint_offset.set_max(3);
        let s = m.snapshot();
        assert_eq!(s.log_appends, 5);
        assert_eq!(s.log_bytes, 500);
        assert_eq!(s.log_syncs, 1);
        assert_eq!(s.checkpoints_written, 1);
        assert_eq!(s.replay_exposure(), 2);
    }

    #[test]
    fn replay_exposure_saturates() {
        let s = DurabilitySnapshot {
            durable_offset: 3,
            checkpoint_offset: 10,
            ..Default::default()
        };
        assert_eq!(s.replay_exposure(), 0);
    }
}
