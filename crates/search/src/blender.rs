//! The blender service (top of Figure 10).
//!
//! *"When a blender receives an image query request, it extracts the
//! features and sends them to all the brokers. The blender also combines
//! and ranks the results and returns to the user."*
//!
//! [`BlenderService`] resolves the query's features (extracting from the
//! image store when handed a URL — the expensive step, charged to the cost
//! model), fans out to one instance of every broker group in parallel,
//! merges the group top-k lists, and applies the [`RankingPolicy`].

use std::sync::Arc;
use std::time::Duration;

use jdvs_features::category::CategoryDetector;
use jdvs_features::CachingExtractor;
use jdvs_net::balancer::Balancer;
use jdvs_net::rpc::Service;
use jdvs_storage::lru::LruCache;
use jdvs_storage::model::ImageKey;
use jdvs_storage::ImageStore;

use crate::broker::BrokerService;
use crate::protocol::{FanoutQuery, QueryInput, SearchQuery, SearchResponse};
use crate::ranking::RankingPolicy;

/// One blender instance.
pub struct BlenderService {
    /// One balancer per broker group (instances of a group are identical).
    broker_groups: Vec<Balancer<BrokerService>>,
    extractor: Arc<CachingExtractor>,
    images: Arc<ImageStore>,
    ranking: RankingPolicy,
    broker_deadline: Duration,
    /// Optional query-feature cache: repeated query images (viral photos,
    /// trending products) skip re-extraction — the most expensive step of
    /// the query path. Shared across blender instances when cloned in.
    query_cache: Option<Arc<LruCache<ImageKey, Vec<f32>>>>,
    /// Optional query-category detector (Section 2.4's "the product
    /// category of the item is identified").
    category_detector: Option<Arc<CategoryDetector>>,
}

impl std::fmt::Debug for BlenderService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlenderService")
            .field("broker_groups", &self.broker_groups.len())
            .finish()
    }
}

impl BlenderService {
    /// Creates a blender over its broker-group balancers.
    ///
    /// # Panics
    ///
    /// Panics if `broker_groups` is empty.
    pub fn new(
        broker_groups: Vec<Balancer<BrokerService>>,
        extractor: Arc<CachingExtractor>,
        images: Arc<ImageStore>,
        ranking: RankingPolicy,
        broker_deadline: Duration,
    ) -> Self {
        assert!(!broker_groups.is_empty(), "a blender needs at least one broker group");
        Self {
            broker_groups,
            extractor,
            images,
            ranking,
            broker_deadline,
            query_cache: None,
            category_detector: None,
        }
    }

    /// Attaches a category detector; responses then carry the detected
    /// category of the query image.
    pub fn with_category_detector(mut self, detector: Arc<CategoryDetector>) -> Self {
        self.category_detector = Some(detector);
        self
    }

    /// Attaches a query-feature cache (typically shared across blenders).
    pub fn with_query_cache(mut self, cache: Arc<LruCache<ImageKey, Vec<f32>>>) -> Self {
        self.query_cache = Some(cache);
        self
    }

    /// Snapshot of the query cache's statistics, if one is attached.
    pub fn query_cache_stats(&self) -> Option<jdvs_storage::lru::LruStats> {
        self.query_cache.as_ref().map(|c| c.stats())
    }

    /// Resolves a query's features: pass-through for pre-extracted
    /// features; store-fetch + extraction (cost charged) for image URLs.
    fn resolve_features(&self, input: &QueryInput) -> Option<Vec<f32>> {
        match input {
            QueryInput::Features(f) => Some(f.clone()),
            QueryInput::ImageUrl(url) => {
                let key = ImageKey::from_url(url);
                if let Some(cache) = &self.query_cache {
                    if let Some(hit) = cache.get(&key) {
                        return Some(hit);
                    }
                }
                let blob = self.images.get(key)?;
                self.extractor.cost().charge();
                let features = self.extractor.extractor().extract(&blob).into_inner();
                if let Some(cache) = &self.query_cache {
                    cache.put(key, features.clone());
                }
                Some(features)
            }
        }
    }

    /// Executes one user query end-to-end.
    pub fn execute(&self, query: &SearchQuery) -> SearchResponse {
        let Some(features) = self.resolve_features(&query.input) else {
            return SearchResponse::default();
        };
        let detected_category =
            self.category_detector.as_ref().map(|d| d.detect(&features).0);
        let fanout = FanoutQuery {
            features,
            k: query.k,
            nprobe: query.nprobe,
            compressed: query.compressed,
        };
        let responses: Vec<Option<crate::protocol::PartialResponse>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .broker_groups
                    .iter()
                    .map(|group| {
                        let q = fanout.clone();
                        scope.spawn(move |_| group.call(q, self.broker_deadline).ok())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap_or(None)).collect()
            })
            .expect("blender fan-out scope");
        let mut answered = 0;
        let mut failed = 0;
        let mut all_hits = Vec::new();
        for resp in responses {
            match resp {
                Some(r) => {
                    answered += 1;
                    all_hits.extend(r.hits);
                }
                None => failed += 1,
            }
        }
        SearchResponse {
            results: self.ranking.rank(all_hits, query.k),
            partitions_answered: answered,
            partitions_failed: failed,
            detected_category,
        }
    }
}

impl Service for BlenderService {
    type Request = SearchQuery;
    type Response = SearchResponse;

    fn handle(&self, req: SearchQuery) -> SearchResponse {
        self.execute(&req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::searcher::SearcherService;
    use jdvs_core::{IndexConfig, VisualIndex};
    use jdvs_features::cost::CostModel;
    use jdvs_features::{ExtractorConfig, FeatureExtractor};
    use jdvs_net::node::Node;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_storage::FeatureDb;
    use jdvs_vector::Vector;

    const DIM: usize = 8;
    const DL: Duration = Duration::from_secs(5);

    struct World {
        blender: BlenderService,
        images: Arc<ImageStore>,
        index: Arc<VisualIndex>,
        _nodes: Vec<Node<SearcherService>>,
        _broker_nodes: Vec<Node<BrokerService>>,
    }

    /// One partition, one broker group, populated through the real
    /// extraction pipeline so URL queries resolve to indexed neighborhoods.
    fn world() -> World {
        let images = Arc::new(ImageStore::with_blob_len(64));
        let feature_db = Arc::new(FeatureDb::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig { dim: DIM, ..Default::default() }),
            CostModel::free(),
        ));

        // Index 60 images across 3 visual clusters.
        let mut feats = Vec::new();
        for i in 0..60u64 {
            let url = format!("u{i}");
            images.put_synthetic(&url, i % 3);
            let attrs = ProductAttributes::new(ProductId(i), i, 100, 1, url.clone());
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            feats.push((f.unwrap(), attrs));
        }
        let train: Vec<Vector> = feats.iter().map(|(f, _)| f.clone()).collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig { dim: DIM, num_lists: 3, nprobe: 3, ..Default::default() },
            &train,
        ));
        for (f, a) in feats {
            index.insert(f, a).unwrap();
        }
        index.flush();

        let searcher = Node::spawn("s-0-0", SearcherService::for_index(0, Arc::clone(&index)), 2);
        let broker = Node::spawn(
            "b-0-0",
            BrokerService::new(0, vec![Balancer::new(vec![searcher.handle()])], DL),
            2,
        );
        let blender = BlenderService::new(
            vec![Balancer::new(vec![broker.handle()])],
            extractor,
            Arc::clone(&images),
            RankingPolicy::similarity_only(),
            DL,
        );
        World {
            blender,
            images,
            index,
            _nodes: vec![searcher],
            _broker_nodes: vec![broker],
        }
    }

    #[test]
    fn feature_query_returns_ranked_results() {
        let w = world();
        let feats = w.index.features(jdvs_core::ids::ImageId(5)).unwrap();
        let resp = w.blender.execute(&SearchQuery::by_features(feats.into_inner(), 6));
        assert_eq!(resp.results.len(), 6);
        assert_eq!(resp.partitions_answered, 1);
        assert_eq!(resp.partitions_failed, 0);
        assert_eq!(resp.results[0].hit.local_id, 5, "self-match first");
        for w2 in resp.results.windows(2) {
            assert!(w2[0].score >= w2[1].score);
        }
    }

    #[test]
    fn image_url_query_extracts_then_searches() {
        let w = world();
        // Query with a *new* image from visual cluster 0: its neighbors
        // should be indexed images of the same cluster (i % 3 == 0).
        w.images.put_synthetic("query-img", 0);
        let resp = w.blender.execute(&SearchQuery::by_image_url("query-img", 6));
        assert_eq!(resp.results.len(), 6);
        let same_cluster = resp
            .results
            .iter()
            .filter(|r| r.hit.product_id.0 % 3 == 0)
            .count();
        assert!(same_cluster >= 5, "visual cluster should dominate: {same_cluster}/6");
    }

    #[test]
    fn unknown_image_url_returns_empty() {
        let w = world();
        let resp = w.blender.execute(&SearchQuery::by_image_url("missing", 5));
        assert!(resp.results.is_empty());
        assert_eq!(resp.partitions_answered, 0);
    }

    #[test]
    fn results_deduplicate_products() {
        let w = world();
        let feats = w.index.features(jdvs_core::ids::ImageId(0)).unwrap();
        let resp = w.blender.execute(&SearchQuery::by_features(feats.into_inner(), 20));
        let mut products: Vec<u64> = resp.results.iter().map(|r| r.hit.product_id.0).collect();
        let before = products.len();
        products.dedup();
        assert_eq!(products.len(), before, "each product at most once");
    }

    #[test]
    fn query_cache_skips_repeat_extraction() {
        let w = world();
        w.images.put_synthetic("viral", 1);
        let cache = Arc::new(LruCache::new(16));
        // Rebuild a blender around the same backends but with a cache.
        let blender = {
            let World { blender, .. } = w;
            blender.with_query_cache(Arc::clone(&cache))
        };
        let q = SearchQuery::by_image_url("viral", 3);
        let r1 = blender.execute(&q);
        let r2 = blender.execute(&q);
        assert_eq!(r1.results, r2.results, "cached features give identical results");
        let stats = blender.query_cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    #[should_panic(expected = "at least one broker group")]
    fn empty_broker_groups_panics() {
        let images = Arc::new(ImageStore::new());
        let extractor = Arc::new(CachingExtractor::new(
            FeatureExtractor::new(ExtractorConfig { dim: DIM, ..Default::default() }),
            CostModel::free(),
        ));
        BlenderService::new(vec![], extractor, images, RankingPolicy::default(), DL);
    }
}
