//! Chaos integration test: the full topology under the acceptance
//! scenario — 1 of 3 searcher replicas per partition down, 10% drop rate
//! on the survivors, plus rotating crash/recover flaps and stragglers —
//! must keep the availability SLO and never lose a partition silently.

use std::time::Duration;

use jdvs_core::IndexConfig;
use jdvs_net::{HealthPolicy, RetryPolicy};
use jdvs_search::topology::TopologyConfig;
use jdvs_workload::catalog::CatalogConfig;
use jdvs_workload::{run_chaos, ChaosConfig, World, WorldConfig};

fn chaos_world() -> World {
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 60,
            num_clusters: 6,
            ..Default::default()
        },
        topology: TopologyConfig {
            index: IndexConfig {
                dim: 16,
                num_lists: 8,
                nprobe: 8,
                initial_list_capacity: 16,
                ..Default::default()
            },
            num_partitions: 4,
            replicas_per_partition: 3,
            num_broker_groups: 2,
            broker_replicas: 2,
            num_blenders: 2,
            // Give brokers hedging so stragglers are raced, and a breaker
            // that trips fast and probes quickly.
            hedge_after: Some(Duration::from_millis(100)),
            health: HealthPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_millis(100),
            },
            retry: RetryPolicy::default(),
            ranking: jdvs_search::RankingPolicy::similarity_only(),
            ..Default::default()
        },
        seed: 0xC4A05,
        ..Default::default()
    })
}

#[test]
fn degraded_cluster_meets_availability_slo_with_accurate_accounting() {
    let world = chaos_world();
    let config = ChaosConfig {
        queries: 100,
        k: 5,
        deadline: Duration::from_secs(2),
        grace: Duration::from_millis(500),
        // The acceptance scenario: 1 of 3 replicas down, 10% drops.
        kill_replicas_per_partition: 1,
        drop_probability: 0.10,
        // Perturbations on top: a rotating extra crash and straggler.
        flap_every: 10,
        straggle_every: 7,
        straggler_slowdown: Duration::from_millis(30),
        seed: 0xD15EA5E,
    };
    let report = run_chaos(&world, &config);

    // Availability SLO: >= 99% of queries answer within the end-to-end
    // budget (the failover/retry/hedging machinery absorbs the faults).
    assert!(
        report.availability() >= 0.99,
        "availability SLO violated: {:.3} ({report:?})",
        report.availability()
    );
    assert!(
        report.ok >= 99,
        "at most one hard failure in 100: {report:?}"
    );

    // Accounting contract: every response — complete or degraded — must
    // balance its books, and none may lose a partition without a trace.
    assert_eq!(report.accounting_violations, 0, "{report:?}");
    assert_eq!(report.silently_incomplete, 0, "{report:?}");

    // Every query was observed by the metrics layer, and any degraded
    // response was counted there too.
    assert_eq!(report.metrics.queries_total, 100);
    assert_eq!(
        report.metrics.queries_degraded as usize, report.degraded,
        "blender-side degradation counter agrees with the audit: {report:?}"
    );

    // The chaos actually bit: balancers saw real replica failures (dead
    // replicas + 10% drops cannot be absorbed without failover work).
    assert!(
        report.metrics.call_failures > 0,
        "faults must be exercised: {report:?}"
    );
}

#[test]
fn chaos_run_is_deterministic_in_its_fault_schedule() {
    // Same seeds, same world shape => identical fault schedule and query
    // stream, so the audit counters agree run-to-run. (Latency-dependent
    // fields like max_latency are wall-clock and excluded.)
    let config = ChaosConfig {
        queries: 40,
        kill_replicas_per_partition: 1,
        drop_probability: 0.10,
        flap_every: 8,
        seed: 7,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&chaos_world(), &config);
    let b = run_chaos(&chaos_world(), &config);
    assert_eq!(a.queries, b.queries);
    assert_eq!(
        (a.accounting_violations, a.silently_incomplete),
        (b.accounting_violations, b.silently_incomplete)
    );
    assert_eq!((a.accounting_violations, a.silently_incomplete), (0, 0));
}
