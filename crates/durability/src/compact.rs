//! Offline per-key log compaction.
//!
//! A long-lived ingestion log accumulates events whose effects later
//! events fully overwrite: an image re-added with fresh attributes makes
//! every earlier add/update/remove of that URL unobservable on replay, and
//! a full attribute update (all of sales/price/praise set) shadows earlier
//! partial updates of the same URL. [`compact_log`] is an offline pass
//! over the *cold* segments (every segment but the last, which the next
//! open will append to) that blanks such superseded events, shrinking the
//! bytes a cold recovery must read and decode.
//!
//! **Offset preservation.** Replay identifies records purely by position:
//! each segment's frames map 1:1 onto contiguous offsets from its
//! `first_offset`. Compaction therefore never removes a frame — a
//! superseded event is rewritten in place as a no-op tombstone
//! (`RemoveProduct` with an empty URL list, which the indexer applies as
//! nothing), so every surviving offset, checkpoint watermark and dead
//! letter keeps its meaning. The win is bytes, not record count: a bulky
//! `AddProduct` frame collapses to a ~10-byte tombstone.
//!
//! **Supersedence rules** (walking newest → oldest; an event is dropped
//! only when *every* URL it touches is covered):
//!
//! - a later `AddProduct` containing URL `u` covers `u` completely: the
//!   upsert rewrites numeric attributes, listing state and validity
//!   regardless of what came before, so earlier adds, removes and updates
//!   of `u` are unobservable;
//! - a later `UpdateAttributes` with **all** of sales/price/praise set
//!   covers earlier `UpdateAttributes` of `u` — but an intervening add or
//!   remove of `u` breaks that license (the records the two updates hit
//!   may differ), so the walk clears it at any add/remove boundary;
//! - removes are never used to drop an earlier add: "present but
//!   invalidated" and "never inserted" are distinguishable states (the
//!   forward index still resolves the key), so both events must survive.
//!
//! **Crash safety.** Each rewritten segment is written to a `.tmp`
//! sibling, fsynced, renamed over the original, and the directory synced
//! — the same swap discipline checkpoints use. A crash leaves either the
//! old file or the new one, never a mix; stale `.tmp` files are invisible
//! to [`SegmentedLog::open`] (its listing only matches `wal-*.seg`) and
//! are swept by the next compaction.
//!
//! Evidence is only taken from records an open would keep: scanning stops
//! at the first torn segment or offset gap, because the frames past that
//! point are exactly what [`SegmentedLog::open`] truncates away — an
//! event must never be dropped on the word of a superseder that will not
//! survive recovery.

use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::checksum::crc32c;
use jdvs_storage::model::ProductEvent;
use jdvs_storage::queue::Offset;

use crate::codec::{decode_event, encode_event};
use crate::log::{list_segments, read_frame, segment_path, sync_dir, SegmentedLog};

/// What a [`compact_log`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Cold segments rewritten (segments with nothing to drop are left
    /// untouched on disk).
    pub segments_rewritten: u64,
    /// Events blanked into no-op tombstones.
    pub events_dropped: u64,
    /// Payload + frame bytes reclaimed across rewritten segments.
    pub bytes_reclaimed: u64,
}

/// One segment loaded for compaction.
struct LoadedSegment {
    first_offset: Offset,
    path: PathBuf,
    /// Raw payloads of the valid frame prefix, in offset order.
    payloads: Vec<Vec<u8>>,
    /// Whether the file is exactly its valid frames (no torn tail).
    clean: bool,
}

/// Compacts the cold segments of the log in `dir`; see the module docs
/// for the exact rules. Safe to run offline between opens, or on a live
/// log via [`crate::DurableQueue::compact`] (which holds the append lock).
/// Returns what was reclaimed.
pub fn compact_log(dir: &Path, metrics: &DurabilityMetrics) -> io::Result<CompactionReport> {
    // Sweep tmp leftovers of an interrupted pass before anything else;
    // they were never renamed, so their contents are irrelevant.
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("wal-") && name.ends_with(".tmp") {
            fs::remove_file(&path)?;
        }
    }

    let mut report = CompactionReport::default();
    let segments = load_segments(dir)?;
    if segments.len() < 2 {
        return Ok(report); // only the active segment: nothing cold.
    }

    // Decode every surviving event (cold *and* active: the active segment
    // supplies supersedence evidence even though it is never rewritten).
    let mut events: Vec<Vec<ProductEvent>> = Vec::with_capacity(segments.len());
    for seg in &segments {
        let mut decoded = Vec::with_capacity(seg.payloads.len());
        for (i, payload) in seg.payloads.iter().enumerate() {
            let event = decode_event(payload).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "log record {} does not decode: {e}",
                        seg.first_offset + i as Offset
                    ),
                )
            })?;
            decoded.push(event);
        }
        events.push(decoded);
    }

    let droppable = mark_superseded(&events);

    // Rewrite each cold segment that has something to drop. The last
    // loaded segment is the (future) active segment; never touched.
    for (seg_idx, seg) in segments.iter().enumerate().rev().skip(1) {
        if !seg.clean || !droppable[seg_idx].iter().any(|&d| d) {
            continue;
        }
        let mut dropped = 0u64;
        let mut out = Vec::new();
        for (i, payload) in seg.payloads.iter().enumerate() {
            let tomb;
            let body: &[u8] = if droppable[seg_idx][i] {
                dropped += 1;
                tomb = encode_event(&tombstone(&events[seg_idx][i]));
                &tomb
            } else {
                payload
            };
            out.extend_from_slice(&(body.len() as u32).to_le_bytes());
            out.extend_from_slice(&crc32c(body).to_le_bytes());
            out.extend_from_slice(body);
        }

        let old_len = fs::metadata(&seg.path)?.len();
        let tmp = seg.path.with_extension("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
        fs::rename(&tmp, &seg.path)?;
        sync_dir(dir)?;

        report.segments_rewritten += 1;
        report.events_dropped += dropped;
        report.bytes_reclaimed += old_len.saturating_sub(out.len() as u64);
    }

    metrics.log_compactions.incr();
    metrics.compaction_events_dropped.add(report.events_dropped);
    metrics
        .compaction_bytes_reclaimed
        .add(report.bytes_reclaimed);
    Ok(report)
}

/// Loads the contiguous valid prefix of the log's segments — exactly the
/// records [`SegmentedLog::open`] would keep. A torn segment contributes
/// its valid frames (marked unclean) and ends the walk; segments past a
/// gap are the ones open deletes, so they are neither evidence nor
/// candidates.
fn load_segments(dir: &Path) -> io::Result<Vec<LoadedSegment>> {
    let mut firsts = list_segments(dir)?;
    firsts.sort_unstable();

    let mut out: Vec<LoadedSegment> = Vec::new();
    let mut expected: Option<Offset> = None;
    for first in firsts {
        if expected.is_some_and(|e| e != first) {
            break; // offset gap: everything from here is unreachable.
        }
        let path = segment_path(dir, first);
        let bytes = fs::read(&path)?;
        let mut payloads = Vec::new();
        let mut pos = 0usize;
        while let Some((payload, next)) = read_frame(&bytes, pos) {
            payloads.push(payload.to_vec());
            pos = next;
        }
        let clean = pos == bytes.len();
        expected = Some(first + payloads.len() as Offset);
        out.push(LoadedSegment {
            first_offset: first,
            path,
            payloads,
            clean,
        });
        if !clean {
            break; // open truncates here; later segments are dropped.
        }
    }
    Ok(out)
}

/// Marks events whose every touched URL is superseded by a later event,
/// per the module-level rules. Returns one bool per frame, aligned with
/// `events`.
fn mark_superseded(events: &[Vec<ProductEvent>]) -> Vec<Vec<bool>> {
    let mut droppable: Vec<Vec<bool>> = events.iter().map(|seg| vec![false; seg.len()]).collect();
    // URLs a later AddProduct rewrites from scratch.
    let mut rewritten: HashSet<&str> = HashSet::new();
    // URLs a later full UpdateAttributes refreshes, license still intact
    // (no add/remove of the URL seen since).
    let mut refreshed: HashSet<&str> = HashSet::new();

    for seg_idx in (0..events.len()).rev() {
        for (i, event) in events[seg_idx].iter().enumerate().rev() {
            let covered = |url: &str| rewritten.contains(url) || refreshed.contains(url);
            match event {
                ProductEvent::AddProduct { images, .. } => {
                    droppable[seg_idx][i] = !images.is_empty()
                        && images.iter().all(|a| rewritten.contains(a.url.as_str()));
                    for a in images {
                        rewritten.insert(a.url.as_str());
                        refreshed.remove(a.url.as_str());
                    }
                }
                ProductEvent::RemoveProduct { urls, .. } => {
                    droppable[seg_idx][i] =
                        !urls.is_empty() && urls.iter().all(|u| rewritten.contains(u.as_str()));
                    for u in urls {
                        // Add/remove boundary: earlier updates may hit a
                        // different record state than the refresher did.
                        refreshed.remove(u.as_str());
                    }
                }
                ProductEvent::UpdateAttributes {
                    urls,
                    sales,
                    price,
                    praise,
                    ..
                } => {
                    droppable[seg_idx][i] =
                        !urls.is_empty() && urls.iter().all(|u| covered(u.as_str()));
                    if sales.is_some() && price.is_some() && praise.is_some() {
                        for u in urls {
                            if !rewritten.contains(u.as_str()) {
                                refreshed.insert(u.as_str());
                            }
                        }
                    }
                }
            }
        }
    }
    droppable
}

/// The no-op an offset keeps after its event is dropped: a remove with no
/// URLs applies as nothing, decodes with the existing codec, and retains
/// the product id for debuggability.
fn tombstone(event: &ProductEvent) -> ProductEvent {
    ProductEvent::RemoveProduct {
        product_id: event.product_id(),
        urls: Vec::new(),
    }
}

impl SegmentedLog {
    /// Runs [`compact_log`] over this log's directory. Requires `&mut
    /// self` so no append or rotation races the segment swap; the active
    /// segment is untouched, and replay keys records by frame position —
    /// which compaction preserves — so the in-memory segment table stays
    /// valid.
    pub fn compact(&mut self) -> io::Result<CompactionReport> {
        compact_log(self.dir(), self.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{FsyncPolicy, LogConfig};
    use crate::queue::DurableQueue;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-cmp-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path) -> LogConfig {
        LogConfig {
            dir: dir.to_path_buf(),
            segment_max_bytes: 1, // roll after every record: 1 event/segment
            fsync: FsyncPolicy::Always,
            group_commit: false,
        }
    }

    fn add(product: u64, url: &str, sales: u64) -> ProductEvent {
        ProductEvent::AddProduct {
            product_id: ProductId(product),
            images: vec![ProductAttributes::new(
                ProductId(product),
                sales,
                100,
                1,
                url.to_string(),
            )],
        }
    }

    fn remove(product: u64, url: &str) -> ProductEvent {
        ProductEvent::RemoveProduct {
            product_id: ProductId(product),
            urls: vec![url.to_string()],
        }
    }

    fn update(product: u64, url: &str, sales: Option<u64>, full: bool) -> ProductEvent {
        ProductEvent::UpdateAttributes {
            product_id: ProductId(product),
            urls: vec![url.to_string()],
            sales,
            price: full.then_some(55),
            praise: full.then_some(7),
        }
    }

    fn replayed(dir: &Path) -> Vec<ProductEvent> {
        let dq = DurableQueue::open(config(dir), Arc::new(DurabilityMetrics::new())).unwrap();
        dq.queue().read_range(0, usize::MAX)
    }

    #[test]
    fn readd_supersedes_earlier_history_of_the_url() {
        let dir = temp_dir("readd");
        {
            let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
            dq.queue().publish(add(1, "u1", 10)); // 0: superseded by 3
            dq.queue().publish(update(1, "u1", Some(11), false)); // 1: superseded by 3
            dq.queue().publish(add(2, "u2", 20)); // 2: live
            dq.queue().publish(add(1, "u1", 12)); // 3: live (the superseder)
            dq.queue().publish(add(3, "u3", 30)); // 4: active segment
        }
        let metrics = DurabilityMetrics::new();
        let report = compact_log(&dir, &metrics).unwrap();
        assert_eq!(report.events_dropped, 2);
        assert!(report.segments_rewritten >= 1);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(metrics.compaction_events_dropped.get(), 2);

        let events = replayed(&dir);
        assert_eq!(events.len(), 5, "offsets preserved");
        for off in [0usize, 1] {
            assert!(
                matches!(&events[off], ProductEvent::RemoveProduct { urls, .. } if urls.is_empty()),
                "offset {off} should be a tombstone, got {:?}",
                events[off]
            );
        }
        assert_eq!(events[2], add(2, "u2", 20));
        assert_eq!(events[3], add(1, "u1", 12));
        assert_eq!(events[4], add(3, "u3", 30));

        // A second pass finds nothing left to drop: tombstones are not
        // re-dropped and live events are not newly superseded.
        let report2 = compact_log(&dir, &metrics).unwrap();
        assert_eq!(report2.events_dropped, 0);
        assert_eq!(report2.segments_rewritten, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_update_supersedes_partial_update_unless_a_remove_intervenes() {
        let dir = temp_dir("update");
        {
            let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
            dq.queue().publish(add(1, "u1", 1)); // 0: live (only add of u1)
            dq.queue().publish(update(1, "u1", Some(2), false)); // 1: superseded by 2
            dq.queue().publish(update(1, "u1", Some(3), true)); // 2: NOT superseded (remove barrier blocks 5's license)
            dq.queue().publish(update(1, "u1", Some(4), false)); // 3: NOT superseded (remove barrier)
            dq.queue().publish(remove(1, "u1")); // 4: live (removes never drop adds)
            dq.queue().publish(update(1, "u1", Some(5), true)); // 5: live
            dq.queue().publish(add(9, "pad", 0)); // 6: active segment
        }
        let report = compact_log(&dir, &DurabilityMetrics::new()).unwrap();
        assert_eq!(report.events_dropped, 1);

        let events = replayed(&dir);
        let is_tomb = |e: &ProductEvent| matches!(e, ProductEvent::RemoveProduct { urls, .. } if urls.is_empty());
        assert!(!is_tomb(&events[0]), "the add must survive");
        assert!(is_tomb(&events[1]));
        assert!(!is_tomb(&events[2]), "remove barrier keeps offset 2");
        assert!(!is_tomb(&events[3]), "remove barrier keeps offset 3");
        assert_eq!(events[4], remove(1, "u1"));
        assert_eq!(events[5], update(1, "u1", Some(5), true));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_url_event_survives_until_every_url_is_superseded() {
        let dir = temp_dir("multi");
        {
            let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
            dq.queue().publish(ProductEvent::AddProduct {
                product_id: ProductId(1),
                images: vec![
                    ProductAttributes::new(ProductId(1), 1, 1, 1, "a".to_string()),
                    ProductAttributes::new(ProductId(1), 1, 1, 1, "b".to_string()),
                ],
            }); // 0: only "a" re-added later — must survive
            dq.queue().publish(add(1, "a", 2)); // 1: live
            dq.queue().publish(add(9, "pad", 0)); // 2: active
        }
        let report = compact_log(&dir, &DurabilityMetrics::new()).unwrap();
        assert_eq!(report.events_dropped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_segment_log_is_left_alone() {
        let dir = temp_dir("single");
        {
            let mut cfg = config(&dir);
            cfg.segment_max_bytes = 1 << 20; // everything in one segment
            let dq = DurableQueue::open(cfg, Arc::new(DurabilityMetrics::new())).unwrap();
            dq.queue().publish(add(1, "u1", 1));
            dq.queue().publish(add(1, "u1", 2));
        }
        let report = compact_log(&dir, &DurabilityMetrics::new()).unwrap();
        assert_eq!(report, CompactionReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_swept_and_ignored() {
        let dir = temp_dir("tmp");
        {
            let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
            dq.queue().publish(add(1, "u1", 1));
            dq.queue().publish(add(1, "u1", 2));
            dq.queue().publish(add(2, "u2", 1));
        }
        // A crash mid-swap leaves a half-written tmp next to the segment.
        fs::write(dir.join("wal-00000000000000000000.tmp"), b"garbage").unwrap();
        let report = compact_log(&dir, &DurabilityMetrics::new()).unwrap();
        assert_eq!(report.events_dropped, 1);
        assert!(
            !fs::read_dir(&dir).unwrap().any(|e| {
                let n = e.unwrap().file_name();
                n.to_str().unwrap().ends_with(".tmp")
            }),
            "tmp leftovers swept"
        );
        assert_eq!(replayed(&dir).len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_log_compaction_through_the_durable_queue() {
        let dir = temp_dir("live");
        let dq = DurableQueue::open(config(&dir), Arc::new(DurabilityMetrics::new())).unwrap();
        for i in 0..10 {
            dq.queue().publish(add(1, "hot", i));
        }
        let report = dq.compact().unwrap();
        assert!(report.events_dropped >= 8, "got {report:?}");
        // The open log keeps serving: replay sees all offsets, appends
        // continue the sequence, and a reopen agrees.
        assert_eq!(dq.queue().publish(add(2, "u2", 0)), 10);
        drop(dq);
        let events = replayed(&dir);
        assert_eq!(events.len(), 11);
        assert_eq!(events[10], add(2, "u2", 0));
        fs::remove_dir_all(&dir).unwrap();
    }
}
