//! Property-based tests for jdvs-storage: the KV store against a model
//! map, queue cursor semantics, and event/catalog schema laws.

use proptest::prelude::*;
use std::collections::HashMap;

use jdvs_storage::model::{ImageKey, ProductAttributes, ProductEvent, ProductId};
use jdvs_storage::{KvStore, MessageQueue};

#[derive(Debug, Clone)]
enum KvOp {
    Put(u16, u32),
    Remove(u16),
    GetOrInsert(u16, u32),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| KvOp::Put(k, v)),
        any::<u16>().prop_map(KvOp::Remove),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| KvOp::GetOrInsert(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded KV store behaves exactly like a HashMap under any
    /// sequence of put/remove/get_or_insert.
    #[test]
    fn kv_matches_model(ops in prop::collection::vec(kv_op(), 1..200)) {
        let kv: KvStore<u16, u32> = KvStore::with_shards(8);
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                KvOp::Put(k, v) => {
                    prop_assert_eq!(kv.put(k, v), model.insert(k, v));
                }
                KvOp::Remove(k) => {
                    prop_assert_eq!(kv.remove(&k), model.remove(&k));
                }
                KvOp::GetOrInsert(k, v) => {
                    let got = kv.get_or_insert_with(k, || v);
                    let expected = *model.entry(k).or_insert(v);
                    prop_assert_eq!(got, expected);
                }
            }
        }
        prop_assert_eq!(kv.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(kv.get(k), Some(*v));
            prop_assert!(kv.contains(k));
        }
    }

    /// Interleaved consumers each independently see the full sequence.
    #[test]
    fn queue_consumers_are_isolated(
        messages in prop::collection::vec(any::<u16>(), 1..100),
        splits in prop::collection::vec(1usize..10, 1..10),
    ) {
        let q = MessageQueue::new();
        q.publish_batch(messages.iter().copied());
        let mut a = q.consumer();
        let mut b = q.consumer();
        // Drain a in arbitrary batch sizes, b all at once; both match.
        let mut got_a = Vec::new();
        let mut i = 0;
        while got_a.len() < messages.len() {
            let n = splits[i % splits.len()];
            got_a.extend(a.poll_batch(n));
            i += 1;
        }
        prop_assert_eq!(&got_a, &messages);
        prop_assert_eq!(&b.poll_batch(usize::MAX), &messages);
    }

    /// seek + read_range agree with direct consumption.
    #[test]
    fn queue_seek_matches_range(
        messages in prop::collection::vec(any::<u8>(), 1..80),
        from in 0u64..100,
    ) {
        let q = MessageQueue::new();
        q.publish_batch(messages.iter().copied());
        let range = q.read_range(from, usize::MAX);
        let mut c = q.consumer_at(from);
        let drained: Vec<u8> = std::iter::from_fn(|| c.poll_now()).collect();
        prop_assert_eq!(range, drained);
    }

    /// Image keys are injective in practice: distinct short URLs rarely
    /// collide; identical URLs always agree; partitions are stable.
    #[test]
    fn image_key_laws(url_a in ".{1,40}", url_b in ".{1,40}", parts in 1usize..32) {
        let ka = ImageKey::from_url(&url_a);
        prop_assert_eq!(ka, ImageKey::from_url(&url_a));
        if url_a != url_b {
            // Not a strict guarantee (hash), but FNV over short strings
            // colliding within a proptest run would indicate a broken hash.
            prop_assert_ne!(ka, ImageKey::from_url(&url_b));
        }
        prop_assert!(ka.partition(parts) < parts);
    }

    /// Event accessors agree with the payload for all event kinds.
    #[test]
    fn event_accessors_consistent(
        pid in any::<u64>(),
        urls in prop::collection::vec(".{1,20}", 1..5),
    ) {
        let product_id = ProductId(pid);
        let images: Vec<ProductAttributes> = urls
            .iter()
            .map(|u| ProductAttributes::new(product_id, 1, 2, 3, u.clone()))
            .collect();
        let add = ProductEvent::AddProduct { product_id, images };
        prop_assert_eq!(add.product_id(), product_id);
        prop_assert_eq!(add.urls().len(), urls.len());

        let rm = ProductEvent::RemoveProduct { product_id, urls: urls.clone() };
        prop_assert_eq!(rm.urls(), urls.iter().map(String::as_str).collect::<Vec<_>>());

        let up = ProductEvent::UpdateAttributes {
            product_id,
            urls: urls.clone(),
            sales: None,
            price: Some(9),
            praise: None,
        };
        prop_assert_eq!(up.product_id(), product_id);
    }
}
