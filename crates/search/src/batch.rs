//! Micro-batching front of the searcher tier.
//!
//! Co-arriving queries on different connections are coalesced into one
//! [`SearcherService::execute_batch`] call so the PQ fast-scan walks each
//! probed block once for the whole batch instead of once per query. The
//! batcher sits *behind* admission control (an admitted request may wait
//! in a forming batch) and in front of the engine:
//!
//! - The **first** arrival becomes the batch *leader*: it opens a batch
//!   and waits up to [`BatchConfig::window`] for followers.
//! - Later arrivals join the open batch as *followers* and block until
//!   the leader executes and hands their response back.
//! - The batch executes as soon as it reaches [`BatchConfig::max_batch`]
//!   members, the window expires, or the tier starts draining —
//!   whichever comes first.
//! - A query whose remaining deadline budget is below
//!   [`BatchConfig::min_hold_budget`] is **never held**: it bypasses the
//!   batcher and executes solo, so batching can only add latency to
//!   requests that can afford it.
//!
//! Every engine call (including bypassed singletons) records its batch
//! depth, and every held member records its hold time, into the tier's
//! shared [`ServingMetrics`] histograms — the data behind the
//! throughput-for-latency trade the window buys.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use jdvs_metrics::ServingMetrics;
use jdvs_net::rpc::Service;

use crate::protocol::{FanoutQuery, PartialResponse};
use crate::searcher::SearcherService;

/// Knobs of the searcher-input micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// How long a batch leader waits for followers before executing.
    /// `0` disables batching (every query executes solo).
    pub window: Duration,
    /// Executes the batch early once this many members joined. Values
    /// `<= 1` disable batching.
    pub max_batch: usize,
    /// Queries with a remaining deadline budget below this are executed
    /// solo instead of held — a query near its budget is never delayed by
    /// the window.
    pub min_hold_budget: Duration,
}

impl BatchConfig {
    /// A disabled batcher: every query executes solo, no histograms are
    /// recorded. This is the [`Default`].
    pub fn disabled() -> Self {
        Self {
            window: Duration::ZERO,
            max_batch: 1,
            min_hold_budget: Duration::ZERO,
        }
    }

    /// Whether this configuration actually batches.
    pub fn is_enabled(&self) -> bool {
        self.max_batch > 1 && !self.window.is_zero()
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One forming batch, owned by its leader.
struct OpenBatch {
    id: u64,
    queries: Vec<FanoutQuery>,
    arrivals: Vec<Instant>,
    /// Closed early by the follower that filled it to `max_batch`.
    full: bool,
}

/// An executed batch parked for follower pickup.
struct DoneBatch {
    results: Vec<Option<PartialResponse>>,
    /// Followers that have not collected their slot yet.
    remaining: usize,
}

#[derive(Default)]
struct State {
    open: Option<OpenBatch>,
    done: HashMap<u64, DoneBatch>,
    next_id: u64,
    draining: bool,
}

/// [`SearcherService`] wrapped in a time/size-window micro-batcher; the
/// serving tier's connection threads call [`Service::handle`] exactly as
/// before and each gets its own response back — batching is invisible on
/// the wire.
pub struct BatchingSearcher {
    inner: SearcherService,
    config: BatchConfig,
    metrics: Arc<ServingMetrics>,
    state: Mutex<State>,
    cv: Condvar,
}

impl std::fmt::Debug for BatchingSearcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchingSearcher")
            .field("inner", &self.inner)
            .field("config", &self.config)
            .finish()
    }
}

impl BatchingSearcher {
    /// Wraps `inner` with the given batching policy, recording batch
    /// depth/wait into `metrics` (share the tier's instance so the
    /// histograms surface in its serving snapshot).
    pub fn new(inner: SearcherService, config: BatchConfig, metrics: Arc<ServingMetrics>) -> Self {
        Self {
            inner,
            config,
            metrics,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// The wrapped searcher.
    pub fn inner(&self) -> &SearcherService {
        &self.inner
    }

    /// The active batching policy.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Tells the batcher the tier is shutting down: the current leader
    /// flushes its partial batch immediately and later arrivals execute
    /// solo, so a drain never waits out a batch window.
    pub fn drain(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        self.cv.notify_all();
    }

    /// Executes one query, possibly coalesced with co-arriving ones.
    pub fn execute(&self, query: FanoutQuery) -> PartialResponse {
        if !self.config.is_enabled() {
            return self.inner.execute(&query);
        }
        if let Some(budget) = query.budget {
            if budget < self.config.min_hold_budget {
                // Deadline-hopeless for holding: engine call of depth 1,
                // zero held time.
                self.metrics.batch_depth.record_us(1);
                return self.inner.execute(&query);
            }
        }

        let arrival = Instant::now();
        let mut state = self.state.lock();
        if state.draining {
            drop(state);
            self.metrics.batch_depth.record_us(1);
            return self.inner.execute(&query);
        }
        match &mut state.open {
            Some(open) if !open.full => {
                // Join as follower.
                let id = open.id;
                let slot = open.queries.len();
                open.queries.push(query);
                open.arrivals.push(arrival);
                if open.queries.len() >= self.config.max_batch {
                    open.full = true;
                    self.cv.notify_all();
                }
                loop {
                    self.cv.wait(&mut state);
                    if let Some(done) = state.done.get_mut(&id) {
                        let resp = done.results[slot].take().expect("slot collected once");
                        done.remaining -= 1;
                        if done.remaining == 0 {
                            state.done.remove(&id);
                        }
                        return resp;
                    }
                }
            }
            _ => {
                // `open` is either absent or already full (its leader is
                // about to take it): lead a fresh batch. Leading while a
                // full batch is still parked would stack two open batches,
                // so in that narrow race we execute solo instead.
                if state.open.is_some() {
                    drop(state);
                    self.metrics.batch_depth.record_us(1);
                    return self.inner.execute(&query);
                }
                let id = state.next_id;
                state.next_id += 1;
                state.open = Some(OpenBatch {
                    id,
                    queries: vec![query],
                    arrivals: vec![arrival],
                    full: false,
                });
                let deadline = arrival + self.config.window;
                loop {
                    let open = state.open.as_ref().expect("leader owns the open batch");
                    debug_assert_eq!(open.id, id);
                    if open.full || state.draining {
                        break;
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                    let _ = self.cv.wait_for(
                        &mut state,
                        deadline.saturating_duration_since(Instant::now()),
                    );
                }
                let batch = state.open.take().expect("leader owns the open batch");
                drop(state);

                let exec_start = Instant::now();
                let results = self.inner.execute_batch(&batch.queries);
                self.metrics
                    .batch_depth
                    .record_us(batch.queries.len() as u64);
                for held_since in &batch.arrivals {
                    self.metrics
                        .batch_wait
                        .record(exec_start.saturating_duration_since(*held_since));
                }

                let mut results: Vec<Option<PartialResponse>> =
                    results.into_iter().map(Some).collect();
                let own = results[0].take().expect("leader slot");
                let remaining = results.len() - 1;
                if remaining > 0 {
                    let mut state = self.state.lock();
                    state
                        .done
                        .insert(batch.id, DoneBatch { results, remaining });
                    self.cv.notify_all();
                }
                own
            }
        }
    }
}

impl Service for BatchingSearcher {
    type Request = FanoutQuery;
    type Response = PartialResponse;

    fn handle(&self, req: FanoutQuery) -> PartialResponse {
        self.execute(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    use jdvs_core::{IndexConfig, VisualIndex};
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    const DIM: usize = 8;

    fn pq_index(n: usize) -> Arc<VisualIndex> {
        let mut rng = Xoshiro256::seed_from(11);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                nprobe: 4,
                pq_subspaces: Some(DIM / 2),
                pq_bits: 4,
                ..Default::default()
            },
            &data,
        ));
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), i as u64, 9, 1, format!("b/u{i}")),
                )
                .unwrap();
        }
        index.flush();
        index
    }

    fn query(index: &VisualIndex, i: u32, budget: Option<Duration>) -> FanoutQuery {
        FanoutQuery {
            features: index
                .features(jdvs_core::ids::ImageId(i))
                .unwrap()
                .into_inner(),
            k: 5,
            nprobe: Some(3),
            compressed: true,
            budget,
            filter: None,
        }
    }

    fn batcher(index: &Arc<VisualIndex>, config: BatchConfig) -> Arc<BatchingSearcher> {
        Arc::new(BatchingSearcher::new(
            SearcherService::for_index(0, Arc::clone(index)),
            config,
            Arc::new(ServingMetrics::new()),
        ))
    }

    #[test]
    fn batch_of_one_equals_unbatched() {
        let index = pq_index(60);
        let enabled = batcher(
            &index,
            BatchConfig {
                window: Duration::from_millis(10),
                max_batch: 8,
                min_hold_budget: Duration::ZERO,
            },
        );
        let solo = SearcherService::for_index(0, Arc::clone(&index));
        for i in [0u32, 7, 23] {
            let q = query(&index, i, None);
            assert_eq!(enabled.execute(q.clone()), solo.execute(&q));
        }
        // Three engine calls, each of depth 1, each held ~the full window.
        let depth = enabled.metrics.batch_depth.snapshot();
        assert_eq!(depth.count(), 3);
        assert_eq!(depth.max_us(), 1);
        assert_eq!(enabled.metrics.batch_wait.snapshot().count(), 3);
    }

    #[test]
    fn window_expiry_bounds_trickle_latency() {
        let index = pq_index(40);
        let b = batcher(
            &index,
            BatchConfig {
                window: Duration::from_millis(20),
                max_batch: 32, // never fills from a trickle
                min_hold_budget: Duration::ZERO,
            },
        );
        let start = Instant::now();
        let resp = b.execute(query(&index, 1, None));
        let elapsed = start.elapsed();
        assert!(!resp.hits.is_empty());
        assert!(
            elapsed < Duration::from_millis(500),
            "trickle query waited {elapsed:?}, window expiry should have fired"
        );
        assert!(
            elapsed >= Duration::from_millis(15),
            "leader returned after {elapsed:?}, before the window could expire"
        );
    }

    #[test]
    fn hopeless_deadline_is_never_held() {
        let index = pq_index(40);
        let b = batcher(
            &index,
            BatchConfig {
                window: Duration::from_millis(200),
                max_batch: 32,
                min_hold_budget: Duration::from_millis(50),
            },
        );
        let start = Instant::now();
        let resp = b.execute(query(&index, 2, Some(Duration::from_millis(10))));
        assert!(!resp.hits.is_empty());
        assert!(
            start.elapsed() < Duration::from_millis(150),
            "hopeless-deadline query was held by the batch window"
        );
        // Solo bypass still shows up as a depth-1 engine call.
        assert_eq!(b.metrics.batch_depth.snapshot().max_us(), 1);
        assert_eq!(b.metrics.batch_wait.snapshot().count(), 0);
    }

    #[test]
    fn drain_flushes_partial_batch() {
        let index = pq_index(40);
        let b = batcher(
            &index,
            BatchConfig {
                window: Duration::from_secs(30), // would hang without drain
                max_batch: 32,
                min_hold_budget: Duration::ZERO,
            },
        );
        let b2 = Arc::clone(&b);
        let q = query(&index, 3, None);
        let leader = thread::spawn(move || b2.execute(q));
        // Wait for the leader to open its batch, then drain.
        let t0 = Instant::now();
        while b.state.lock().open.is_none() {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "leader never opened a batch"
            );
            thread::sleep(Duration::from_millis(1));
        }
        b.drain();
        let resp = leader.join().unwrap();
        assert!(!resp.hits.is_empty());
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drain did not flush the partial batch"
        );
        // Post-drain arrivals execute solo immediately.
        let start = Instant::now();
        b.execute(query(&index, 4, None));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn full_batch_executes_early_and_matches_sequential() {
        let index = pq_index(80);
        let b = batcher(
            &index,
            BatchConfig {
                window: Duration::from_secs(10), // size, not time, must trigger
                max_batch: 4,
                min_hold_budget: Duration::ZERO,
            },
        );
        let solo = SearcherService::for_index(0, Arc::clone(&index));
        let queries: Vec<FanoutQuery> = (0..8u32).map(|i| query(&index, i, None)).collect();
        let start = Instant::now();
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let b = Arc::clone(&b);
                let q = q.clone();
                thread::spawn(move || b.execute(q))
            })
            .collect();
        let got: Vec<PartialResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "full batches should execute before the window expires"
        );
        for (q, got) in queries.iter().zip(&got) {
            assert_eq!(got, &solo.execute(q), "batched response diverged from solo");
        }
        // Every member was counted in exactly one engine call.
        let depth = b.metrics.batch_depth.snapshot();
        let members = (depth.mean_us() * depth.count() as f64).round() as u64;
        assert_eq!(members, 8, "histogram must account for every batch member");
        assert!(
            depth.count() >= 2,
            "8 members with max_batch=4 need >= 2 calls"
        );
        assert!(depth.max_us() <= 4, "no engine call may exceed max_batch");
        // Batched members (leader + followers) record a hold time; only the
        // narrow full-batch race executes solo without one — and that race
        // requires a full batch (4 held members) to have formed first.
        let waits = b.metrics.batch_wait.snapshot().count();
        assert!(
            (4..=8).contains(&waits),
            "unexpected hold-time samples: {waits}"
        );
        // All follower slots were collected; no parked batches leak.
        assert!(b.state.lock().done.is_empty());
    }
}
