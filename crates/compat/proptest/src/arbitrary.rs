//! `any::<T>()` for the primitive types the workspace's tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

/// Finite floats only: round-trip and arithmetic properties in the test
/// suite compare with `==`/epsilon bounds, which NaN would vacuously break.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.next_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2.0e12
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_finite() {
        let mut r = TestRng::deterministic("arb");
        for _ in 0..1000 {
            assert!(f32::arbitrary(&mut r).is_finite());
            assert!(f64::arbitrary(&mut r).is_finite());
        }
    }

    #[test]
    fn arrays_fill_all_slots() {
        let mut r = TestRng::deterministic("arb-arr");
        let a: [u8; 16] = Arbitrary::arbitrary(&mut r);
        // Not all zero with overwhelming probability.
        assert!(a.iter().any(|&b| b != 0));
    }
}
