//! Cross-crate integration: the distributed topology.
//!
//! Verifies that the 3-level hierarchy returns the same results as a
//! single-partition oracle, that partitioning is disjoint and complete,
//! and that replica/broker failures and recovery behave per Section 2.4.

use std::time::Duration;

use jdvs::search::{QueryInput, SearchQuery};
use jdvs::storage::ImageKey;
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::queries::QueryGenerator;
use jdvs::workload::scenario::{World, WorldConfig};

fn world() -> World {
    World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 120,
            num_clusters: 12,
            ..Default::default()
        },
        topology: jdvs::search::TopologyConfig {
            num_partitions: 4,
            replicas_per_partition: 2,
            num_broker_groups: 2,
            broker_replicas: 2,
            num_blenders: 2,
            ranking: jdvs::search::RankingPolicy::similarity_only(),
            ..WorldConfig::fast_test().topology
        },
        ..WorldConfig::fast_test()
    })
}

#[test]
fn partitioning_is_disjoint_and_complete() {
    let w = world();
    let map = w.topology().partition_map();
    let mut seen = std::collections::HashSet::new();
    for product in w.catalog().products() {
        for url in &product.urls {
            let key = ImageKey::from_url(url);
            let p = map.partition_of(key);
            // The image exists in exactly its partition (checked across all).
            for (q, replicas) in w.topology().indexes().iter().enumerate() {
                let found = replicas[0].lookup(key).is_some();
                assert_eq!(found, p == q, "{url} in partition {q}?");
                // Replicas agree with each other.
                assert_eq!(
                    replicas[0].lookup(key).is_some(),
                    replicas[1].lookup(key).is_some()
                );
            }
            assert!(seen.insert(key), "image keys unique");
        }
    }
}

#[test]
fn distributed_results_match_single_partition_oracle() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let generator = QueryGenerator::new(w.catalog(), 17);
    for _ in 0..10 {
        let (query, _) = generator.next_query(w.images(), 8);
        let url = match &query.input {
            QueryInput::ImageUrl(u) => u.clone(),
            _ => unreachable!(),
        };
        // Oracle: brute-force over every partition merged, then the same
        // best-image-per-product dedup the blender applies.
        let blob = w.images().get_by_url(&url).unwrap();
        let feats = w.extractor().extractor().extract(&blob);
        let mut all: Vec<(jdvs::storage::ProductId, String, f32)> = Vec::new();
        let total_images = w.catalog().num_images();
        for replicas in w.topology().indexes() {
            for n in replicas[0].brute_force_search(feats.as_slice(), total_images) {
                let attrs = replicas[0]
                    .attributes(jdvs::core::ids::ImageId(n.id as u32))
                    .unwrap();
                all.push((attrs.product_id, attrs.url, n.distance));
            }
        }
        all.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let mut seen = std::collections::HashSet::new();
        all.retain(|(pid, _, _)| seen.insert(*pid));
        all.truncate(8);

        let resp = client.search(query).unwrap();
        let got: Vec<&str> = resp.results.iter().map(|r| r.hit.url.as_str()).collect();
        let expected: Vec<&str> = all.iter().map(|(_, u, _)| u.as_str()).collect();
        assert_eq!(
            got, expected,
            "distributed top-8 (deduped) must match the oracle"
        );
    }
}

#[test]
fn nprobe_override_reaches_searchers() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let generator = QueryGenerator::new(w.catalog(), 23);
    let (query, _) = generator.next_query(w.images(), 5);
    // nprobe=1 may trade recall; it must still answer without error.
    let resp = client.search(query.clone().with_nprobe(1)).unwrap();
    assert!(resp.groups_answered > 0);
    assert!(resp.is_complete(), "healthy stack covers every partition");
    let resp_full = client.search(query.with_nprobe(8)).unwrap();
    assert!(resp_full.results.len() >= resp.results.len());
}

#[test]
fn replica_failover_preserves_results() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let product = &w.catalog().products()[10];
    let query = SearchQuery::by_image_url(product.urls[0].clone(), 1);
    let healthy = client.search(query.clone()).unwrap();
    assert_eq!(healthy.results[0].hit.product_id, product.id);
    // Kill replica 0 everywhere.
    for p in 0..4 {
        w.topology().searcher_faults(p, 0).set_down(true);
    }
    let degraded = client.search(query.clone()).unwrap();
    assert_eq!(
        degraded.results[0].hit.product_id, product.id,
        "failover hides the fault"
    );
    // Recover.
    for p in 0..4 {
        w.topology().searcher_faults(p, 0).set_down(false);
    }
    let recovered = client.search(query).unwrap();
    assert_eq!(recovered.results[0].hit.product_id, product.id);
}

#[test]
fn losing_all_replicas_of_a_partition_degrades_gracefully() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let map = w.topology().partition_map();
    let product = &w.catalog().products()[3];
    let dead_partition = map.partition_of_url(&product.urls[0]);
    w.topology()
        .searcher_faults(dead_partition, 0)
        .set_down(true);
    w.topology()
        .searcher_faults(dead_partition, 1)
        .set_down(true);
    // Queries still succeed; the dead partition's images are just absent.
    let resp = client
        .search(SearchQuery::by_image_url(product.urls[0].clone(), 10))
        .unwrap();
    assert!(
        resp.results
            .iter()
            .all(|r| map.partition_of_url(&r.hit.url) != dead_partition),
        "no results can come from the dead partition"
    );
}

#[test]
fn fresh_photo_queries_have_high_intra_family_precision() {
    let w = world();
    let client = w.client(Duration::from_secs(5));
    let generator = QueryGenerator::new(w.catalog(), 31);
    let mut hits = 0usize;
    let mut total = 0usize;
    for _ in 0..20 {
        let (query, cluster) = generator.next_query(w.images(), 5);
        let resp = client.search(query).unwrap();
        for r in &resp.results {
            total += 1;
            if w.cluster_of(r.hit.product_id) == Some(cluster) {
                hits += 1;
            }
        }
    }
    let precision = hits as f64 / total as f64;
    assert!(
        precision > 0.8,
        "intra-family precision {precision} too low"
    );
}
