//! Ablations of the design choices the paper motivates.
//!
//! - **reuse**: disable the "check the KV store before extracting" path
//!   and re-run the day's additions; the paper credits this optimisation
//!   with "significantly improved response time" (513 M of 521 M
//!   additions reuse features).
//! - **bitmap**: compare logical deletion (one bitmap flip) against a
//!   physical rebuild, for both the delete operation itself and the
//!   subsequent query cost.
//! - **expansion**: the Figure 9 protocol (background copy, double-size
//!   slabs) vs inline copying — append-side worst-case stalls.
//! - **nprobe**: recall@10 vs scan cost as the searcher probes more
//!   inverted lists (the accuracy/latency knob of Section 2.4).

use std::sync::Arc;
use std::time::{Duration, Instant};

use jdvs_core::ids::ImageId;
use jdvs_core::inverted::InvertedList;
use jdvs_core::realtime::RealtimeIndexer;
use jdvs_core::search::recall;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_features::cost::{CostDistribution, CostModel};
use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
use jdvs_storage::model::ImageKey;
use jdvs_storage::{FeatureDb, ImageStore};
use jdvs_vector::rng::Xoshiro256;
use jdvs_workload::catalog::{Catalog, CatalogConfig};
use jdvs_workload::events::{DailyPlan, DailyPlanConfig};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 32;

struct DayFixture {
    images: Arc<ImageStore>,
    feature_db: Arc<FeatureDb>,
    extractor: Arc<CachingExtractor>,
    indexer: RealtimeIndexer,
    plan: DailyPlan,
    catalog: Catalog,
}

fn day_fixture(ctx: &Ctx, seed: u64) -> DayFixture {
    let total_events = ctx.scaled(10_000, 500);
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            ..Default::default()
        }),
        // Virtual extraction cost: the quantity the reuse ablation sums.
        CostModel::virtual_time(
            CostDistribution::LogNormal {
                median: Duration::from_millis(400),
                sigma: 0.5,
            },
            seed,
        ),
    ));
    let mut catalog = Catalog::generate(&CatalogConfig {
        num_products: total_events.max(1_000),
        num_clusters: 100,
        seed,
        ..Default::default()
    });
    catalog.materialize(&images);
    let mut training = Vec::new();
    for product in catalog.products().iter().take(1_000) {
        for attrs in product.image_attributes() {
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            training.push(f.expect("materialized"));
        }
    }
    let index = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 64,
            ..Default::default()
        },
        &training,
    ));
    let indexer = RealtimeIndexer::for_index(
        Arc::clone(&index),
        Arc::clone(&extractor),
        Arc::clone(&images),
        Arc::clone(&feature_db),
    );
    for event in catalog.bootstrap_events() {
        indexer.apply(&event);
    }
    index.flush();
    let plan = DailyPlan::generate(
        &mut catalog,
        &images,
        &DailyPlanConfig {
            total_events,
            seed,
            ..Default::default()
        },
    );
    for pid in plan.predelisted() {
        if let Some(product) = catalog.products().iter().find(|p| p.id == *pid) {
            indexer.apply(&product.remove_event());
        }
    }
    DayFixture {
        images,
        feature_db,
        extractor,
        indexer,
        plan,
        catalog,
    }
}

/// Feature-reuse on vs off over the same day of events.
pub fn reuse(ctx: &Ctx) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ablate-reuse",
        "Feature reuse on vs off (same daily event stream)",
        "Sections 2.1/3.1: 513 M of 521 M daily additions reuse features; reuse \"significantly improved the response time\"",
    );
    for (label, enabled) in [("reuse_on", true), ("reuse_off", false)] {
        let f = day_fixture(ctx, 0xAB1);
        f.extractor.set_reuse_enabled(enabled);
        let charged_before = f.extractor.cost().total_charged();
        let extractions_before = f.extractor.misses();
        let t0 = Instant::now();
        let mut touched = 0u64;
        for te in f.plan.events() {
            if !enabled {
                // The counterfactual system has no "previously extracted?"
                // check anywhere, so every addition pays extraction before
                // the index is updated (the index's own record map still
                // prevents duplicate entries, as any implementation must).
                if let jdvs_storage::model::ProductEvent::AddProduct { images, .. } = &te.event {
                    for attrs in images {
                        f.extractor.features_for(attrs, &f.images, &f.feature_db);
                    }
                }
            }
            touched += f.indexer.apply(&te.event).touched();
        }
        let wall = t0.elapsed();
        let extraction_cost = f.extractor.cost().total_charged() - charged_before;
        let extractions = f.extractor.misses() - extractions_before;
        r.push_row(row![
            "mode" => label,
            "events" => f.plan.events().len(),
            "images_touched" => touched,
            "extractions" => extractions,
            "virtual_extraction_cost_s" => format!("{:.1}", extraction_cost.as_secs_f64()),
            "replay_wall_ms" => format!("{:.0}", wall.as_secs_f64() * 1e3),
        ]);
        drop(f);
    }
    r.note("reuse_off forces extraction on every addition whose features the DB would have served");
    r
}

/// Logical (bitmap) deletion vs physical rebuild.
pub fn bitmap(ctx: &Ctx) -> ExperimentResult {
    let n_products = ctx.scaled(8_000, 500);
    let f = day_fixture(
        &Ctx {
            scale: n_products as f64 / 10_000.0,
            ..ctx.clone()
        },
        0xB17,
    );
    let index = f.indexer.index();
    let mut rng = Xoshiro256::seed_from(5);

    // Delete 30% of products logically; time the deletions.
    let victims: Vec<_> = f
        .catalog
        .products()
        .iter()
        .filter(|_| rng.next_bool(0.3))
        .cloned()
        .collect();
    let t0 = Instant::now();
    for v in &victims {
        f.indexer.apply(&v.remove_event());
    }
    let logical_delete = t0.elapsed();
    let deleted_images: usize = victims.iter().map(|v| v.urls.len()).sum();

    // Query cost with bitmap filtering.
    let queries: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            let p = &f.catalog.products()[i % f.catalog.len()];
            f.feature_db
                .features(ImageKey::from_url(&p.urls[0]))
                .expect("extracted")
                .into_inner()
        })
        .collect();
    let t0 = Instant::now();
    for q in &queries {
        index.search(q, 10, 8);
    }
    let bitmap_query = t0.elapsed();

    // Physical rebuild: a fresh index containing only surviving images.
    let t0 = Instant::now();
    let rebuilt = Arc::new(VisualIndex::with_quantizer(
        index.config().clone(),
        index.quantizer().clone(),
    ));
    let victim_ids: std::collections::HashSet<_> = victims.iter().map(|v| v.id).collect();
    for product in f.catalog.products() {
        if victim_ids.contains(&product.id) {
            continue;
        }
        for attrs in product.image_attributes() {
            if let Some(feats) = f.feature_db.features(attrs.image_key()) {
                rebuilt.insert(feats, attrs).expect("rebuild insert");
            }
        }
    }
    rebuilt.flush();
    let physical_rebuild = t0.elapsed();
    let t0 = Instant::now();
    for q in &queries {
        rebuilt.search(q, 10, 8);
    }
    let rebuilt_query = t0.elapsed();

    let mut r = ExperimentResult::new(
        "ablate-bitmap",
        "Validity-bitmap logical deletion vs physical rebuild (30% of catalog deleted)",
        "Sections 2.1/2.3: deletion = one bitmap flip; invalid images are excluded from search; physical cleanup deferred to the weekly full index",
    );
    r.push_row(row![
        "strategy" => "bitmap_logical",
        "delete_images" => deleted_images,
        "delete_total_ms" => format!("{:.3}", logical_delete.as_secs_f64() * 1e3),
        "delete_per_image_us" =>
            format!("{:.2}", logical_delete.as_secs_f64() * 1e6 / deleted_images.max(1) as f64),
        "query_200_ms" => format!("{:.2}", bitmap_query.as_secs_f64() * 1e3),
    ]);
    r.push_row(row![
        "strategy" => "physical_rebuild",
        "delete_images" => deleted_images,
        "delete_total_ms" => format!("{:.3}", physical_rebuild.as_secs_f64() * 1e3),
        "delete_per_image_us" =>
            format!("{:.2}", physical_rebuild.as_secs_f64() * 1e6 / deleted_images.max(1) as f64),
        "query_200_ms" => format!("{:.2}", rebuilt_query.as_secs_f64() * 1e3),
    ]);
    r.note("bitmap deletion is orders of magnitude cheaper; query-side filtering overhead is the (small) gap in query_200_ms");
    r
}

/// Background vs inline inverted-list expansion: append-side stalls.
pub fn expansion(ctx: &Ctx) -> ExperimentResult {
    let n = ctx.scaled(2_000_000, 100_000) as u32;
    let mut r = ExperimentResult::new(
        "ablate-expansion",
        "Inverted-list expansion: background copy (Figure 9) vs inline copy",
        "Section 2.3 Memory Management: double-size slab + background copy keeps appends lock-free and fast",
    );
    for (label, background) in [("background_copy", true), ("inline_copy", false)] {
        let list = InvertedList::new(1_024, background);
        let mut worst = Duration::ZERO;
        let t0 = Instant::now();
        for i in 0..n {
            let s = Instant::now();
            list.append(ImageId(i));
            worst = worst.max(s.elapsed());
        }
        list.flush();
        let total = t0.elapsed();
        r.push_row(row![
            "mode" => label,
            "appends" => n,
            "total_ms" => format!("{:.1}", total.as_secs_f64() * 1e3),
            "ns_per_append" => format!("{:.0}", total.as_secs_f64() * 1e9 / f64::from(n)),
            "worst_single_append_us" => format!("{:.1}", worst.as_secs_f64() * 1e6),
            "expansions" => list.expansions(),
        ]);
    }
    r.note("the paper's protocol bounds the worst single append (no inline O(n) copy on the writer path)");
    r
}

/// Raw-vector scan vs PQ-compressed scan (paper ref \[19\]).
pub fn pq(ctx: &Ctx) -> ExperimentResult {
    use jdvs_core::ids::ImageId;
    use jdvs_core::pq_store::PqStore;
    use jdvs_vector::pq::{PqConfig, ProductQuantizer};
    use jdvs_vector::topk::TopK;

    let n_images = ctx.scaled(20_000, 2_000);
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            jitter: 0.8,
            ..Default::default()
        }),
        CostModel::free(),
    ));
    let catalog = Catalog::generate(&CatalogConfig {
        num_products: n_images / 2,
        num_clusters: 60,
        ..Default::default()
    });
    catalog.materialize(&images);
    let mut vectors: Vec<jdvs_vector::Vector> = Vec::new();
    for product in catalog.products() {
        for attrs in product.image_attributes() {
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            vectors.push(f.expect("materialized"));
        }
    }
    let quantizer = Arc::new(ProductQuantizer::train(
        &vectors[..vectors.len().min(3_000)],
        &PqConfig {
            num_subspaces: 8,
            max_iters: 8,
            seed: 5,
            bits: 8,
        },
    ));
    let store = PqStore::new(Arc::clone(&quantizer), 1);
    for (i, v) in vectors.iter().enumerate() {
        store.put(ImageId(i as u32), jdvs_core::ids::ListId(0), i, v);
    }

    let queries: Vec<&jdvs_vector::Vector> = vectors.iter().step_by(101).take(50).collect();
    let k = 10;
    // Ground truth: raw scan.
    let raw_start = Instant::now();
    let raw_results: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            let mut topk = TopK::new(k);
            for (i, v) in vectors.iter().enumerate() {
                topk.push(
                    i as u64,
                    jdvs_vector::distance::squared_l2(q.as_slice(), v.as_slice()),
                );
            }
            topk.into_sorted_vec().into_iter().map(|n| n.id).collect()
        })
        .collect();
    let raw_time = raw_start.elapsed();

    // Compressed scan via ADC.
    let pq_start = Instant::now();
    let mut total_recall = 0.0;
    for (q, truth) in queries.iter().zip(&raw_results) {
        let table = store.adc_table(q.as_slice());
        let mut topk = TopK::new(k);
        store.scan(&table, |id, d| {
            topk.push(id.as_u64(), d);
        });
        let got: std::collections::HashSet<u64> =
            topk.into_sorted_vec().into_iter().map(|n| n.id).collect();
        total_recall +=
            truth.iter().filter(|id| got.contains(id)).count() as f64 / truth.len() as f64;
    }
    let pq_time = pq_start.elapsed();

    let raw_bytes = DIM * 4;
    let pq_bytes = store.bytes_per_vector();
    let mut r = ExperimentResult::new(
        "ablate-pq",
        "Raw-vector scan vs product-quantized scan",
        "Related work [19] (Jégou et al.): PQ shrinks scan memory ~4·d/m at bounded recall loss",
    );
    r.push_row(row![
        "mode" => "raw_f32",
        "bytes_per_vector" => raw_bytes,
        "recall_at_10" => "1.000",
        "us_per_query" => format!("{:.1}", raw_time.as_secs_f64() * 1e6 / queries.len() as f64),
    ]);
    r.push_row(row![
        "mode" => "pq_adc",
        "bytes_per_vector" => pq_bytes,
        "recall_at_10" => format!("{:.3}", total_recall / queries.len() as f64),
        "us_per_query" => format!("{:.1}", pq_time.as_secs_f64() * 1e6 / queries.len() as f64),
    ]);
    r.note(format!(
        "compression {}x over {} vectors of dim {DIM}",
        raw_bytes / pq_bytes.max(1),
        vectors.len()
    ));
    r
}

/// IVF inverted lists vs the multi-probe LSH baseline (refs \[21, 22\]).
pub fn lsh(ctx: &Ctx) -> ExperimentResult {
    use jdvs_vector::lsh::{LshConfig, LshIndex};

    let n_images = ctx.scaled(20_000, 2_000);
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            jitter: 1.2,
            ..Default::default()
        }),
        CostModel::free(),
    ));
    let catalog = Catalog::generate(&CatalogConfig {
        num_products: n_images / 2,
        num_clusters: 40,
        ..Default::default()
    });
    catalog.materialize(&images);
    let mut pairs = Vec::new();
    for product in catalog.products() {
        for attrs in product.image_attributes() {
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            pairs.push((f.expect("materialized"), attrs));
        }
    }

    // IVF arm: the paper's index.
    let training: Vec<_> = pairs.iter().take(4_000).map(|(v, _)| v.clone()).collect();
    let ivf = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 128,
            ..Default::default()
        },
        &training,
    ));
    for (v, attrs) in &pairs {
        ivf.insert(v.clone(), attrs.clone()).expect("insert");
    }
    ivf.flush();

    // LSH arm.
    let lsh = LshIndex::new(LshConfig {
        dim: DIM,
        tables: 8,
        bits: 12,
        seed: 3,
    });
    for (i, (v, _)) in pairs.iter().enumerate() {
        lsh.insert(i as u64, v);
    }

    let queries: Vec<Vec<f32>> = pairs
        .iter()
        .step_by(97)
        .take(60)
        .map(|(v, _)| v.as_slice().to_vec())
        .collect();
    let truths: Vec<Vec<jdvs_vector::topk::Neighbor>> = queries
        .iter()
        .map(|q| ivf.brute_force_search(q, 10))
        .collect();

    let mut r = ExperimentResult::new(
        "ablate-lsh",
        "IVF inverted lists (the paper's design) vs multi-probe LSH baseline",
        "Related work [21, 22]: LSH is the classic hashing alternative to cluster-based indexing",
    );
    for (label, probe_setting) in [("low", 1usize), ("mid", 4), ("high", 16)] {
        // IVF.
        let t0 = Instant::now();
        let mut ivf_recall = 0.0;
        for (q, truth) in queries.iter().zip(&truths) {
            ivf_recall += recall(&ivf.search(q, 10, probe_setting), truth);
        }
        let ivf_time = t0.elapsed();
        // LSH (same probe knob).
        let t0 = Instant::now();
        let mut lsh_recall = 0.0;
        for (q, truth) in queries.iter().zip(&truths) {
            let got = lsh.search(q, 10, probe_setting);
            let got_ids: std::collections::HashSet<u64> = got.iter().map(|n| n.id).collect();
            lsh_recall += truth.iter().filter(|n| got_ids.contains(&n.id)).count() as f64
                / truth.len() as f64;
        }
        let lsh_time = t0.elapsed();
        r.push_row(row![
            "probes" => format!("{label} ({probe_setting})"),
            "ivf_recall" => format!("{:.3}", ivf_recall / queries.len() as f64),
            "ivf_us_per_query" =>
                format!("{:.1}", ivf_time.as_secs_f64() * 1e6 / queries.len() as f64),
            "lsh_recall" => format!("{:.3}", lsh_recall / queries.len() as f64),
            "lsh_us_per_query" =>
                format!("{:.1}", lsh_time.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
    }
    r.note(format!(
        "{} vectors; LSH: 8 tables x 12 bits; IVF: 128 lists; probe knob = nprobe (IVF) / buckets (LSH)",
        pairs.len()
    ));
    r
}

/// Blender query-feature cache on vs off under viral (heavy-tailed)
/// query traffic.
pub fn cache(ctx: &Ctx) -> ExperimentResult {
    use jdvs_core::IndexConfig as IC;
    use jdvs_search::topology::TopologyConfig;
    use jdvs_workload::client::{ClosedLoopConfig, ClosedLoopDriver};
    use jdvs_workload::queries::QueryGenerator;
    use jdvs_workload::scenario::{ExtractionCost, World, WorldConfig};

    let mut r = ExperimentResult::new(
        "ablate-cache",
        "Blender query-feature cache on vs off (40% viral query traffic)",
        "Extension: query-time extraction dominates response time (Section 2.4); repeated viral queries can skip it",
    );
    let window = ctx.window(Duration::from_millis(1_500));
    for (label, capacity) in [("cache_off", None), ("cache_on", Some(256))] {
        let world = World::build(WorldConfig {
            catalog: jdvs_workload::catalog::CatalogConfig {
                num_products: ctx.scaled(4_000, 500),
                num_clusters: 60,
                ..Default::default()
            },
            topology: TopologyConfig {
                index: IC {
                    dim: DIM,
                    num_lists: 64,
                    ..Default::default()
                },
                num_partitions: 4,
                num_broker_groups: 2,
                query_cache_capacity: capacity,
                ..Default::default()
            },
            extraction_cost: ExtractionCost::Sleep(CostDistribution::Constant(
                Duration::from_millis(8),
            )),
            ..Default::default()
        });
        let generator =
            QueryGenerator::new(world.catalog(), 0xCAC).with_viral(world.images(), 20, 0.4);
        let client = world.client(Duration::from_secs(30));
        let report = ClosedLoopDriver::run(
            &client,
            &generator,
            world.images(),
            ClosedLoopConfig {
                threads: 8,
                duration: window,
                warmup: window.mul_f64(0.2),
                k: 6,
            },
        );
        let cache_stats = world.topology().query_cache_stats();
        r.push_row(row![
            "mode" => label,
            "qps" => format!("{:.1}", report.qps()),
            "mean_ms" => format!("{:.1}", report.mean_ms()),
            "p99_ms" => format!("{:.1}", report.histogram.percentile_us(0.99) as f64 / 1e3),
            "cache_hit_rate" => cache_stats
                .map(|s| format!("{:.2}", s.hit_rate()))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    r.note("40% of queries draw from a 20-image viral pool; extraction costs a constant 8 ms");
    r
}

/// Recall/latency vs nprobe.
///
/// Uses an *overlapping-cluster* feature space (high jitter): with tightly
/// separated families a single probed list already contains the whole
/// top-10 and the sweep degenerates to recall 1.0 everywhere; overlapping
/// neighborhoods straddle IVF cell boundaries, which is the regime the
/// probe knob exists for.
pub fn nprobe(ctx: &Ctx) -> ExperimentResult {
    let n_images = ctx.scaled(20_000, 2_000);
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            jitter: 1.2,
            ..Default::default()
        }),
        CostModel::free(),
    ));
    let catalog = Catalog::generate(&CatalogConfig {
        num_products: n_images / 2,
        num_clusters: 40,
        ..Default::default()
    });
    catalog.materialize(&images);
    let mut vectors = Vec::new();
    for product in catalog.products() {
        for attrs in product.image_attributes() {
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            vectors.push((f.expect("materialized"), attrs));
        }
    }
    let training: Vec<_> = vectors.iter().take(4_000).map(|(v, _)| v.clone()).collect();
    let index = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 128,
            ..Default::default()
        },
        &training,
    ));
    for (v, attrs) in &vectors {
        index.insert(v.clone(), attrs.clone()).expect("insert");
    }
    index.flush();
    let f_catalog = catalog;
    let num_lists = index.quantizer().k();
    let queries: Vec<Vec<f32>> = (0..100)
        .map(|i| {
            let p = &f_catalog.products()[(i * 7) % f_catalog.len()];
            feature_db
                .features(ImageKey::from_url(&p.urls[0]))
                .expect("extracted")
                .into_inner()
        })
        .collect();
    let ground_truth: Vec<_> = queries
        .iter()
        .map(|q| index.brute_force_search(q, 10))
        .collect();

    let mut r = ExperimentResult::new(
        "ablate-nprobe",
        "Recall@10 and scan cost vs probed inverted lists",
        "Section 2.4: the searcher scans the nearest cluster's list; probing more lists trades latency for recall",
    );
    let mut probe = 1usize;
    while probe <= num_lists {
        let t0 = Instant::now();
        let mut total_recall = 0.0;
        for (q, truth) in queries.iter().zip(&ground_truth) {
            let got = index.search(q, 10, probe);
            total_recall += recall(&got, truth);
        }
        let elapsed = t0.elapsed();
        r.push_row(row![
            "nprobe" => probe,
            "recall_at_10" => format!("{:.3}", total_recall / queries.len() as f64),
            "us_per_query" => format!("{:.1}", elapsed.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
        probe *= 2;
    }
    r.note(format!(
        "index: {} images across {num_lists} lists",
        index.num_images()
    ));
    r
}
