//! Seeded per-hop network latency models.
//!
//! Every [`crate::node::NodeHandle`] charges one sampled latency per call
//! (covering request + response flight time), on the **caller's** thread —
//! wire time must not occupy server workers. Distributions are seeded so a
//! whole-cluster experiment is reproducible.

use std::time::Duration;

use parking_lot::Mutex;

// Reuse the deterministic generator from jdvs-vector? jdvs-net is substrate-
// independent by design, so it carries its own tiny xorshift.
/// A small deterministic RNG (xorshift64*) private to latency/fault models.
#[derive(Debug, Clone)]
pub(crate) struct NetRng(u64);

impl NetRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard Gaussian via Marsaglia polar.
    pub(crate) fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// A per-call latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LatencyModel {
    /// No simulated latency (pure in-process speed).
    #[default]
    Zero,
    /// Fixed latency per call.
    Constant(Duration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: Duration,
        /// Upper bound.
        max: Duration,
    },
    /// `median * exp(sigma * N(0,1))` clamped at `10 * median` — a heavy
    /// right tail like real datacenter RPC.
    LogNormal {
        /// Median latency.
        median: Duration,
        /// Spread.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A typical intra-datacenter hop: lognormal with 200 µs median.
    pub fn datacenter() -> Self {
        LatencyModel::LogNormal {
            median: Duration::from_micros(200),
            sigma: 0.4,
        }
    }

    pub(crate) fn sample(&self, rng: &mut NetRng) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), max.max(min));
                let span = (hi - lo).as_nanos() as u64;
                if span == 0 {
                    lo
                } else {
                    lo + Duration::from_nanos(rng.next_u64() % (span + 1))
                }
            }
            LatencyModel::LogNormal { median, sigma } => {
                let factor = (sigma * rng.next_gaussian()).exp().min(10.0);
                Duration::from_nanos((median.as_nanos() as f64 * factor) as u64)
            }
        }
    }
}

/// A seeded, thread-safe sampler around a [`LatencyModel`].
#[derive(Debug)]
pub struct LatencySampler {
    model: LatencyModel,
    rng: Mutex<NetRng>,
}

impl LatencySampler {
    /// Creates a sampler.
    pub fn new(model: LatencyModel, seed: u64) -> Self {
        Self {
            model,
            rng: Mutex::new(NetRng::new(seed)),
        }
    }

    /// Samples one call's latency.
    pub fn sample(&self) -> Duration {
        self.model.sample(&mut self.rng.lock())
    }

    /// The underlying model.
    pub fn model(&self) -> LatencyModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        let s = LatencySampler::new(LatencyModel::Zero, 1);
        assert_eq!(s.sample(), Duration::ZERO);
    }

    #[test]
    fn constant_model_is_constant() {
        let s = LatencySampler::new(LatencyModel::Constant(Duration::from_micros(5)), 1);
        for _ in 0..10 {
            assert_eq!(s.sample(), Duration::from_micros(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let s = LatencySampler::new(
            LatencyModel::Uniform {
                min: Duration::from_micros(100),
                max: Duration::from_micros(200),
            },
            2,
        );
        for _ in 0..1_000 {
            let d = s.sample();
            assert!(d >= Duration::from_micros(100) && d <= Duration::from_micros(200));
        }
    }

    #[test]
    fn lognormal_is_heavy_tailed_but_clamped() {
        let s = LatencySampler::new(
            LatencyModel::LogNormal {
                median: Duration::from_micros(100),
                sigma: 0.5,
            },
            3,
        );
        let samples: Vec<Duration> = (0..5_000).map(|_| s.sample()).collect();
        let max = samples.iter().max().unwrap();
        let min = samples.iter().min().unwrap();
        assert!(*max > Duration::from_micros(150), "tail exists");
        assert!(
            *max <= Duration::from_micros(1_000),
            "clamped at 10x median"
        );
        assert!(*min < Duration::from_micros(100));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::Uniform {
            min: Duration::from_nanos(0),
            max: Duration::from_micros(50),
        };
        let a = LatencySampler::new(m, 7);
        let b = LatencySampler::new(m, 7);
        for _ in 0..50 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn datacenter_preset_is_lognormal() {
        assert!(matches!(
            LatencyModel::datacenter(),
            LatencyModel::LogNormal { .. }
        ));
    }
}
