//! Single-partition query evaluation (Section 2.4) — the block execution
//! engine.
//!
//! *"Each searcher node identifies the cluster that is most similar to the
//! queried image based on its features. It then scans the cluster's
//! inverted list and calculates the similarity as each image in the
//! inverted list. The top N most similar images are returned."*
//!
//! [`ann_search`] generalizes "the cluster" to the `nprobe` nearest
//! clusters (probing one list is the paper's letter; multi-probe is the
//! standard recall knob and the `ablate-nprobe` experiment sweeps it).
//! Invalid images — cleared bits in the validity bitmap — are skipped
//! during the scan, so logically deleted products never surface.
//!
//! ## The execution engine
//!
//! The serving paths share one scan core built for throughput:
//!
//! - **Block scan.** Inverted lists yield contiguous blocks of up to
//!   [`crate::inverted::SCAN_BLOCK`] ids
//!   ([`crate::inverted::InvertedList::scan_blocks`]) instead of one
//!   callback per id.
//! - **One lock per query.** The validity bitmap is pinned once via
//!   [`crate::bitmap::AtomicBitmap::reader`] and the vector / PQ-code
//!   stores via their snapshot/reader handles, so the per-candidate cost
//!   is a pure pointer chase — the pre-engine paths re-acquired a read
//!   lock for every candidate, twice.
//! - **SIMD kernels.** Distances dispatch through
//!   [`jdvs_vector::simd::active`] (AVX2+FMA / NEON / unrolled scalar,
//!   detected once at startup).
//! - **Fast-scan PQ.** In 4-bit PQ mode, stage 1 of
//!   [`compressed_search`] scores 32 candidates per
//!   [`jdvs_vector::simd::KernelSet::fastscan16`] call straight out of
//!   [`crate::pq_store::PqStore`]'s interleaved blocks, using a
//!   register-resident quantized LUT
//!   ([`jdvs_vector::pq::QuantizedAdcTable`]) instead of `m` scattered
//!   f32 table loads per candidate. Stage 2 re-ranks the quantized
//!   shortlist with exact f32 distances, so the over-fetch
//!   (`k · rerank_factor`) — not the u8 rounding — decides final quality.
//! - **Threshold pruning.** Once the top-k heap is full,
//!   [`TopK::would_accept`] rejects non-improving candidates before a
//!   [`Neighbor`] is even built.
//! - **Intra-query parallelism.** When
//!   [`crate::config::IndexConfig::intra_query_threads`] allows it *and*
//!   the probed lists hold at least [`PARALLEL_MIN_CANDIDATES`] published
//!   ids — with at least [`PARALLEL_MIN_PER_THREAD`] of them per spawned
//!   thread — lists fan out round-robin across scoped threads with
//!   per-thread collectors merged at the end. Results are identical to
//!   the sequential scan: merging is order-insensitive under the total
//!   (distance, id) order.
//! - **Multi-query batching.** Co-arriving queries execute as one
//!   [`MultiQuery`] batch ([`multi_ann_search`] /
//!   [`multi_compressed_search`]): the batch probes the **union** of its
//!   members' nprobe lists and walks each list's blocks once, scoring
//!   every subscribed query against the single block load (one
//!   [`jdvs_vector::simd::KernelSet::fastscan16_multi`] call per
//!   interleaved PQ block, one vector fetch per raw candidate). Per-query
//!   results are bit-identical to the sequential path — same candidate
//!   sets, same kernel lanes, and [`TopK`]'s total (distance, id) order
//!   makes the outcome independent of list visit order.
//!
//! - **Filter pushdown.** Attribute-filtered queries
//!   ([`filtered_ann_search`] / [`filtered_compressed_search`], and
//!   [`MultiQuery::filter`] on the batched paths) resolve their
//!   category/stock bitmap lanes and forward-index range predicates
//!   **before** the distance kernels run: a 32-lane fast-scan group (or a
//!   raw candidate) rejected by the filter costs bitmap word loads, not
//!   kernel work. When the filtered scan cannot fill `k`, probing widens
//!   (doubling, scanning only lists not yet probed — robust to the
//!   hierarchical coarse quantizer, whose bounded-beam assignment need not
//!   extend the previous prefix exactly) up to
//!   [`crate::config::IndexConfig::nprobe_escalation`] lists, optionally
//!   stopping early when a deadline budget cannot pay for another doubling
//!   round ([`filtered_ann_search_with_budget`]). Results are
//!   bit-identical to the post-filter references
//!   ([`filtered_ann_search_reference`] /
//!   [`filtered_compressed_search_reference`]), which score every valid
//!   candidate first and discard after.
//!
//! Every engine path keeps a sequential per-id `*_reference` twin that uses
//! the same dispatched kernel — differential tests assert bit-identical
//! results — plus [`ann_search_scalar_baseline`], the pre-engine scan
//! (per-candidate locking, forced scalar kernel) kept as the benchmark
//! baseline.

use std::time::{Duration, Instant};

use jdvs_vector::distance::squared_l2;
use jdvs_vector::simd::{self, KernelSet};
use jdvs_vector::topk::{Neighbor, TopK};

use crate::bitmap::BitmapReader;
use crate::filter::{FilterSpec, FilterView, QueryFilter};
use crate::ids::{ImageId, ListId};
use crate::index::VisualIndex;
use crate::inverted::InvertedIndex;
use crate::pq_store::{PqStore, FASTSCAN_BLOCK};
use crate::vectors::VectorSnapshot;

/// Minimum total published ids across the probed lists before a query fans
/// out across threads; below this, thread spawn and merge overhead dwarfs
/// the scan itself and the query stays sequential regardless of
/// [`crate::config::IndexConfig::intra_query_threads`].
pub const PARALLEL_MIN_CANDIDATES: usize = 2048;

/// Minimum published ids **per spawned thread**: a query only fans out to
/// as many threads as leave each at least this much work. Spawning a
/// scoped thread costs tens of microseconds; a thread handed fewer than
/// ~8k candidates (~100 µs of kernel work at d = 64) spends comparable
/// time being spawned and merged as scanning, which is how the 30k-image
/// bench regressed to *slower* with 4 threads under the old
/// total-count-only gate.
pub const PARALLEL_MIN_PER_THREAD: usize = 8192;

/// IVF search over one partition; see the module docs. Uses the configured
/// [`crate::config::IndexConfig::intra_query_threads`].
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search(index: &VisualIndex, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
    ann_search_with_threads(index, query, k, nprobe, index.config().intra_query_threads)
}

/// [`ann_search`] with an explicit thread budget (benchmarks sweep this;
/// serving goes through the config knob).
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    threads: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let lists = index.quantizer().assign_multi(query, nprobe);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let eval = |id: ImageId| {
        if !bitmap.test(id.as_usize()) {
            return None; // logically deleted
        }
        // A published id whose feature vector has not landed yet is
        // *skipped*, not ranked at infinity: a sentinel distance would
        // surface the phantom whenever fewer than k real candidates exist.
        let v = vectors.get(id)?;
        Some(kernels.squared_l2(query, v.as_slice()))
    };
    let inverted = index.inverted_internal();
    let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
    scan_probed_lists(inverted, &lists, k, threads, &scan).into_sorted_vec()
}

/// [`ann_search`] over an explicit probe set instead of the quantizer's
/// assignment — an evaluation hook (used by the coarse-quantizer bench to
/// compare flat-scan and graph-assigned probe sets through the identical
/// list scan), not a serving path.
///
/// # Panics
///
/// Panics if `k == 0`, any list id is out of range, or `query` has the
/// wrong dimension.
pub fn ann_search_with_probes(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    lists: &[usize],
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let eval = |id: ImageId| {
        if !bitmap.test(id.as_usize()) {
            return None;
        }
        let v = vectors.get(id)?;
        Some(kernels.squared_l2(query, v.as_slice()))
    };
    let inverted = index.inverted_internal();
    let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
    scan_probed_lists(inverted, lists, k, 1, &scan).into_sorted_vec()
}

/// Attribute-filtered IVF search with pushdown: the filter is evaluated
/// *before* the vector fetch and distance kernel, so non-matching
/// candidates cost two or three bitmap word loads instead of a `d`-wide
/// kernel call. When the filtered scan cannot fill `k`, probing widens per
/// [`crate::config::IndexConfig::nprobe_escalation`]. Results are
/// bit-identical to [`filtered_ann_search_reference`].
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn filtered_ann_search(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    filter: &FilterSpec,
) -> Vec<Neighbor> {
    filtered_ann_search_with_threads(
        index,
        query,
        k,
        nprobe,
        filter,
        index.config().intra_query_threads,
    )
}

/// [`filtered_ann_search`] with an explicit thread budget.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn filtered_ann_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    filter: &FilterSpec,
    threads: usize,
) -> Vec<Neighbor> {
    filtered_ann_search_inner(index, query, k, nprobe, filter, threads, None)
}

/// [`filtered_ann_search`] with a deadline budget: escalation rounds stop
/// as soon as the remaining time cannot pay for another doubling round
/// (estimated from the measured per-list scan cost of the base pass), so a
/// near-expired query returns its current top-k instead of blowing its
/// deadline widening. `None` behaves exactly like [`filtered_ann_search`].
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn filtered_ann_search_with_budget(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    filter: &FilterSpec,
    deadline: Option<Instant>,
) -> Vec<Neighbor> {
    filtered_ann_search_inner(
        index,
        query,
        k,
        nprobe,
        filter,
        index.config().intra_query_threads,
        deadline,
    )
}

fn filtered_ann_search_inner(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    filter: &FilterSpec,
    threads: usize,
    deadline: Option<Instant>,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    if filter.is_unconstrained() {
        // An empty spec is the plain scan; unfiltered searches never
        // escalate.
        return ann_search_with_threads(index, query, k, nprobe, threads);
    }
    let qf = QueryFilter::new(filter, index.filters(), index.forward());
    let view = qf.view();
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let inverted = index.inverted_internal();
    let eval = |id: ImageId| {
        // Pushdown: the filter verdict comes before the vector fetch, so a
        // rejected candidate never reaches the distance kernel.
        if !bitmap.test(id.as_usize()) || !view.admits(id.as_usize()) {
            return None;
        }
        let v = vectors.get(id)?;
        Some(kernels.squared_l2(query, v.as_slice()))
    };
    let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
    let lists = index.quantizer().assign_multi(query, nprobe);
    let base_start = deadline.map(|_| Instant::now());
    let mut topk = scan_probed_lists(inverted, &lists, k, threads, &scan);
    let budget = EscalationBudget::measured(deadline, base_start.map(|s| s.elapsed()), lists.len());
    escalate_filtered(index, query, k, &lists, threads, budget, &mut topk, &scan);
    topk.into_sorted_vec()
}

/// Deadline context for budget-aware escalation: the absolute deadline and
/// a per-list scan-cost estimate seeded from the measured base pass (and
/// refreshed from each completed round). `escalate_filtered` stops widening
/// when the remaining budget cannot pay for the next doubling round.
#[derive(Debug, Clone, Copy)]
struct EscalationBudget {
    deadline: Instant,
    per_list: Option<Duration>,
}

impl EscalationBudget {
    /// Builds the budget from a deadline and the measured base scan
    /// (`elapsed` over `lists` probed lists).
    fn measured(
        deadline: Option<Instant>,
        elapsed: Option<Duration>,
        lists: usize,
    ) -> Option<Self> {
        deadline.map(|deadline| EscalationBudget {
            deadline,
            per_list: elapsed.filter(|_| lists > 0).map(|e| e / lists as u32),
        })
    }
}

/// Widens a **filtered** query's probing while its top-k is underfull:
/// each round doubles the probe width (capped at
/// [`crate::config::IndexConfig::nprobe_escalation`] and the list count)
/// and scans only the lists not yet probed. With the flat (exact) coarse
/// quantizer the not-yet-probed lists are precisely the suffix of the
/// wider assignment — its nearest-first prefix is stable — and with the
/// hierarchical quantizer, whose bounded-beam assignment may re-rank once
/// the requested width exceeds the beam, the explicit seen-set still
/// guarantees every list is scanned at most once. Merging per-round
/// collectors under [`TopK`]'s total order keeps the result identical to
/// one flat scan over the union of probed lists.
///
/// When `budget` is set, a round only starts while the deadline has both
/// not passed and (once a per-list cost estimate exists — seeded from the
/// measured base pass, refreshed after every round) enough headroom to pay
/// for the round's extra lists; otherwise the current top-k is returned
/// as-is, degraded but on time.
#[allow(clippy::too_many_arguments)]
fn escalate_filtered<S>(
    index: &VisualIndex,
    query: &[f32],
    fill_target: usize,
    base_lists: &[usize],
    threads: usize,
    budget: Option<EscalationBudget>,
    topk: &mut TopK,
    scan: &S,
) where
    S: Fn(usize, &mut TopK) + Sync,
{
    let cap = index
        .config()
        .nprobe_escalation
        .min(index.config().num_lists);
    let inverted = index.inverted_internal();
    let mut seen = vec![false; index.quantizer().k()];
    for &list in base_lists {
        seen[list] = true;
    }
    let mut width = base_lists.len();
    let mut per_list = budget.and_then(|b| b.per_list);
    let mut extra: Vec<usize> = Vec::new();
    while topk.len() < fill_target && width < cap {
        let new_width = (width * 2).min(cap);
        if let Some(b) = budget {
            let now = Instant::now();
            if now >= b.deadline {
                break;
            }
            if let Some(cost) = per_list {
                let estimate = cost.saturating_mul((new_width - width) as u32);
                if b.deadline.duration_since(now) < estimate {
                    break;
                }
            }
        }
        let wider = index.quantizer().assign_multi(query, new_width);
        extra.clear();
        extra.extend(wider.into_iter().filter(|&l| !seen[l]));
        for &list in &extra {
            seen[list] = true;
        }
        let round_start = budget.map(|_| Instant::now());
        let round = scan_probed_lists(inverted, &extra, topk.k(), threads, scan);
        if let Some(start) = round_start {
            if !extra.is_empty() {
                per_list = Some(start.elapsed() / extra.len() as u32);
            }
        }
        topk.merge(round);
        width = new_width;
    }
}

/// One member of a co-executed query batch; see [`multi_ann_search`] and
/// [`multi_compressed_search`]. Each member carries its own result budget
/// and probe width, so a batch may mix queries with different `k` /
/// `nprobe` (as a serving-tier micro-batcher delivers them).
#[derive(Debug, Clone, Copy)]
pub struct MultiQuery<'a> {
    /// Feature vector; must match the index dimension.
    pub features: &'a [f32],
    /// Result count for this query.
    pub k: usize,
    /// Number of lists this query probes.
    pub nprobe: usize,
    /// Attribute constraints, pushed down into the shared block scan.
    /// Members of one batch may carry distinct filters (or none); each
    /// member's result stays bit-identical to its sequential filtered
    /// twin. Constrained members escalate probing individually after the
    /// batch pass when underfull (see
    /// [`crate::config::IndexConfig::nprobe_escalation`]).
    pub filter: Option<&'a FilterSpec>,
}

/// Maps each inverted list to the batch members whose probe set includes
/// it — the union probe. Each list appears once, paired with its
/// subscriber set; each query still scores exactly the candidates of its
/// own probed lists.
///
/// Visit order is rank-interleaved nearest-first: every member's rank-0
/// (nearest-centroid) list comes before any rank-1 list, and so on, with
/// a list emitted at the first rank any member probes it. Results are
/// order-independent ([`TopK`]'s total order), but the scan's top-k prune
/// bound tightens fastest when the closest lists are seen first — and for
/// a batch of one this is exactly the sequential path's probe order.
fn probe_union(index: &VisualIndex, queries: &[MultiQuery<'_>]) -> Vec<(usize, Vec<usize>)> {
    let num_lists = index.config().num_lists;
    let probes: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| index.quantizer().assign_multi(q.features, q.nprobe))
        .collect();
    let mut subscribers: Vec<Vec<usize>> = vec![Vec::new(); num_lists];
    for (qi, probe) in probes.iter().enumerate() {
        for &list in probe {
            subscribers[list].push(qi);
        }
    }
    let mut seen = vec![false; num_lists];
    let mut union = Vec::new();
    let max_rank = probes.iter().map(Vec::len).max().unwrap_or(0);
    for rank in 0..max_rank {
        for probe in &probes {
            if let Some(&list) = probe.get(rank) {
                if !seen[list] {
                    seen[list] = true;
                    union.push((list, std::mem::take(&mut subscribers[list])));
                }
            }
        }
    }
    union
}

fn assert_multi_query(index: &VisualIndex, queries: &[MultiQuery<'_>]) {
    for q in queries {
        assert!(q.k > 0, "k must be positive");
        assert!(q.nprobe > 0, "nprobe must be positive");
        assert_eq!(
            q.features.len(),
            index.config().dim,
            "query dimension mismatch"
        );
    }
}

/// Batched IVF search: executes every member of `queries` in one pass
/// over the union of their probed lists. A candidate's validity check and
/// vector fetch happen once per list block and are shared by every
/// subscribed query, instead of once per query. Results are bit-identical
/// per member to [`ann_search_with_threads`] with `threads = 1` (same
/// kernels, same candidate sets; [`TopK`] is insensitive to visit order).
///
/// The batch itself is the parallelism — members run sequentially within
/// the calling thread, so a serving micro-batcher can invoke this from
/// one connection thread without nested fan-out.
///
/// # Panics
///
/// Panics if any member has `k == 0`, `nprobe == 0`, or the wrong
/// dimension.
pub fn multi_ann_search(index: &VisualIndex, queries: &[MultiQuery<'_>]) -> Vec<Vec<Neighbor>> {
    assert_multi_query(index, queries);
    if queries.is_empty() {
        return Vec::new();
    }
    let subscribers = probe_union(index, queries);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let inverted = index.inverted_internal();
    let filters = member_filters(index, queries);
    let views = member_views(&filters);
    let mut topks: Vec<TopK> = queries.iter().map(|q| TopK::new(q.k)).collect();
    for &(list, ref subs) in &subscribers {
        inverted.scan_blocks(ListId(list as u32), |ids| {
            for &id in ids {
                if !bitmap.test(id.as_usize()) {
                    continue; // logically deleted
                }
                // Fetched lazily and at most once (see
                // `ann_search_with_threads` for the missing-vector rule): a
                // candidate every subscriber's filter rejects costs no
                // vector load at all.
                let mut fetched = None;
                for &qi in subs {
                    if let Some(view) = &views[qi] {
                        if !view.admits(id.as_usize()) {
                            continue;
                        }
                    }
                    let v = match fetched {
                        Some(v) => v,
                        None => match vectors.get(id) {
                            Some(v) => {
                                fetched = Some(v);
                                v
                            }
                            None => break,
                        },
                    };
                    let d = kernels.squared_l2(queries[qi].features, v.as_slice());
                    if topks[qi].would_accept(d) {
                        topks[qi].push(id.as_u64(), d);
                    }
                }
            }
        });
    }
    // Constrained members that the batch pass left underfull escalate
    // individually — same rounds, same scan predicate, hence the same
    // result as their sequential filtered twin.
    for (qi, q) in queries.iter().enumerate() {
        let Some(view) = views[qi].as_ref() else {
            continue;
        };
        let eval = |id: ImageId| {
            if !bitmap.test(id.as_usize()) || !view.admits(id.as_usize()) {
                return None;
            }
            let v = vectors.get(id)?;
            Some(kernels.squared_l2(q.features, v.as_slice()))
        };
        let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
        let base = index.quantizer().assign_multi(q.features, q.nprobe);
        escalate_filtered(
            index,
            q.features,
            q.k,
            &base,
            1,
            None,
            &mut topks[qi],
            &scan,
        );
    }
    topks.into_iter().map(TopK::into_sorted_vec).collect()
}

/// Resolves each batch member's filter spec against the index — `None` for
/// unconstrained members (no filter, or a spec that admits everything), so
/// the scan's per-subscriber check is a single `Option` branch.
fn member_filters<'a>(
    index: &'a VisualIndex,
    queries: &[MultiQuery<'a>],
) -> Vec<Option<QueryFilter<'a>>> {
    queries
        .iter()
        .map(|q| {
            q.filter
                .filter(|f| !f.is_unconstrained())
                .map(|f| QueryFilter::new(f, index.filters(), index.forward()))
        })
        .collect()
}

/// Pins a [`FilterView`] per constrained batch member.
fn member_views<'a>(filters: &'a [Option<QueryFilter<'a>>]) -> Vec<Option<FilterView<'a>>> {
    filters
        .iter()
        .map(|qf| qf.as_ref().map(QueryFilter::view))
        .collect()
}

/// Two-stage compressed (PQ) search; see
/// [`VisualIndex::search_compressed`]. Uses the configured
/// [`crate::config::IndexConfig::intra_query_threads`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
) -> Vec<Neighbor> {
    compressed_search_with_threads(
        index,
        query,
        k,
        nprobe,
        rerank_factor,
        index.config().intra_query_threads,
    )
}

/// [`compressed_search`] with an explicit thread budget for stage 1.
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    threads: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");

    // Stage 1: quantized scan of the probed lists' PQ codes, shortlisting
    // k · rerank_factor candidates.
    let lists = index.quantizer().assign_multi(query, nprobe);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let inverted = index.inverted_internal();
    let shortlist_k = k.saturating_mul(rerank_factor).max(k);
    let shortlist = if pq.is_four_bit() {
        // Fast-scan: one kernel call scores a whole interleaved block of
        // 32 codes against the register-resident quantized LUTs.
        let qt = pq.quantized_adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            fastscan_one_list(inverted, pq, &bitmap, kernels, &qt, list, topk);
        };
        scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan)
    } else {
        // Classic 8-bit ADC: m table lookups per candidate, codes read
        // by list position from the contiguous code area.
        let table = pq.adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            let reader = pq.list_reader(ListId(list as u32));
            let mut code = vec![0u8; pq.code_len()];
            let mut base = 0usize;
            inverted.scan_blocks(ListId(list as u32), |ids| {
                for (i, &id) in ids.iter().enumerate() {
                    if bitmap.test(id.as_usize()) && reader.read_code(base + i, &mut code) {
                        let d = table.distance(&code);
                        if topk.would_accept(d) {
                            topk.push(id.as_u64(), d);
                        }
                    }
                }
                base += ids.len();
            });
        };
        scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan)
    };

    // Stage 2: exact rerank of the shortlist over raw vectors.
    let vectors = index.vectors().snapshot();
    exact_rerank(&bitmap, &vectors, kernels, query, shortlist, k)
}

/// Attribute-filtered two-stage compressed search; the filtered twin of
/// [`compressed_search`]. In 4-bit mode the filter lane mask resolves
/// *before* the fast-scan kernel, so a 32-code group with no admitted lane
/// skips the kernel, LUT accumulation and bound pruning outright; in 8-bit
/// mode rejected candidates skip the code read and the `m` table lookups.
/// Underfull shortlists escalate probing like [`filtered_ann_search`].
/// Results are bit-identical to [`filtered_compressed_search_reference`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn filtered_compressed_search(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    filter: &FilterSpec,
) -> Vec<Neighbor> {
    filtered_compressed_search_with_threads(
        index,
        query,
        k,
        nprobe,
        rerank_factor,
        filter,
        index.config().intra_query_threads,
    )
}

/// [`filtered_compressed_search`] with an explicit thread budget for
/// stage 1.
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn filtered_compressed_search_with_threads(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    filter: &FilterSpec,
    threads: usize,
) -> Vec<Neighbor> {
    filtered_compressed_search_inner(
        index,
        query,
        k,
        nprobe,
        rerank_factor,
        filter,
        threads,
        None,
    )
}

/// [`filtered_compressed_search`] with a deadline budget; the compressed
/// twin of [`filtered_ann_search_with_budget`] (escalation rounds stop when
/// the remaining time cannot pay for another doubling round).
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn filtered_compressed_search_with_budget(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    filter: &FilterSpec,
    deadline: Option<Instant>,
) -> Vec<Neighbor> {
    filtered_compressed_search_inner(
        index,
        query,
        k,
        nprobe,
        rerank_factor,
        filter,
        index.config().intra_query_threads,
        deadline,
    )
}

#[allow(clippy::too_many_arguments)]
fn filtered_compressed_search_inner(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    filter: &FilterSpec,
    threads: usize,
    deadline: Option<Instant>,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    if filter.is_unconstrained() {
        return compressed_search_with_threads(index, query, k, nprobe, rerank_factor, threads);
    }
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");
    let qf = QueryFilter::new(filter, index.filters(), index.forward());
    let view = qf.view();
    let lists = index.quantizer().assign_multi(query, nprobe);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let inverted = index.inverted_internal();
    let shortlist_k = k.saturating_mul(rerank_factor).max(k);
    let shortlist = if pq.is_four_bit() {
        let qt = pq.quantized_adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            filtered_fastscan_one_list(inverted, pq, &bitmap, &view, kernels, &qt, list, topk);
        };
        let base_start = deadline.map(|_| Instant::now());
        let mut topk = scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan);
        let budget =
            EscalationBudget::measured(deadline, base_start.map(|s| s.elapsed()), lists.len());
        // The escalation target is k — the final result budget — not the
        // over-fetch capacity: stage 2 only drops ids deleted between
        // stages, so k shortlisted candidates fill the top-k.
        escalate_filtered(index, query, k, &lists, threads, budget, &mut topk, &scan);
        topk
    } else {
        let table = pq.adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            filtered_adc_scan_one_list(inverted, pq, &bitmap, &view, &table, list, topk);
        };
        let base_start = deadline.map(|_| Instant::now());
        let mut topk = scan_probed_lists(inverted, &lists, shortlist_k, threads, &scan);
        let budget =
            EscalationBudget::measured(deadline, base_start.map(|s| s.elapsed()), lists.len());
        escalate_filtered(index, query, k, &lists, threads, budget, &mut topk, &scan);
        topk
    };
    let vectors = index.vectors().snapshot();
    exact_rerank(&bitmap, &vectors, kernels, query, shortlist, k)
}

/// Batched two-stage compressed (PQ) search — the `MultiQuery` engine
/// entry point the serving micro-batcher feeds. Stage 1 probes the union
/// of the batch's nprobe lists once: every interleaved 4-bit block is
/// loaded (and its validity lanes resolved) a single time and scored for
/// all subscribed queries with one
/// [`jdvs_vector::simd::KernelSet::fastscan16_multi`] call, each query
/// keeping its own register-resident [`jdvs_vector::pq::QuantizedAdcTable`]
/// LUTs and its own [`TopK`] with [`TopK::would_accept`] pruning. Stage 2
/// re-ranks each member's shortlist exactly as the sequential path does.
///
/// Per-member results are **bit-identical** to
/// [`compressed_search_with_threads`] (and hence to
/// [`compressed_search_reference`]): the batched kernel's lanes equal the
/// single-query kernel's, and [`TopK`]'s total (distance, id) order makes
/// results independent of list visit order. Differential tests pin this
/// on both the native and forced-scalar kernel sets.
///
/// # Panics
///
/// Panics if PQ mode is disabled, `rerank_factor == 0`, or any member has
/// `k == 0`, `nprobe == 0`, or the wrong dimension.
pub fn multi_compressed_search(
    index: &VisualIndex,
    queries: &[MultiQuery<'_>],
    rerank_factor: usize,
) -> Vec<Vec<Neighbor>> {
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_multi_query(index, queries);
    if queries.is_empty() {
        return Vec::new();
    }
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");
    let subscribers = probe_union(index, queries);
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let inverted = index.inverted_internal();
    let filters = member_filters(index, queries);
    let views = member_views(&filters);
    let mut shortlists: Vec<TopK> = queries
        .iter()
        .map(|q| TopK::new(q.k.saturating_mul(rerank_factor).max(q.k)))
        .collect();

    if pq.is_four_bit() {
        let qts: Vec<_> = queries
            .iter()
            .map(|q| pq.quantized_adc_table(q.features))
            .collect();
        // Scratch reused across lists: one code tile per block load, one
        // accumulator row per batch member.
        let mut tile = Vec::new();
        let mut accs = vec![[0u16; FASTSCAN_BLOCK]; queries.len()];
        for &(list, ref subs) in &subscribers {
            fastscan_one_list_multi(
                inverted,
                pq,
                &bitmap,
                kernels,
                &qts,
                &views,
                subs,
                list,
                &mut shortlists,
                &mut tile,
                &mut accs,
            );
        }
        // Per-member escalation for constrained members the batch pass
        // left underfull, scanning only the suffix lists with the
        // sequential filtered scan — identical rounds, identical results.
        for (qi, q) in queries.iter().enumerate() {
            let Some(view) = views[qi].as_ref() else {
                continue;
            };
            let scan = |list: usize, topk: &mut TopK| {
                filtered_fastscan_one_list(
                    inverted, pq, &bitmap, view, kernels, &qts[qi], list, topk,
                );
            };
            let base = index.quantizer().assign_multi(q.features, q.nprobe);
            escalate_filtered(
                index,
                q.features,
                q.k,
                &base,
                1,
                None,
                &mut shortlists[qi],
                &scan,
            );
        }
    } else {
        // Classic 8-bit ADC: the code read is shared; each subscriber
        // pays only its own m table lookups. Per-member filters gate both:
        // a candidate no subscriber admits skips the code read too.
        let tables: Vec<_> = queries.iter().map(|q| pq.adc_table(q.features)).collect();
        let mut code = vec![0u8; pq.code_len()];
        for &(list, ref subs) in &subscribers {
            let reader = pq.list_reader(ListId(list as u32));
            let mut base = 0usize;
            inverted.scan_blocks(ListId(list as u32), |ids| {
                for (i, &id) in ids.iter().enumerate() {
                    if !bitmap.test(id.as_usize()) {
                        continue;
                    }
                    let mut loaded = false;
                    for &qi in subs {
                        if let Some(view) = &views[qi] {
                            if !view.admits(id.as_usize()) {
                                continue;
                            }
                        }
                        if !loaded {
                            if !reader.read_code(base + i, &mut code) {
                                break; // unpublished for every subscriber
                            }
                            loaded = true;
                        }
                        let d = tables[qi].distance(&code);
                        if shortlists[qi].would_accept(d) {
                            shortlists[qi].push(id.as_u64(), d);
                        }
                    }
                }
                base += ids.len();
            });
        }
        for (qi, q) in queries.iter().enumerate() {
            let Some(view) = views[qi].as_ref() else {
                continue;
            };
            let scan = |list: usize, topk: &mut TopK| {
                filtered_adc_scan_one_list(inverted, pq, &bitmap, view, &tables[qi], list, topk);
            };
            let base = index.quantizer().assign_multi(q.features, q.nprobe);
            escalate_filtered(
                index,
                q.features,
                q.k,
                &base,
                1,
                None,
                &mut shortlists[qi],
                &scan,
            );
        }
    }

    let vectors = index.vectors().snapshot();
    queries
        .iter()
        .zip(shortlists)
        .map(|(q, shortlist)| exact_rerank(&bitmap, &vectors, kernels, q.features, shortlist, q.k))
        .collect()
}

/// Stage 1 of the 4-bit compressed path over one list: loads each
/// 32-code interleaved block (partial tail lanes masked), scores it with
/// one [`jdvs_vector::simd::KernelSet::fastscan16`] call, and feeds the
/// published + valid lanes to `topk` in list order — the exact candidate
/// set and f32 distances of the per-id reference twin
/// ([`jdvs_vector::pq::QuantizedAdcTable::distance`] is bit-exact with a
/// kernel lane).
fn fastscan_one_list(
    inverted: &InvertedIndex,
    pq: &PqStore,
    bitmap: &BitmapReader<'_>,
    kernels: &KernelSet,
    qt: &jdvs_vector::pq::QuantizedAdcTable,
    list: usize,
    topk: &mut TopK,
) {
    let reader = pq.list_reader(ListId(list as u32));
    let mut tile = vec![0u8; reader.tile_len()];
    let mut acc = [0u16; FASTSCAN_BLOCK];
    // Quantized top-k prune bound, recomputed only when the k-th distance
    // moves (`prune_bound` is the exact `would_accept` edge, so skipped
    // lanes provably change nothing).
    let mut bound = Some(u16::MAX);
    let mut bound_thr = f32::INFINITY;
    // scan_blocks emits full SCAN_BLOCK-sized blocks (a multiple of
    // FASTSCAN_BLOCK) with one ragged tail, so every group base below is
    // block-aligned.
    let mut base = 0usize;
    inverted.scan_blocks(ListId(list as u32), |ids| {
        let mut g = 0usize;
        while g < ids.len() {
            let lanes = (ids.len() - g).min(FASTSCAN_BLOCK);
            let mask = reader.load_group(base + g, &mut tile);
            if mask != 0 {
                let thr = topk.threshold();
                if thr.to_bits() != bound_thr.to_bits() {
                    bound = qt.prune_bound(thr);
                    bound_thr = thr;
                }
                if let Some(b) = bound {
                    kernels.fastscan16(&tile, qt.luts(), &mut acc);
                    // An unpublished lane's code is still mid-insert (its
                    // bitmap bit is not set yet either); a published lane
                    // under the prune bound scores from the accumulator.
                    let mut hits = kernels.lanes_le16(&acc, b) & mask;
                    while hits != 0 {
                        let lane = hits.trailing_zeros() as usize;
                        hits &= hits - 1;
                        let id = ids[g + lane];
                        if bitmap.test(id.as_usize()) {
                            let d = qt.to_f32(acc[lane]);
                            if topk.would_accept(d) {
                                topk.push(id.as_u64(), d);
                            }
                        }
                    }
                }
            }
            g += lanes;
        }
        base += ids.len();
    });
}

/// Filtered twin of [`fastscan_one_list`]: the admitted-lane mask (filter
/// ∧ published) resolves **before** the kernel, so a group whose mask is
/// zero skips the `fastscan16` call, the LUT accumulation and the bound
/// pruning — the pushdown that makes low-selectivity filters cheap. Lanes
/// that survive score exactly as in the unfiltered scan.
#[allow(clippy::too_many_arguments)]
fn filtered_fastscan_one_list(
    inverted: &InvertedIndex,
    pq: &PqStore,
    bitmap: &BitmapReader<'_>,
    view: &FilterView<'_>,
    kernels: &KernelSet,
    qt: &jdvs_vector::pq::QuantizedAdcTable,
    list: usize,
    topk: &mut TopK,
) {
    let reader = pq.list_reader(ListId(list as u32));
    let mut tile = vec![0u8; reader.tile_len()];
    let mut acc = [0u16; FASTSCAN_BLOCK];
    let mut bound = Some(u16::MAX);
    let mut bound_thr = f32::INFINITY;
    let mut base = 0usize;
    inverted.scan_blocks(ListId(list as u32), |ids| {
        let mut g = 0usize;
        while g < ids.len() {
            let lanes = (ids.len() - g).min(FASTSCAN_BLOCK);
            let mask = reader.load_group(base + g, &mut tile);
            let fmask = if mask != 0 {
                view.lane_mask(&ids[g..g + lanes], mask)
            } else {
                0
            };
            if fmask != 0 {
                let thr = topk.threshold();
                if thr.to_bits() != bound_thr.to_bits() {
                    bound = qt.prune_bound(thr);
                    bound_thr = thr;
                }
                if let Some(b) = bound {
                    kernels.fastscan16(&tile, qt.luts(), &mut acc);
                    let mut hits = kernels.lanes_le16(&acc, b) & fmask;
                    while hits != 0 {
                        let lane = hits.trailing_zeros() as usize;
                        hits &= hits - 1;
                        let id = ids[g + lane];
                        if bitmap.test(id.as_usize()) {
                            let d = qt.to_f32(acc[lane]);
                            if topk.would_accept(d) {
                                topk.push(id.as_u64(), d);
                            }
                        }
                    }
                }
            }
            g += lanes;
        }
        base += ids.len();
    });
}

/// Filtered 8-bit ADC scan of one list: rejected candidates skip the code
/// read and all `m` table lookups. Shared by the sequential filtered path
/// and the batched path's per-member escalation rounds.
fn filtered_adc_scan_one_list(
    inverted: &InvertedIndex,
    pq: &PqStore,
    bitmap: &BitmapReader<'_>,
    view: &FilterView<'_>,
    table: &jdvs_vector::pq::AdcTable,
    list: usize,
    topk: &mut TopK,
) {
    let reader = pq.list_reader(ListId(list as u32));
    let mut code = vec![0u8; pq.code_len()];
    let mut base = 0usize;
    inverted.scan_blocks(ListId(list as u32), |ids| {
        for (i, &id) in ids.iter().enumerate() {
            if bitmap.test(id.as_usize())
                && view.admits(id.as_usize())
                && reader.read_code(base + i, &mut code)
            {
                let d = table.distance(&code);
                if topk.would_accept(d) {
                    topk.push(id.as_u64(), d);
                }
            }
        }
        base += ids.len();
    });
}

/// Stage 1 of the batched 4-bit path over one list: each 32-code
/// interleaved block is loaded with a single
/// [`crate::pq_store::PqListReader::load_group`], its published lanes are
/// filtered through the validity bitmap **once**, and one batched kernel
/// call scores the block for every subscriber — per query, the exact
/// (id, f32) candidates of [`fastscan_one_list`].
#[allow(clippy::too_many_arguments)]
fn fastscan_one_list_multi(
    inverted: &InvertedIndex,
    pq: &PqStore,
    bitmap: &BitmapReader<'_>,
    kernels: &KernelSet,
    qts: &[jdvs_vector::pq::QuantizedAdcTable],
    views: &[Option<FilterView<'_>>],
    subs: &[usize],
    list: usize,
    shortlists: &mut [TopK],
    tile: &mut Vec<u8>,
    accs: &mut [[u16; FASTSCAN_BLOCK]],
) {
    let reader = pq.list_reader(ListId(list as u32));
    tile.clear();
    tile.resize(reader.tile_len(), 0);
    let luts: Vec<&[u8]> = subs.iter().map(|&qi| qts[qi].luts()).collect();
    // Per-subscriber quantized prune bounds, recomputed only when that
    // query's k-th distance moves (same exact-edge contract as the
    // sequential path), plus per-subscriber filter and hit masks for the
    // block in flight.
    let mut bounds: Vec<Option<u16>> = vec![Some(u16::MAX); subs.len()];
    let mut bound_thrs: Vec<f32> = vec![f32::INFINITY; subs.len()];
    let mut hit_masks: Vec<u32> = vec![0; subs.len()];
    let mut filter_masks: Vec<u32> = vec![0; subs.len()];
    let mut base = 0usize;
    inverted.scan_blocks(ListId(list as u32), |ids| {
        let mut g = 0usize;
        while g < ids.len() {
            let lanes = (ids.len() - g).min(FASTSCAN_BLOCK);
            let mask = reader.load_group(base + g, tile);
            if mask != 0 {
                // Pushdown: per-subscriber filter lanes resolve before the
                // batched kernel; a group no subscriber admits skips the
                // kernel, LUT accumulation and bound pruning entirely.
                let mut filter_union = 0u32;
                for (si, &qi) in subs.iter().enumerate() {
                    filter_masks[si] = match &views[qi] {
                        Some(view) => view.lane_mask(&ids[g..g + lanes], mask),
                        None => mask,
                    };
                    filter_union |= filter_masks[si];
                }
                if filter_union == 0 {
                    g += lanes;
                    continue;
                }
                kernels.fastscan16_multi(tile, &luts, &mut accs[..subs.len()]);
                // Prune each subscriber to its published survivors, then
                // resolve the validity bitmap once, only for lanes some
                // subscriber still wants — after the top-k bounds warm up
                // that union is almost always empty.
                let mut union_hits = 0u32;
                for (si, &qi) in subs.iter().enumerate() {
                    let topk = &shortlists[qi];
                    let thr = topk.threshold();
                    if thr.to_bits() != bound_thrs[si].to_bits() {
                        bounds[si] = qts[qi].prune_bound(thr);
                        bound_thrs[si] = thr;
                    }
                    hit_masks[si] = match bounds[si] {
                        Some(b) => kernels.lanes_le16(&accs[si], b) & filter_masks[si],
                        None => 0,
                    };
                    union_hits |= hit_masks[si];
                }
                // Validity is a property of the candidate, not the query:
                // resolve published ∩ valid once and share it.
                let mut valid = 0u32;
                let mut probe = union_hits;
                while probe != 0 {
                    let lane = probe.trailing_zeros() as usize;
                    probe &= probe - 1;
                    if bitmap.test(ids[g + lane].as_usize()) {
                        valid |= 1 << lane;
                    }
                }
                if valid != 0 {
                    for (si, &qi) in subs.iter().enumerate() {
                        let qt = &qts[qi];
                        let topk = &mut shortlists[qi];
                        let mut hits = hit_masks[si] & valid;
                        while hits != 0 {
                            let lane = hits.trailing_zeros() as usize;
                            hits &= hits - 1;
                            let d = qt.to_f32(accs[si][lane]);
                            if topk.would_accept(d) {
                                topk.push(ids[g + lane].as_u64(), d);
                            }
                        }
                    }
                }
            }
            g += lanes;
        }
        base += ids.len();
    });
}

/// Stage 2 of the compressed path: exact distances over the shortlist.
/// Split out so the between-stage deletion guard is directly testable.
fn exact_rerank(
    bitmap: &BitmapReader<'_>,
    vectors: &VectorSnapshot,
    kernels: &KernelSet,
    query: &[f32],
    shortlist: TopK,
    k: usize,
) -> Vec<Neighbor> {
    let mut topk = TopK::new(k);
    for candidate in shortlist.into_sorted_vec() {
        let id = ImageId(candidate.id as u32);
        // Re-check validity: the bitmap words are atomics behind the pinned
        // guard, so an image deleted after the ADC scan admitted it to the
        // shortlist is seen as invalid here and cannot be returned.
        if !bitmap.test(id.as_usize()) {
            continue;
        }
        let Some(v) = vectors.get(id) else { continue };
        topk.push(candidate.id, kernels.squared_l2(query, v.as_slice()));
    }
    topk.into_sorted_vec()
}

/// Exact top-k over every valid image (ground truth; `O(n·d)`). Walks the
/// validity bitmap a word at a time, skipping 64 deleted/unwritten images
/// per all-zero word.
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn brute_force(index: &VisualIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let kernels = simd::active();
    let vectors = index.vectors().snapshot();
    let mut topk = TopK::new(k);
    index.bitmap().for_each_valid(index.forward().len(), |raw| {
        let id = ImageId(raw as u32);
        if let Some(v) = vectors.get(id) {
            let d = kernels.squared_l2(query, v.as_slice());
            if topk.would_accept(d) {
                topk.push(id.as_u64(), d);
            }
        }
    });
    topk.into_sorted_vec()
}

/// Scans the probed `lists` with the per-list `scan` closure (which feeds
/// a [`TopK`] of capacity `k`). Sequential when `threads <= 1` or the
/// lists are too small to amortize a fan-out; otherwise lists distribute
/// round-robin over scoped threads and per-thread collectors merge. Both
/// routes visit the same ids with the same scoring, so under the total
/// (distance, id) order the merged result is identical to the sequential
/// one.
fn scan_probed_lists<S>(
    inverted: &InvertedIndex,
    lists: &[usize],
    k: usize,
    threads: usize,
    scan: &S,
) -> TopK
where
    S: Fn(usize, &mut TopK) + Sync,
{
    let total: usize = lists
        .iter()
        .map(|&l| inverted.list(ListId(l as u32)).len())
        .sum();
    let threads = effective_threads(threads, lists.len(), total);
    if threads <= 1 {
        let mut topk = TopK::new(k);
        for &list in lists {
            scan(list, &mut topk);
        }
        return topk;
    }
    let mut merged = TopK::new(k);
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    let mut topk = TopK::new(k);
                    for &list in lists.iter().skip(t).step_by(threads) {
                        scan(list, &mut topk);
                    }
                    topk
                })
            })
            .collect();
        for h in handles {
            merged.merge(h.join().expect("scan worker panicked"));
        }
    })
    .expect("scan scope");
    merged
}

/// The thread count a query actually uses: capped so each spawned thread
/// gets at least [`PARALLEL_MIN_PER_THREAD`] candidates (and by the list
/// count — distribution is per-list); see also
/// [`PARALLEL_MIN_CANDIDATES`].
fn effective_threads(configured: usize, num_lists: usize, total_candidates: usize) -> usize {
    if configured <= 1 || total_candidates < PARALLEL_MIN_CANDIDATES {
        1
    } else {
        configured
            .min(num_lists)
            .min(total_candidates / PARALLEL_MIN_PER_THREAD)
            .max(1)
    }
}

/// Block-scans one inverted list into `topk`.
#[inline]
fn scan_one_list<F: Fn(ImageId) -> Option<f32>>(
    inverted: &InvertedIndex,
    list: usize,
    eval: &F,
    topk: &mut TopK,
) {
    inverted.scan_blocks(ListId(list as u32), |ids| {
        for &id in ids {
            if let Some(d) = eval(id) {
                if topk.would_accept(d) {
                    topk.push(id.as_u64(), d);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Reference paths (differential-test twins) and the benchmark baseline.
// ---------------------------------------------------------------------------

/// Sequential per-id reference implementation of [`ann_search`]: one
/// callback and two lock acquisitions per candidate, same dispatched
/// kernel. Differential tests assert the engine matches this exactly.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = TopK::new(k);
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return; // logically deleted
            }
            if let Some(d) = index
                .vectors()
                .with(id, |v| squared_l2(query, v.as_slice()))
            {
                topk.push(id.as_u64(), d);
            }
        });
    }
    topk.into_sorted_vec()
}

/// Post-filter reference twin of [`filtered_ann_search`]: computes the
/// distance for **every** valid candidate (the full kernel cost the
/// pushdown avoids) and only then discards non-matching ones, before
/// top-k insertion. Runs the same escalation schedule — both sides hold
/// identical top-k contents at every round boundary, so they widen
/// identically — and differential tests assert bit-identical results.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn filtered_ann_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    filter: &FilterSpec,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let qf = QueryFilter::new(filter, index.filters(), index.forward());
    let view = qf.view();
    let kernels = simd::active();
    let bitmap = index.bitmap().reader();
    let vectors = index.vectors().snapshot();
    let inverted = index.inverted_internal();
    let eval = |id: ImageId| {
        if !bitmap.test(id.as_usize()) {
            return None;
        }
        let v = vectors.get(id)?;
        // Post-filter: score first, discard after.
        let d = kernels.squared_l2(query, v.as_slice());
        view.admits(id.as_usize()).then_some(d)
    };
    let scan = |list: usize, topk: &mut TopK| scan_one_list(inverted, list, &eval, topk);
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = scan_probed_lists(inverted, &lists, k, 1, &scan);
    if !filter.is_unconstrained() {
        escalate_filtered(index, query, k, &lists, 1, None, &mut topk, &scan);
    }
    topk.into_sorted_vec()
}

/// Post-filter reference twin of [`filtered_compressed_search`]: stage 1
/// computes the (quantized) ADC distance for every valid candidate and
/// post-filters before shortlist insertion; same escalation schedule,
/// same stage-2 rerank. Differential tests assert bit-identical results
/// on both kernel legs.
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn filtered_compressed_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
    filter: &FilterSpec,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");
    let qf = QueryFilter::new(filter, index.filters(), index.forward());
    let view = qf.view();
    let bitmap = index.bitmap().reader();
    let inverted = index.inverted_internal();
    let lists = index.quantizer().assign_multi(query, nprobe);
    let shortlist_k = k.saturating_mul(rerank_factor).max(k);
    let shortlist = if pq.is_four_bit() {
        let qt = pq.quantized_adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            inverted.scan(ListId(list as u32), |id| {
                if !bitmap.test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.quantized_distance(&qt, id) {
                    if view.admits(id.as_usize()) {
                        topk.push(id.as_u64(), d);
                    }
                }
            });
        };
        let mut topk = TopK::new(shortlist_k);
        for &list in &lists {
            scan(list, &mut topk);
        }
        if !filter.is_unconstrained() {
            escalate_filtered(index, query, k, &lists, 1, None, &mut topk, &scan);
        }
        topk
    } else {
        let table = pq.adc_table(query);
        let scan = |list: usize, topk: &mut TopK| {
            inverted.scan(ListId(list as u32), |id| {
                if !bitmap.test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.distance(&table, id) {
                    if view.admits(id.as_usize()) {
                        topk.push(id.as_u64(), d);
                    }
                }
            });
        };
        let mut topk = TopK::new(shortlist_k);
        for &list in &lists {
            scan(list, &mut topk);
        }
        if !filter.is_unconstrained() {
            escalate_filtered(index, query, k, &lists, 1, None, &mut topk, &scan);
        }
        topk
    };
    let kernels = simd::active();
    let vectors = index.vectors().snapshot();
    exact_rerank(&bitmap, &vectors, kernels, query, shortlist, k)
}

/// Exact filtered top-k over every valid image admitted by `filter` —
/// the ground truth for the filtered latency/recall frontier.
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn filtered_brute_force(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    filter: &FilterSpec,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let qf = QueryFilter::new(filter, index.filters(), index.forward());
    let view = qf.view();
    let kernels = simd::active();
    let vectors = index.vectors().snapshot();
    let mut topk = TopK::new(k);
    index.bitmap().for_each_valid(index.forward().len(), |raw| {
        if !view.admits(raw) {
            return;
        }
        let id = ImageId(raw as u32);
        if let Some(v) = vectors.get(id) {
            let d = kernels.squared_l2(query, v.as_slice());
            if topk.would_accept(d) {
                topk.push(id.as_u64(), d);
            }
        }
    });
    topk.into_sorted_vec()
}

/// Sequential per-id reference implementation of [`compressed_search`].
///
/// # Panics
///
/// Panics if PQ mode is disabled, any count is zero, or `query` has the
/// wrong dimension.
pub fn compressed_search_reference(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
    rerank_factor: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert!(rerank_factor > 0, "rerank_factor must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let pq = index
        .pq_store()
        .expect("compressed search requires config.pq_subspaces (see IndexConfig)");

    // Per-id scoring twin of stage 1: in 4-bit mode the quantized per-id
    // distance is bit-exact with a fast-scan kernel lane, so the engine
    // and this loop push identical (id, f32) sequences in identical
    // order.
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut shortlist = TopK::new(k.saturating_mul(rerank_factor).max(k));
    if pq.is_four_bit() {
        let qt = pq.quantized_adc_table(query);
        for list in lists {
            index.inverted_internal().scan(ListId(list as u32), |id| {
                if !index.bitmap().test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.quantized_distance(&qt, id) {
                    shortlist.push(id.as_u64(), d);
                }
            });
        }
    } else {
        let table = pq.adc_table(query);
        for list in lists {
            index.inverted_internal().scan(ListId(list as u32), |id| {
                if !index.bitmap().test(id.as_usize()) {
                    return;
                }
                if let Some(d) = pq.distance(&table, id) {
                    shortlist.push(id.as_u64(), d);
                }
            });
        }
    }

    let mut topk = TopK::new(k);
    for candidate in shortlist.into_sorted_vec() {
        let id = ImageId(candidate.id as u32);
        if !index.bitmap().test(id.as_usize()) {
            continue; // deleted between stages
        }
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(candidate.id, d);
        }
    }
    topk.into_sorted_vec()
}

/// Sequential per-id reference implementation of [`brute_force`].
///
/// # Panics
///
/// Panics if `k == 0` or `query` has the wrong dimension.
pub fn brute_force_reference(index: &VisualIndex, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let mut topk = TopK::new(k);
    for raw in 0..index.forward().len() {
        let id = ImageId(raw as u32);
        if !index.bitmap().test(raw) {
            continue;
        }
        if let Some(d) = index
            .vectors()
            .with(id, |v| squared_l2(query, v.as_slice()))
        {
            topk.push(id.as_u64(), d);
        }
    }
    topk.into_sorted_vec()
}

/// The pre-engine scan kept as the benchmark baseline: per-id callbacks,
/// two lock acquisitions per candidate, and the forced **scalar** kernel
/// regardless of CPU features. Not a serving path — the `searcher-scan`
/// experiment measures the engine's speedup against this.
///
/// # Panics
///
/// Panics if `k == 0`, `nprobe == 0`, or `query` has the wrong dimension.
pub fn ann_search_scalar_baseline(
    index: &VisualIndex,
    query: &[f32],
    k: usize,
    nprobe: usize,
) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert!(nprobe > 0, "nprobe must be positive");
    assert_eq!(query.len(), index.config().dim, "query dimension mismatch");
    let kernels = simd::scalar();
    let lists = index.quantizer().assign_multi(query, nprobe);
    let mut topk = TopK::new(k);
    for list in lists {
        index.inverted_internal().scan(ListId(list as u32), |id| {
            if !index.bitmap().test(id.as_usize()) {
                return;
            }
            if let Some(d) = index
                .vectors()
                .with(id, |v| kernels.squared_l2(query, v.as_slice()))
            {
                topk.push(id.as_u64(), d);
            }
        });
    }
    topk.into_sorted_vec()
}

/// Recall@k of `got` against ground-truth `expected` (fraction of expected
/// ids present in got).
pub fn recall(got: &[Neighbor], expected: &[Neighbor]) -> f64 {
    if expected.is_empty() {
        return 1.0;
    }
    let got_ids: std::collections::HashSet<u64> = got.iter().map(|n| n.id).collect();
    let hit = expected.iter().filter(|n| got_ids.contains(&n.id)).count();
    hit as f64 / expected.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    fn build_index(n: usize, num_lists: usize, seed: u64) -> (VisualIndex, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists,
            initial_list_capacity: 8,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        (index, data)
    }

    #[test]
    fn full_probe_equals_brute_force() {
        let (index, data) = build_index(300, 8, 3);
        for q in data.iter().take(20) {
            let ann = ann_search(&index, q.as_slice(), 5, 8);
            let exact = brute_force(&index, q.as_slice(), 5);
            assert_eq!(recall(&ann, &exact), 1.0);
        }
    }

    #[test]
    fn recall_grows_with_nprobe() {
        let (index, data) = build_index(500, 16, 5);
        let mut totals = Vec::new();
        for nprobe in [1usize, 4, 16] {
            let mut total = 0.0;
            for q in data.iter().take(30) {
                let ann = ann_search(&index, q.as_slice(), 10, nprobe);
                let exact = brute_force(&index, q.as_slice(), 10);
                total += recall(&ann, &exact);
            }
            totals.push(total / 30.0);
        }
        assert!(totals[0] <= totals[1] + 1e-9);
        assert!(totals[1] <= totals[2] + 1e-9);
        assert!((totals[2] - 1.0).abs() < 1e-9, "full probe is exact");
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let (index, data) = build_index(200, 4, 7);
        let hits = ann_search(&index, data[0].as_slice(), 10, 4);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn deleted_images_are_skipped_by_both_paths() {
        let (index, data) = build_index(50, 4, 9);
        let key = jdvs_storage::model::ImageKey::from_url("u0");
        index.invalidate(key, "u0").unwrap();
        let ann = ann_search(&index, data[0].as_slice(), 50, 4);
        let exact = brute_force(&index, data[0].as_slice(), 50);
        assert!(ann.iter().all(|n| n.id != 0));
        assert!(exact.iter().all(|n| n.id != 0));
        assert_eq!(ann.len(), 49);
    }

    #[test]
    fn engine_matches_reference_paths_exactly() {
        let (index, data) = build_index(400, 8, 11);
        // Delete a spread of images so validity filtering is exercised.
        for i in (0..400).step_by(7) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(25) {
            for nprobe in [1usize, 3, 8] {
                let engine = ann_search(&index, q.as_slice(), 10, nprobe);
                let reference = ann_search_reference(&index, q.as_slice(), 10, nprobe);
                assert_eq!(engine, reference, "nprobe = {nprobe}");
            }
            assert_eq!(
                brute_force(&index, q.as_slice(), 10),
                brute_force_reference(&index, q.as_slice(), 10)
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential_exactly() {
        // Big enough that the per-thread work gate admits a real fan-out
        // (>= 2 * PARALLEL_MIN_PER_THREAD probed candidates).
        let (index, data) = build_index(2 * PARALLEL_MIN_PER_THREAD + 500, 4, 13);
        let total = index.inverted_internal().total_entries();
        assert!(
            effective_threads(4, 4, total) >= 2,
            "test must exercise a genuine fan-out (total = {total})"
        );
        for q in data.iter().take(5) {
            let sequential = ann_search_with_threads(&index, q.as_slice(), 10, 4, 1);
            for threads in [2usize, 3, 8] {
                let parallel = ann_search_with_threads(&index, q.as_slice(), 10, 4, threads);
                assert_eq!(sequential, parallel, "threads = {threads}");
            }
        }
    }

    #[test]
    fn small_queries_stay_sequential() {
        assert_eq!(effective_threads(4, 8, PARALLEL_MIN_CANDIDATES - 1), 1);
        // Regression guard (searcher-scan bench, 30k images): above the
        // absolute floor but with too little work to pay for even a second
        // thread, the query must stay sequential.
        assert_eq!(effective_threads(4, 8, PARALLEL_MIN_CANDIDATES), 1);
        assert_eq!(effective_threads(4, 8, 3750), 1, "bench-scale probe");
        assert_eq!(effective_threads(4, 8, 2 * PARALLEL_MIN_PER_THREAD), 2);
        assert_eq!(
            effective_threads(4, 8, 1 << 20),
            4,
            "ample work: full fan-out"
        );
        assert_eq!(effective_threads(1, 8, 1 << 20), 1, "knob off");
        assert_eq!(effective_threads(8, 3, 1 << 20), 3, "capped by lists");
    }

    #[test]
    fn missing_vector_is_skipped_not_ranked_at_infinity() {
        // Regression: an id published in an inverted list whose feature
        // vector never landed used to enter the heap at f32::INFINITY and
        // could surface whenever fewer than k real candidates existed.
        let (index, data) = build_index(5, 1, 17);
        let phantom = ImageId(4000);
        index.inverted_internal().append(ListId(0), phantom);
        index.bitmap().set(phantom.as_usize());
        index.inverted_internal().flush();
        for result in [
            ann_search(&index, data[0].as_slice(), 50, 1),
            ann_search_reference(&index, data[0].as_slice(), 50, 1),
        ] {
            assert_eq!(result.len(), 5, "only real images are returned");
            assert!(result.iter().all(|n| n.id != phantom.as_u64()));
            assert!(result.iter().all(|n| n.distance.is_finite()));
        }
    }

    #[test]
    fn rerank_drops_images_deleted_between_stages() {
        let (index, data) = build_index(30, 2, 19);
        let kernels = simd::active();
        let bitmap = index.bitmap().reader();
        let vectors = index.vectors().snapshot();
        // Stage 1 admitted ids 0 and 1 to the shortlist...
        let mut shortlist = TopK::new(4);
        shortlist.push(0, 0.5);
        shortlist.push(1, 0.7);
        // ...then image 0 is deleted before the rerank runs.
        index.bitmap().clear(0);
        let got = exact_rerank(&bitmap, &vectors, kernels, data[0].as_slice(), shortlist, 4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 1, "the deleted image cannot resurface");
    }

    #[test]
    fn compressed_engine_matches_reference() {
        let mut rng = Xoshiro256::seed_from(23);
        let data: Vec<Vector> = (0..500)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 8,
            pq_subspaces: Some(4),
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..500).step_by(9) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(15) {
            let engine = compressed_search(&index, q.as_slice(), 10, 4, 3);
            let reference = compressed_search_reference(&index, q.as_slice(), 10, 4, 3);
            assert_eq!(engine, reference);
        }
    }

    /// Satellite differential: the two-stage 4-bit fast-scan engine must
    /// return top-k identical to the per-id reference at the default
    /// `rerank_factor`, deletions included.
    #[test]
    fn compressed_engine_matches_reference_four_bit() {
        let mut rng = Xoshiro256::seed_from(31);
        let data: Vec<Vector> = (0..600)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 8,
            pq_subspaces: Some(8),
            pq_bits: 4,
            ..Default::default()
        };
        let rerank = config.rerank_factor;
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..600).step_by(9) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for q in data.iter().take(15) {
            let engine = compressed_search(&index, q.as_slice(), 10, 4, rerank);
            let reference = compressed_search_reference(&index, q.as_slice(), 10, 4, rerank);
            assert_eq!(engine, reference);
        }
    }

    /// The re-rank contract: with full probing and a shortlist that covers
    /// everything, the 4-bit path's final top-k is *exact* — quantization
    /// error lives only in the shortlist ordering.
    #[test]
    fn four_bit_full_overfetch_is_exact() {
        let mut rng = Xoshiro256::seed_from(37);
        let data: Vec<Vector> = (0..200)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 2,
            initial_list_capacity: 8,
            pq_subspaces: Some(8),
            pq_bits: 4,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for q in data.iter().take(10) {
            let compressed = compressed_search(&index, q.as_slice(), 5, 2, 200);
            let exact = brute_force(&index, q.as_slice(), 5);
            assert_eq!(recall(&compressed, &exact), 1.0);
        }
    }

    fn build_pq_index(n: usize, seed: u64, pq_bits: u8) -> (VisualIndex, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 8,
            pq_subspaces: Some(8),
            pq_bits,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index
                .insert(
                    v.clone(),
                    ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        for i in (0..n).step_by(9) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        (index, data)
    }

    /// The batched 4-bit engine must return, for every batch member, the
    /// exact result of the sequential per-id reference — across batch
    /// sizes and mixed per-member k/nprobe.
    #[test]
    fn multi_compressed_matches_reference_per_query() {
        let (index, data) = build_pq_index(600, 41, 4);
        for batch_size in [1usize, 2, 3, 5, 8, 12] {
            let queries: Vec<MultiQuery<'_>> = data
                .iter()
                .take(batch_size)
                .enumerate()
                .map(|(i, q)| MultiQuery {
                    features: q.as_slice(),
                    k: 3 + i % 5,
                    nprobe: 1 + i % 4,
                    filter: None,
                })
                .collect();
            let batched = multi_compressed_search(&index, &queries, 3);
            assert_eq!(batched.len(), batch_size);
            for (q, got) in queries.iter().zip(&batched) {
                let reference = compressed_search_reference(&index, q.features, q.k, q.nprobe, 3);
                assert_eq!(got, &reference, "batch_size = {batch_size}");
            }
        }
    }

    /// Same contract for the classic 8-bit ADC path.
    #[test]
    fn multi_compressed_matches_reference_eight_bit() {
        let (index, data) = build_pq_index(500, 43, 8);
        let queries: Vec<MultiQuery<'_>> = data
            .iter()
            .take(6)
            .map(|q| MultiQuery {
                features: q.as_slice(),
                k: 10,
                nprobe: 3,
                filter: None,
            })
            .collect();
        for (q, got) in queries
            .iter()
            .zip(multi_compressed_search(&index, &queries, 4))
        {
            let reference = compressed_search_reference(&index, q.features, q.k, q.nprobe, 4);
            assert_eq!(got, reference);
        }
    }

    /// The batched raw path against the per-id reference.
    #[test]
    fn multi_ann_matches_reference_per_query() {
        let (index, data) = build_index(400, 8, 47);
        for i in (0..400).step_by(7) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        for batch_size in [1usize, 4, 9] {
            let queries: Vec<MultiQuery<'_>> = data
                .iter()
                .take(batch_size)
                .enumerate()
                .map(|(i, q)| MultiQuery {
                    features: q.as_slice(),
                    k: 5 + i % 6,
                    nprobe: 1 + i % 8,
                    filter: None,
                })
                .collect();
            for (q, got) in queries.iter().zip(multi_ann_search(&index, &queries)) {
                let reference = ann_search_reference(&index, q.features, q.k, q.nprobe);
                assert_eq!(got, reference, "batch_size = {batch_size}");
            }
        }
    }

    /// A batch of one is exactly the single-query engine call.
    #[test]
    fn multi_of_one_equals_single_query_paths() {
        let (index, data) = build_pq_index(300, 53, 4);
        let q = MultiQuery {
            features: data[0].as_slice(),
            k: 10,
            nprobe: 3,
            filter: None,
        };
        assert_eq!(
            multi_compressed_search(&index, &[q], 3),
            vec![compressed_search_with_threads(
                &index, q.features, 10, 3, 3, 1
            )]
        );
        assert_eq!(
            multi_ann_search(&index, &[q]),
            vec![ann_search_with_threads(&index, q.features, 10, 3, 1)]
        );
    }

    #[test]
    fn multi_empty_batch_is_empty() {
        let (index, _) = build_pq_index(100, 59, 4);
        assert!(multi_compressed_search(&index, &[], 3).is_empty());
        assert!(multi_ann_search(&index, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn multi_wrong_dim_panics() {
        let (index, _) = build_index(10, 2, 1);
        multi_ann_search(
            &index,
            &[MultiQuery {
                features: &[0.0; 4],
                k: 1,
                nprobe: 1,
                filter: None,
            }],
        );
    }

    #[test]
    fn scalar_baseline_agrees_on_ids_with_engine() {
        // Distances may differ in the last ulp between kernels, but on
        // well-separated random data the returned id set is stable.
        let (index, data) = build_index(300, 4, 29);
        for q in data.iter().take(10) {
            let engine: Vec<u64> = ann_search(&index, q.as_slice(), 5, 4)
                .into_iter()
                .map(|n| n.id)
                .collect();
            let baseline: Vec<u64> = ann_search_scalar_baseline(&index, q.as_slice(), 5, 4)
                .into_iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(engine, baseline);
        }
    }

    #[test]
    fn recall_of_identical_sets_is_one() {
        let a = vec![Neighbor::new(1, 0.0), Neighbor::new(2, 1.0)];
        assert_eq!(recall(&a, &a), 1.0);
        assert_eq!(recall(&a, &[]), 1.0);
        let b = vec![Neighbor::new(1, 0.0), Neighbor::new(9, 1.0)];
        assert_eq!(recall(&b, &a), 0.5);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn wrong_query_dim_panics() {
        let (index, _) = build_index(10, 2, 1);
        ann_search(&index, &[0.0; 4], 1, 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (index, data) = build_index(10, 2, 1);
        ann_search(&index, data[0].as_slice(), 0, 1);
    }

    // -----------------------------------------------------------------
    // Filtered search: pushdown vs post-filter reference differentials.
    // -----------------------------------------------------------------

    /// Deterministic attribute assignment for filtered-search tests:
    /// category 9 is rare (~1% of images), categories 0..5 common;
    /// about a third of images are out of stock.
    fn test_attrs(i: usize) -> ProductAttributes {
        let category = if i.is_multiple_of(97) {
            9
        } else {
            (i % 5) as u32
        };
        ProductAttributes::new(
            ProductId(i as u64),
            (i as u64) * 3,
            ((i % 100) as u64) * 50,
            (i % 7) as u64,
            format!("u{i}"),
        )
        .with_category(category)
        .with_stock(!i.is_multiple_of(3))
    }

    fn build_attr_index(
        n: usize,
        num_lists: usize,
        seed: u64,
        pq_bits: Option<u8>,
        escalation: usize,
    ) -> (VisualIndex, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let data: Vec<Vector> = (0..n)
            .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let config = IndexConfig {
            dim: 8,
            num_lists,
            initial_list_capacity: 8,
            pq_subspaces: pq_bits.map(|_| 8),
            pq_bits: pq_bits.unwrap_or(8),
            nprobe_escalation: escalation,
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &data);
        for (i, v) in data.iter().enumerate() {
            index.insert(v.clone(), test_attrs(i)).unwrap();
        }
        index.flush();
        for i in (0..n).step_by(11) {
            let key = jdvs_storage::model::ImageKey::from_url(&format!("u{i}"));
            index.invalidate(key, &format!("u{i}")).unwrap();
        }
        (index, data)
    }

    fn test_specs() -> Vec<FilterSpec> {
        vec![
            FilterSpec::none(),
            FilterSpec::by_category(2),
            FilterSpec::none().in_stock(),
            FilterSpec::by_category(3).in_stock(),
            FilterSpec::none().with_price_range(500, 2500),
            FilterSpec::by_category(1).with_min_sales(300),
            FilterSpec::by_category(9),  // ~1% selectivity
            FilterSpec::by_category(77), // never listed: empty result
        ]
    }

    /// The raw filtered engine (pushdown + escalation) must be
    /// bit-identical to the post-filter reference across specs, probe
    /// widths and deletions.
    #[test]
    fn filtered_matches_post_filter_reference() {
        let (index, data) = build_attr_index(600, 8, 61, None, 8);
        for spec in test_specs() {
            for q in data.iter().take(8) {
                for nprobe in [1usize, 3, 8] {
                    let engine = filtered_ann_search(&index, q.as_slice(), 10, nprobe, &spec);
                    let reference =
                        filtered_ann_search_reference(&index, q.as_slice(), 10, nprobe, &spec);
                    assert_eq!(engine, reference, "spec {spec:?} nprobe {nprobe}");
                    for hit in &engine {
                        let n = index
                            .forward()
                            .numeric(ImageId(hit.id as u32))
                            .expect("hit has a record");
                        assert!(spec.matches(&n), "spec {spec:?} admitted id {}", hit.id);
                    }
                }
            }
        }
    }

    /// Same contract on the 4-bit fast-scan leg: group skipping via the
    /// filter lane mask must not change the candidate set.
    #[test]
    fn filtered_compressed_matches_post_filter_reference_four_bit() {
        let (index, data) = build_attr_index(600, 8, 67, Some(4), 8);
        for spec in test_specs() {
            for q in data.iter().take(6) {
                for nprobe in [1usize, 4] {
                    let engine =
                        filtered_compressed_search(&index, q.as_slice(), 10, nprobe, 3, &spec);
                    let reference = filtered_compressed_search_reference(
                        &index,
                        q.as_slice(),
                        10,
                        nprobe,
                        3,
                        &spec,
                    );
                    assert_eq!(engine, reference, "spec {spec:?} nprobe {nprobe}");
                }
            }
        }
    }

    /// Same contract on the classic 8-bit ADC leg.
    #[test]
    fn filtered_compressed_matches_post_filter_reference_eight_bit() {
        let (index, data) = build_attr_index(500, 8, 71, Some(8), 8);
        for spec in test_specs() {
            for q in data.iter().take(6) {
                let engine = filtered_compressed_search(&index, q.as_slice(), 10, 3, 3, &spec);
                let reference =
                    filtered_compressed_search_reference(&index, q.as_slice(), 10, 3, 3, &spec);
                assert_eq!(engine, reference, "spec {spec:?}");
            }
        }
    }

    /// An unconstrained spec must take the plain unfiltered path exactly.
    #[test]
    fn filtered_unconstrained_equals_unfiltered() {
        let (index, data) = build_attr_index(300, 4, 73, Some(4), 8);
        let spec = FilterSpec::none();
        for q in data.iter().take(5) {
            assert_eq!(
                filtered_ann_search(&index, q.as_slice(), 10, 2, &spec),
                ann_search(&index, q.as_slice(), 10, 2),
            );
            assert_eq!(
                filtered_compressed_search(&index, q.as_slice(), 10, 2, 3, &spec),
                compressed_search(&index, q.as_slice(), 10, 2, 3),
            );
        }
    }

    /// With full probing the filtered engine is exact against the
    /// filtered brute force.
    #[test]
    fn filtered_full_probe_equals_filtered_brute_force() {
        let (index, data) = build_attr_index(400, 8, 79, None, 0);
        for spec in [FilterSpec::by_category(2), FilterSpec::none().in_stock()] {
            for q in data.iter().take(8) {
                let ann = filtered_ann_search(&index, q.as_slice(), 5, 8, &spec);
                let exact = filtered_brute_force(&index, q.as_slice(), 5, &spec);
                assert_eq!(ann, exact, "spec {spec:?}");
            }
        }
    }

    /// Selectivity-aware escalation: at ~1% selectivity a single-list
    /// probe cannot fill k, and the escalating engine must widen until it
    /// does — still bit-identical to the escalating reference.
    #[test]
    fn filtered_escalation_fills_topk() {
        let n = 2000;
        let spec = FilterSpec::by_category(9); // ~1% of images
        let matching = (0..n)
            .filter(|i| i % 97 == 0 && i % 11 != 0) // listed ∧ not deleted
            .count();
        let k = 10;
        assert!(matching >= k, "test needs at least k matching images");

        let (escalating, data) = build_attr_index(n, 16, 83, None, 16);
        let (capped, _) = build_attr_index(n, 16, 83, None, 0);
        let mut ever_underfull = false;
        for q in data.iter().take(10) {
            let wide = filtered_ann_search(&escalating, q.as_slice(), k, 1, &spec);
            assert_eq!(wide.len(), k, "escalation must fill top-k");
            assert_eq!(
                wide,
                filtered_ann_search_reference(&escalating, q.as_slice(), k, 1, &spec),
            );
            let narrow = filtered_ann_search(&capped, q.as_slice(), k, 1, &spec);
            ever_underfull |= narrow.len() < k;
        }
        assert!(
            ever_underfull,
            "without escalation a 1-list probe should miss at ~1% selectivity"
        );
    }

    /// Budget-aware escalation: a deadline already in the past stops the
    /// widening before its first round, so the (possibly underfull) base
    /// top-k comes back on time — exactly the escalation-disabled result —
    /// while a generous deadline escalates like the unbudgeted path.
    #[test]
    fn near_expired_budget_skips_escalation() {
        let n = 2000;
        let spec = FilterSpec::by_category(9); // ~1% of images
        let k = 10;
        let (index, data) = build_attr_index(n, 16, 83, None, 16);
        let (capped, _) = build_attr_index(n, 16, 83, None, 0);
        let mut ever_underfull = false;
        for q in data.iter().take(10) {
            let expired = Some(Instant::now() - Duration::from_millis(5));
            let hurried =
                filtered_ann_search_with_budget(&index, q.as_slice(), k, 1, &spec, expired);
            assert_eq!(
                hurried,
                filtered_ann_search(&capped, q.as_slice(), k, 1, &spec),
                "expired budget must return the base-probe result unchanged"
            );
            ever_underfull |= hurried.len() < k;
            let relaxed = Some(Instant::now() + Duration::from_secs(60));
            assert_eq!(
                filtered_ann_search_with_budget(&index, q.as_slice(), k, 1, &spec, relaxed),
                filtered_ann_search(&index, q.as_slice(), k, 1, &spec),
                "a generous budget must not change the escalated result"
            );
        }
        assert!(
            ever_underfull,
            "the expired budget should have cut escalation short at ~1% selectivity"
        );
    }

    /// The compressed twin of [`near_expired_budget_skips_escalation`].
    #[test]
    fn near_expired_budget_skips_escalation_compressed() {
        let spec = FilterSpec::by_category(9);
        let k = 10;
        let (index, data) = build_attr_index(2000, 16, 83, Some(4), 16);
        let (capped, _) = build_attr_index(2000, 16, 83, Some(4), 0);
        for q in data.iter().take(5) {
            let expired = Some(Instant::now() - Duration::from_millis(5));
            assert_eq!(
                filtered_compressed_search_with_budget(
                    &index,
                    q.as_slice(),
                    k,
                    1,
                    3,
                    &spec,
                    expired
                ),
                filtered_compressed_search(&capped, q.as_slice(), k, 1, 3, &spec),
            );
            let relaxed = Some(Instant::now() + Duration::from_secs(60));
            assert_eq!(
                filtered_compressed_search_with_budget(
                    &index,
                    q.as_slice(),
                    k,
                    1,
                    3,
                    &spec,
                    relaxed
                ),
                filtered_compressed_search(&index, q.as_slice(), k, 1, 3, &spec),
            );
        }
    }

    /// Batched raw search with distinct per-member filters must match
    /// each member's sequential filtered twin bit-for-bit.
    #[test]
    fn multi_filtered_matches_reference_per_member() {
        let (index, data) = build_attr_index(600, 8, 89, None, 8);
        let specs = test_specs();
        let queries: Vec<MultiQuery<'_>> = data
            .iter()
            .take(specs.len())
            .enumerate()
            .map(|(i, q)| MultiQuery {
                features: q.as_slice(),
                k: 4 + i % 5,
                nprobe: 1 + i % 4,
                filter: (i % 3 != 0).then_some(&specs[i]),
            })
            .collect();
        for (q, got) in queries.iter().zip(multi_ann_search(&index, &queries)) {
            let spec_owned;
            let spec = match q.filter {
                Some(s) => s,
                None => {
                    spec_owned = FilterSpec::none();
                    &spec_owned
                }
            };
            let reference = filtered_ann_search_reference(&index, q.features, q.k, q.nprobe, spec);
            assert_eq!(got, reference, "spec {spec:?}");
        }
    }

    /// Batched 4-bit compressed search with distinct per-member filters.
    #[test]
    fn multi_filtered_compressed_matches_reference_four_bit() {
        let (index, data) = build_attr_index(600, 8, 97, Some(4), 8);
        let specs = test_specs();
        let queries: Vec<MultiQuery<'_>> = data
            .iter()
            .take(specs.len())
            .enumerate()
            .map(|(i, q)| MultiQuery {
                features: q.as_slice(),
                k: 4 + i % 4,
                nprobe: 1 + i % 3,
                filter: (i % 4 != 3).then_some(&specs[i]),
            })
            .collect();
        for (q, got) in queries
            .iter()
            .zip(multi_compressed_search(&index, &queries, 3))
        {
            let spec_owned;
            let spec = match q.filter {
                Some(s) => s,
                None => {
                    spec_owned = FilterSpec::none();
                    &spec_owned
                }
            };
            let reference =
                filtered_compressed_search_reference(&index, q.features, q.k, q.nprobe, 3, spec);
            assert_eq!(got, reference, "spec {spec:?}");
        }
    }

    /// Batched 8-bit compressed search with distinct per-member filters.
    #[test]
    fn multi_filtered_compressed_matches_reference_eight_bit() {
        let (index, data) = build_attr_index(500, 8, 101, Some(8), 8);
        let specs = test_specs();
        let queries: Vec<MultiQuery<'_>> = data
            .iter()
            .take(specs.len())
            .enumerate()
            .map(|(i, q)| MultiQuery {
                features: q.as_slice(),
                k: 5,
                nprobe: 2,
                filter: Some(&specs[i]),
            })
            .collect();
        for (q, got) in queries
            .iter()
            .zip(multi_compressed_search(&index, &queries, 3))
        {
            let spec = q.filter.unwrap();
            let reference =
                filtered_compressed_search_reference(&index, q.features, q.k, q.nprobe, 3, spec);
            assert_eq!(got, reference, "spec {spec:?}");
        }
    }
}
