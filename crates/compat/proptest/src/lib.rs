//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking**: a failing case panics with the generated inputs via the
//!   normal assert message; it is not minimized.
//! - **Deterministic seeding**: every test derives its RNG seed from its
//!   module path + name, so failures reproduce exactly across runs.
//! - **Regex strategies** support the `.{m,n}` / `.{n}` shapes the tests use
//!   (arbitrary printable strings with bounded length); other patterns fall
//!   back to printable strings of length 0..=32.
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, `any::<T>()`, ranges and tuples as strategies,
//! `Strategy::{prop_map, prop_flat_map, boxed}`, `Just`,
//! `prop::collection::{vec, hash_set}`, string-literal regex strategies, and
//! `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each function runs `config.cases` times with
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    rng.reseed_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // Closure so `prop_assume!` can abandon a case early.
                    let mut case_body = move || $body;
                    case_body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Abandons the current case when the assumption fails (the shim simply
/// skips the remainder of the case body; no retry, matching the spirit but
/// not the case-count bookkeeping of real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type. Weighted arms
/// (`w => strat`) are accepted and the weights honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}
