//! Hot-swappable index handles.
//!
//! Figure 2: the full index is rebuilt weekly and distributed to searcher
//! nodes — *while they keep serving*. [`IndexHandle`] is the indirection
//! that makes the cutover safe: searchers and the real-time indexer
//! resolve the current [`VisualIndex`] through the handle per operation;
//! a rebuild publishes the fresh index with one [`IndexHandle::swap`].
//! In-flight searches keep their `Arc` to the old index and finish
//! normally; the old index is freed when its last reader drops it.

use crate::sync::{Arc, AtomicU64, Ordering, RwLock};

use crate::index::VisualIndex;

/// A shared, swappable reference to a partition's current index.
///
/// Generic over the payload so the concurrency model suite can exercise
/// the swap protocol with a cheap payload; production code always uses the
/// [`VisualIndex`] default.
#[derive(Debug)]
pub struct IndexHandle<T = VisualIndex> {
    current: RwLock<Arc<T>>,
    generation: AtomicU64,
}

impl<T> IndexHandle<T> {
    /// Creates a handle over an initial index (generation 0).
    pub fn new(index: Arc<T>) -> Self {
        Self {
            current: RwLock::new(index),
            generation: AtomicU64::new(0),
        }
    }

    /// Snapshot of the current index. Cheap (one `Arc` clone under an
    /// uncontended read lock); the snapshot stays valid across swaps.
    pub fn get(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Publishes `new_index`, returning the replaced one. Bumps the
    /// generation counter (observable by monitoring).
    pub fn swap(&self, new_index: Arc<T>) -> Arc<T> {
        let mut guard = self.current.write();
        let old = std::mem::replace(&mut *guard, new_index);
        // Release: pairs with the Acquire in `generation`, so monitoring
        // that observes generation N can read index N through `get` (the
        // write-lock release also orders the swap itself).
        self.generation.fetch_add(1, Ordering::Release);
        old
    }

    /// How many swaps have been published.
    pub fn generation(&self) -> u64 {
        // Acquire: pairs with the Release RMW in `swap`.
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::Vector;

    fn tiny_index(tag: u64) -> Arc<VisualIndex> {
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: 2,
                num_lists: 1,
                ..Default::default()
            },
            &[Vector::from(vec![0.0, 0.0])],
        ));
        index
            .insert(
                Vector::from(vec![tag as f32, 0.0]),
                ProductAttributes::new(ProductId(tag), 0, 0, 0, format!("u{tag}")),
            )
            .unwrap();
        index
    }

    #[test]
    fn get_returns_current_and_swap_replaces() {
        let handle = IndexHandle::new(tiny_index(1));
        assert_eq!(handle.generation(), 0);
        let snapshot = handle.get();
        assert_eq!(
            snapshot.attributes(crate::ids::ImageId(0)).unwrap().url,
            "u1"
        );

        let old = handle.swap(tiny_index(2));
        assert_eq!(handle.generation(), 1);
        assert_eq!(old.attributes(crate::ids::ImageId(0)).unwrap().url, "u1");
        assert_eq!(
            handle.get().attributes(crate::ids::ImageId(0)).unwrap().url,
            "u2"
        );
        // The pre-swap snapshot still works (readers never break).
        assert_eq!(
            snapshot.attributes(crate::ids::ImageId(0)).unwrap().url,
            "u1"
        );
    }

    #[test]
    fn concurrent_readers_survive_swaps() {
        let handle = Arc::new(IndexHandle::new(tiny_index(0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let handle = Arc::clone(&handle);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let index = handle.get();
                        let attrs = index.attributes(crate::ids::ImageId(0)).unwrap();
                        assert!(attrs.url.starts_with('u'));
                    }
                })
            })
            .collect();
        for gen in 1..50u64 {
            handle.swap(tiny_index(gen));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(handle.generation(), 49);
    }
}
