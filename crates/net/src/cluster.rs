//! Cluster lifecycle helper.
//!
//! Experiments spin up dozens of heterogeneous nodes (blenders, brokers,
//! searchers). [`Cluster`] type-erases them behind a shutdown trait so the
//! whole testbed can be torn down in one call, in reverse spawn order
//! (leaves first, like a real drain).

use crate::node::Node;
use crate::rpc::Service;

/// Anything that can be shut down (implemented by every [`Node`]).
pub trait Shutdown: Send + Sync {
    /// Stops the component and joins its threads. Must be idempotent.
    fn shutdown(&self);

    /// The component's name, for logs.
    fn name(&self) -> &str;
}

impl<S: Service> Shutdown for Node<S> {
    fn shutdown(&self) {
        Node::shutdown(self);
    }

    fn name(&self) -> &str {
        Node::name(self)
    }
}

/// A set of nodes torn down together.
#[derive(Default)]
pub struct Cluster {
    members: Vec<Box<dyn Shutdown>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("members", &self.members.len())
            .finish()
    }
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a member; later members are shut down first.
    pub fn register(&mut self, member: Box<dyn Shutdown>) {
        self.members.push(member);
    }

    /// Convenience: registers a [`Node`], returning nothing (grab handles
    /// before registering).
    pub fn register_node<S: Service>(&mut self, node: Node<S>) {
        self.register(Box::new(node));
    }

    /// Number of registered members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if no member is registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member names in spawn order.
    pub fn names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Shuts every member down, last-registered first.
    pub fn shutdown(&self) {
        for m in self.members.iter().rev() {
            m.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    struct Echo;
    impl Service for Echo {
        type Request = u32;
        type Response = u32;
        fn handle(&self, r: u32) -> u32 {
            r
        }
    }

    #[test]
    fn registers_and_shuts_down_nodes() {
        let mut cluster = Cluster::new();
        let a = Node::spawn("a", Echo, 1);
        let b = Node::spawn("b", Echo, 1);
        let ha = a.handle();
        let hb = b.handle();
        cluster.register_node(a);
        cluster.register_node(b);
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.names(), vec!["a", "b"]);
        assert_eq!(ha.call(1, Duration::from_secs(1)), Ok(1));
        cluster.shutdown();
        assert!(ha.is_down());
        assert!(hb.is_down());
    }

    #[test]
    fn shutdown_order_is_reverse_registration() {
        struct Probe {
            name: String,
            order: Arc<AtomicUsize>,
            seen: Arc<AtomicUsize>,
        }
        impl Shutdown for Probe {
            fn shutdown(&self) {
                self.seen
                    .store(self.order.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            }
            fn name(&self) -> &str {
                &self.name
            }
        }
        let order = Arc::new(AtomicUsize::new(1));
        let first_seen = Arc::new(AtomicUsize::new(0));
        let second_seen = Arc::new(AtomicUsize::new(0));
        let mut cluster = Cluster::new();
        cluster.register(Box::new(Probe {
            name: "first".into(),
            order: Arc::clone(&order),
            seen: Arc::clone(&first_seen),
        }));
        cluster.register(Box::new(Probe {
            name: "second".into(),
            order: Arc::clone(&order),
            seen: Arc::clone(&second_seen),
        }));
        cluster.shutdown();
        assert!(second_seen.load(Ordering::SeqCst) < first_seen.load(Ordering::SeqCst));
        std::mem::forget(cluster); // probes already consumed their one-shot counters
    }

    #[test]
    fn empty_cluster_is_fine() {
        let cluster = Cluster::new();
        assert!(cluster.is_empty());
        cluster.shutdown();
    }
}
