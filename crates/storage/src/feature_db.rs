//! The feature database.
//!
//! Section 2.2: *"If it is a new image, the features are extracted and
//! stored in the feature database. The feature database contains each
//! image's high dimensional features and its corresponding product's
//! attributes."*
//!
//! [`FeatureDb`] is exactly that: a concurrent map from [`ImageKey`] to the
//! extracted [`Vector`] plus the image's [`ProductAttributes`]. It doubles
//! as the dedup source for the reuse optimisation — `contains` answers
//! "have we extracted this image before?" without copying the vector.

use jdvs_vector::Vector;

use crate::kv::KvStore;
use crate::model::{ImageKey, ProductAttributes};

/// One feature-database record.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRecord {
    /// Extracted high-dimensional features.
    pub features: Vector,
    /// Attributes of the owning product at extraction time.
    pub attributes: ProductAttributes,
}

/// Concurrent feature database keyed by image URL hash.
///
/// # Example
///
/// ```
/// use jdvs_storage::{FeatureDb, ImageKey, ProductAttributes, ProductId};
/// use jdvs_vector::Vector;
///
/// let db = FeatureDb::new();
/// let attrs = ProductAttributes::new(ProductId(1), 10, 999, 3, "u".into());
/// let key = db.insert(Vector::from(vec![0.5; 4]), attrs);
/// assert!(db.contains(key));
/// assert_eq!(db.features(key).unwrap().dim(), 4);
/// ```
#[derive(Debug, Default)]
pub struct FeatureDb {
    records: KvStore<ImageKey, FeatureRecord>,
}

impl FeatureDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the record for `attributes.url`, returning the
    /// image key.
    pub fn insert(&self, features: Vector, attributes: ProductAttributes) -> ImageKey {
        let key = attributes.image_key();
        self.records.put(
            key,
            FeatureRecord {
                features,
                attributes,
            },
        );
        key
    }

    /// Returns `true` if features for `key` were extracted before — the
    /// paper's pre-extraction check.
    pub fn contains(&self, key: ImageKey) -> bool {
        self.records.contains(&key)
    }

    /// Fetches the whole record.
    pub fn get(&self, key: ImageKey) -> Option<FeatureRecord> {
        self.records.get(&key)
    }

    /// Fetches just the feature vector.
    pub fn features(&self, key: ImageKey) -> Option<Vector> {
        self.records.get(&key).map(|r| r.features)
    }

    /// Fetches just the attributes.
    pub fn attributes(&self, key: ImageKey) -> Option<ProductAttributes> {
        self.records.get(&key).map(|r| r.attributes)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Snapshot of all keys (full-index rebuild input).
    pub fn keys(&self) -> Vec<ImageKey> {
        self.records.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProductId;

    fn attrs(url: &str) -> ProductAttributes {
        ProductAttributes::new(ProductId(1), 5, 100, 2, url.to_string())
    }

    #[test]
    fn insert_and_lookup() {
        let db = FeatureDb::new();
        let key = db.insert(Vector::from(vec![1.0, 2.0]), attrs("u1"));
        assert!(db.contains(key));
        assert_eq!(db.features(key).unwrap().as_slice(), &[1.0, 2.0]);
        assert_eq!(db.attributes(key).unwrap().url, "u1");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn missing_key_is_absent() {
        let db = FeatureDb::new();
        let key = ImageKey::from_url("nope");
        assert!(!db.contains(key));
        assert!(db.get(key).is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn reinsert_replaces_record() {
        let db = FeatureDb::new();
        let key = db.insert(Vector::from(vec![1.0]), attrs("u1"));
        db.insert(Vector::from(vec![9.0]), attrs("u1"));
        assert_eq!(db.len(), 1);
        assert_eq!(db.features(key).unwrap().as_slice(), &[9.0]);
    }

    #[test]
    fn keys_cover_all_inserts() {
        let db = FeatureDb::new();
        for i in 0..10 {
            db.insert(Vector::zeros(2), attrs(&format!("u{i}")));
        }
        assert_eq!(db.keys().len(), 10);
    }
}
