//! Segmented append-only ingestion log with per-record CRC32C framing.
//!
//! The log is the durable twin of the in-memory
//! [`MessageQueue`](jdvs_storage::MessageQueue): record *N* of the log is
//! queue offset *N*. It is written as a sequence of segment files
//! (`wal-{first_offset:020}.seg`), each a run of frames:
//!
//! ```text
//! frame := len:u32le crc:u32le payload[len]      crc = crc32c(payload)
//! ```
//!
//! **Torn tails.** A crash mid-write leaves a partial frame (or a frame
//! whose payload bytes never all reached the platter). On open the log
//! scans every segment and truncates at the first frame that is incomplete
//! or fails its CRC — everything after an invalid frame has ambiguous
//! framing, so later bytes *and later segments* are discarded. The log is
//! therefore always a valid prefix of what was appended; with
//! [`FsyncPolicy::Always`] that prefix provably includes every
//! acknowledged append.
//!
//! **Fsync policy.** [`FsyncPolicy`] trades durability for append
//! throughput: `Always` fdatasyncs every record, `EveryN(n)` amortises one
//! sync over `n` appends, `Os` leaves flushing to the page cache.
//!
//! **Retention.** Segments roll at a size threshold; whole segments whose
//! records all lie below the checkpoint watermark are deleted by
//! [`SegmentedLog::retain_from`] — the log only needs to cover what a
//! recovery would replay.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::checksum::crc32c;
use jdvs_storage::queue::Offset;

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// When the log writer calls `fdatasync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acknowledged record survives any crash.
    Always,
    /// Sync after every `n` appends (and on rotation/explicit sync): bounds
    /// loss to the last `n - 1` acknowledged records.
    EveryN(u64),
    /// Never sync explicitly; the OS flushes the page cache at its leisure.
    /// A process crash loses nothing, a machine crash may lose the tail.
    Os,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

/// Configuration of a [`SegmentedLog`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Roll to a new segment once the current one reaches this many bytes.
    pub segment_max_bytes: u64,
    /// Durability/throughput trade-off for appends.
    pub fsync: FsyncPolicy,
    /// Under [`FsyncPolicy::Always`], skip the *inline* per-append sync so
    /// an external commit queue (see `jdvs-durability`'s `CommitQueue`)
    /// can batch concurrent publishers into one `fdatasync`. The caller
    /// takes over the "acknowledged ⇒ durable" obligation: it must not
    /// acknowledge an append before a sync covering it completes. No
    /// effect under the other policies.
    pub group_commit: bool,
}

impl LogConfig {
    /// Defaults: 8 MiB segments, `FsyncPolicy::EveryN(64)`, no group
    /// commit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_max_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::default(),
            group_commit: false,
        }
    }
}

/// One segment file's bookkeeping.
#[derive(Debug)]
struct Segment {
    /// Offset of the segment's first record.
    first_offset: Offset,
    /// Records currently in the segment.
    records: u64,
    /// Valid bytes (frames only; this is also the append position).
    bytes: u64,
}

impl Segment {
    fn path(&self, dir: &Path) -> PathBuf {
        segment_path(dir, self.first_offset)
    }
}

pub(crate) fn segment_path(dir: &Path, first_offset: Offset) -> PathBuf {
    dir.join(format!("wal-{first_offset:020}.seg"))
}

/// What [`SegmentedLog::open`] had to repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Bytes discarded (partial/corrupt frames and any segments after them).
    pub torn_bytes: u64,
    /// Whole frames discarded because their CRC32C failed.
    pub corrupt_records: u64,
    /// Segment files deleted because they followed an invalid frame.
    pub segments_dropped: u64,
}

/// The segmented, CRC32C-framed, fsync-policied ingestion log.
#[derive(Debug)]
pub struct SegmentedLog {
    config: LogConfig,
    metrics: Arc<DurabilityMetrics>,
    /// All live segments, oldest first; never empty after `open`.
    segments: Vec<Segment>,
    /// Append handle on the last segment.
    writer: File,
    /// Offset the next append will get.
    next_offset: Offset,
    /// Appends since the last explicit sync (for `EveryN`).
    unsynced: u64,
    /// What `open` repaired (kept for callers that open then ask).
    open_report: OpenReport,
}

impl SegmentedLog {
    /// Opens (or creates) the log in `config.dir`, scanning every segment,
    /// truncating the torn/corrupt tail and deleting unreachable segments.
    pub fn open(config: LogConfig, metrics: Arc<DurabilityMetrics>) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        let mut firsts = list_segments(&config.dir)?;
        firsts.sort_unstable();

        let mut report = OpenReport::default();
        let mut segments: Vec<Segment> = Vec::new();
        let mut expected_first: Option<Offset> = None;
        let mut valid_prefix_ended = false;
        for (i, first) in firsts.iter().copied().enumerate() {
            let path = segment_path(&config.dir, first);
            // Once the valid prefix has ended (invalid frame, or a gap in
            // the offset sequence), every later segment is unreachable.
            let gap = expected_first.is_some_and(|e| e != first);
            if valid_prefix_ended || gap {
                report.torn_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                report.segments_dropped += 1;
                fs::remove_file(&path)?;
                valid_prefix_ended = true;
                continue;
            }
            let scan = scan_segment(&path)?;
            if scan.invalid_bytes > 0 {
                // Truncate the file back to its valid prefix.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_bytes)?;
                f.sync_all()?;
                report.torn_bytes += scan.invalid_bytes;
                report.corrupt_records += scan.corrupt_records;
                valid_prefix_ended = true;
            }
            let is_last_listed = i == firsts.len() - 1;
            if scan.records == 0 && !is_last_listed && !valid_prefix_ended {
                // A fully-empty middle segment would break continuity.
                valid_prefix_ended = true;
            }
            segments.push(Segment {
                first_offset: first,
                records: scan.records,
                bytes: scan.valid_bytes,
            });
            expected_first = Some(first + scan.records);
        }
        if segments.is_empty() {
            segments.push(Segment {
                first_offset: 0,
                records: 0,
                bytes: 0,
            });
            // Touch the initial segment so recovery sees a consistent dir.
            File::create(segments[0].path(&config.dir))?;
            metrics.segments_created.incr();
        }

        let last = segments.last().expect("at least one segment");
        let next_offset = last.first_offset + last.records;
        let mut writer = OpenOptions::new()
            .append(true)
            .open(last.path(&config.dir))?;
        writer.seek(SeekFrom::End(0))?;

        metrics.torn_bytes_truncated.add(report.torn_bytes);
        metrics.corrupt_records_dropped.add(report.corrupt_records);
        metrics.durable_offset.set_max(next_offset);

        Ok(Self {
            config,
            metrics,
            segments,
            writer,
            next_offset,
            unsynced: 0,
            open_report: report,
        })
    }

    /// What the most recent [`SegmentedLog::open`] repaired.
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// Offset of the oldest record still in the log.
    pub fn first_offset(&self) -> Offset {
        self.segments[0].first_offset
    }

    /// Offset the next append will receive (== records ever appended,
    /// including pruned ones).
    pub fn next_offset(&self) -> Offset {
        self.next_offset
    }

    /// Live segment count.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The directory holding this log's segment files.
    pub(crate) fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The metrics sink this log reports into.
    pub(crate) fn metrics(&self) -> &DurabilityMetrics {
        &self.metrics
    }

    /// Appends one record, returning its offset. Honors the fsync policy.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<Offset> {
        let last = self.segments.last().expect("at least one segment");
        if last.bytes >= self.config.segment_max_bytes && last.records > 0 {
            self.rotate()?;
        }

        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32c(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.writer.write_all(&frame)?;

        let offset = self.next_offset;
        self.next_offset += 1;
        let last = self.segments.last_mut().expect("at least one segment");
        last.records += 1;
        last.bytes += frame.len() as u64;

        self.metrics.log_appends.incr();
        self.metrics.log_bytes.add(payload.len() as u64);

        self.unsynced += 1;
        match self.config.fsync {
            // With group commit, the sync is deferred to the commit queue
            // leader; `durable_offset` advances only when it runs.
            FsyncPolicy::Always => {
                if !self.config.group_commit {
                    self.sync()?;
                }
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Os => {
                // Acknowledged into the page cache only; still report the
                // append so replay_exposure tracks log growth.
                self.metrics.durable_offset.set_max(self.next_offset);
            }
        }
        Ok(offset)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync_data()?;
        self.unsynced = 0;
        self.metrics.log_syncs.incr();
        self.metrics.durable_offset.set_max(self.next_offset);
        Ok(())
    }

    /// Rolls to a fresh segment starting at `next_offset`. The finished
    /// segment is synced first so retention/recovery never race a dirty
    /// tail.
    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let path = segment_path(&self.config.dir, self.next_offset);
        self.writer = OpenOptions::new().append(true).create(true).open(&path)?;
        self.segments.push(Segment {
            first_offset: self.next_offset,
            records: 0,
            bytes: 0,
        });
        self.metrics.segments_created.incr();
        sync_dir(&self.config.dir)?;
        Ok(())
    }

    /// Deletes every segment whose records *all* lie below `watermark`
    /// (the checkpoint's applied offset). The active segment is never
    /// deleted. Returns the number of segments pruned.
    pub fn retain_from(&mut self, watermark: Offset) -> io::Result<u64> {
        let mut pruned = 0;
        while self.segments.len() > 1 {
            // Safe to drop segment 0 iff segment 1 starts at or below the
            // watermark: every record of segment 0 is then < watermark.
            if self.segments[1].first_offset <= watermark {
                let seg = self.segments.remove(0);
                fs::remove_file(seg.path(&self.config.dir))?;
                pruned += 1;
            } else {
                break;
            }
        }
        if pruned > 0 {
            self.metrics.segments_pruned.add(pruned);
            sync_dir(&self.config.dir)?;
        }
        Ok(pruned)
    }

    /// Reads every record with offset `>= from`, oldest first.
    ///
    /// `open` already sanitized the files, so an invalid frame here means
    /// the disk changed underneath us — reported as `InvalidData`, never a
    /// panic or garbage payload (every returned record passed its CRC).
    pub fn replay(&self, from: Offset) -> io::Result<Vec<(Offset, Vec<u8>)>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let seg_end = seg.first_offset + seg.records;
            if seg_end <= from {
                continue;
            }
            let bytes = fs::read(seg.path(&self.config.dir))?;
            let mut pos = 0usize;
            let mut offset = seg.first_offset;
            while offset < seg_end {
                let (payload, next) = read_frame(&bytes, pos).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("log record {offset} failed validation on replay"),
                    )
                })?;
                if offset >= from {
                    out.push((offset, payload.to_vec()));
                }
                pos = next;
                offset += 1;
            }
        }
        Ok(out)
    }
}

/// Parses the frame at `pos`; `None` if incomplete or CRC-invalid.
/// Returns the payload slice and the position of the next frame.
pub(crate) fn read_frame(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(pos..pos + FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let payload = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len)?;
    if crc32c(payload) != crc {
        return None;
    }
    Some((payload, pos + FRAME_HEADER + len))
}

#[derive(Debug)]
struct SegmentScan {
    /// Whole valid frames found before the first invalid byte.
    records: u64,
    /// Bytes those frames occupy.
    valid_bytes: u64,
    /// Bytes past the valid prefix (torn or corrupt).
    invalid_bytes: u64,
    /// Frames within the invalid region that were complete but failed CRC.
    corrupt_records: u64,
}

/// Scans a segment file, finding its valid frame prefix.
fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut pos = 0usize;
    let mut records = 0u64;
    while let Some((_, next)) = read_frame(&bytes, pos) {
        pos = next;
        records += 1;
    }
    let mut corrupt_records = 0u64;
    if pos < bytes.len() {
        // Distinguish "complete frame, bad CRC" (corruption) from "frame
        // runs past EOF" (torn write) — both end the valid prefix, but the
        // metrics story differs.
        if let Some(header) = bytes.get(pos..pos + FRAME_HEADER) {
            let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            if bytes.len() - pos - FRAME_HEADER >= len {
                corrupt_records = 1;
            }
        }
    }
    Ok(SegmentScan {
        records,
        valid_bytes: pos as u64,
        invalid_bytes: (bytes.len() - pos) as u64,
        corrupt_records,
    })
}

/// Lists segment first-offsets present in `dir`.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<Offset>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(digits) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        {
            if let Ok(first) = digits.parse::<Offset>() {
                out.push(first);
            }
        }
    }
    Ok(out)
}

/// Fsyncs a directory so renames/creates/deletes within it are durable.
/// Windows cannot open directories as files; there this is a no-op.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-log-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, fsync: FsyncPolicy, max: u64) -> SegmentedLog {
        let config = LogConfig {
            dir: dir.to_path_buf(),
            segment_max_bytes: max,
            fsync,
            group_commit: false,
        };
        SegmentedLog::open(config, Arc::new(DurabilityMetrics::new())).unwrap()
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("record-{i}-{}", "x".repeat((i % 7) as usize)).into_bytes()
    }

    #[test]
    fn appends_replay_in_order_across_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut log = open(&dir, FsyncPolicy::Always, 1 << 20);
            for i in 0..50 {
                assert_eq!(log.append(&payload(i)).unwrap(), i);
            }
        }
        let log = open(&dir, FsyncPolicy::Always, 1 << 20);
        assert_eq!(log.next_offset(), 50);
        let records = log.replay(0).unwrap();
        assert_eq!(records.len(), 50);
        for (i, (off, bytes)) in records.iter().enumerate() {
            assert_eq!(*off, i as u64);
            assert_eq!(*bytes, payload(i as u64));
        }
        // Suffix replay.
        let tail = log.replay(47).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 47);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = temp_dir("rotate");
        let mut log = open(&dir, FsyncPolicy::Os, 64);
        for i in 0..40 {
            log.append(&payload(i)).unwrap();
        }
        assert!(log.num_segments() > 2, "tiny segments must rotate");
        assert_eq!(log.replay(0).unwrap().len(), 40);
        drop(log);
        // Reopen sees the same shape.
        let log = open(&dir, FsyncPolicy::Os, 64);
        assert_eq!(log.next_offset(), 40);
        assert_eq!(log.replay(17).unwrap().len(), 23);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        {
            let mut log = open(&dir, FsyncPolicy::Always, 1 << 20);
            for i in 0..10 {
                log.append(&payload(i)).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the segment file.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap(); // partial final frame
        drop(f);

        let log = open(&dir, FsyncPolicy::Always, 1 << 20);
        assert_eq!(log.next_offset(), 9, "final record dropped");
        assert!(log.open_report().torn_bytes > 0);
        assert_eq!(log.replay(0).unwrap().len(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_ends_the_valid_prefix() {
        let dir = temp_dir("corrupt");
        {
            let mut log = open(&dir, FsyncPolicy::Always, 1 << 20);
            for i in 0..10 {
                log.append(&payload(i)).unwrap();
            }
        }
        // Flip the last payload byte: the final frame is complete but its
        // CRC no longer matches.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        *bytes.last_mut().unwrap() ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let log = open(&dir, FsyncPolicy::Always, 1 << 20);
        assert_eq!(log.next_offset(), 9, "the flipped record is gone");
        let report = log.open_report();
        assert!(report.torn_bytes > 0);
        assert_eq!(report.corrupt_records, 1);
        // Every surviving record is intact.
        for (off, bytes) in log.replay(0).unwrap() {
            assert_eq!(bytes, payload(off));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_early_segment_drops_later_segments() {
        let dir = temp_dir("cascade");
        {
            let mut log = open(&dir, FsyncPolicy::Os, 64);
            for i in 0..40 {
                log.append(&payload(i)).unwrap();
            }
            assert!(log.num_segments() >= 3);
        }
        // Corrupt the very first segment's first record.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        bytes[FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let log = open(&dir, FsyncPolicy::Os, 64);
        assert_eq!(log.next_offset(), 0, "nothing survives a headshot");
        assert!(log.open_report().segments_dropped >= 2);
        assert!(log.replay(0).unwrap().is_empty());
        // And the log still appends fine afterwards.
        let mut log = log;
        assert_eq!(log.append(b"fresh").unwrap(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_prunes_only_below_watermark() {
        let dir = temp_dir("retain");
        let mut log = open(&dir, FsyncPolicy::Os, 64);
        for i in 0..40 {
            log.append(&payload(i)).unwrap();
        }
        let before = log.num_segments();
        assert!(before >= 3);
        // Watermark 0: nothing prunable.
        assert_eq!(log.retain_from(0).unwrap(), 0);
        // Watermark past the second segment's start: first is prunable.
        let pruned = log.retain_from(log.next_offset()).unwrap();
        assert!(pruned >= 1);
        assert_eq!(log.num_segments(), 1, "only the active segment remains");
        assert!(log.first_offset() > 0);
        // Replay from the new first offset still works.
        let records = log.replay(log.first_offset()).unwrap();
        assert_eq!(records.len() as u64, log.next_offset() - log.first_offset());
        // Reopen after pruning: offsets are preserved.
        drop(log);
        let log = open(&dir, FsyncPolicy::Os, 64);
        assert_eq!(log.next_offset(), 40);
        assert!(log.first_offset() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_counts_syncs() {
        let dir = temp_dir("everyn");
        let metrics = Arc::new(DurabilityMetrics::new());
        let config = LogConfig {
            dir: dir.clone(),
            segment_max_bytes: 1 << 20,
            fsync: FsyncPolicy::EveryN(10),
            group_commit: false,
        };
        let mut log = SegmentedLog::open(config, Arc::clone(&metrics)).unwrap();
        for i in 0..25 {
            log.append(&payload(i)).unwrap();
        }
        assert_eq!(metrics.log_syncs.get(), 2, "25 appends, sync every 10");
        assert_eq!(metrics.durable_offset.get(), 20, "durable through sync");
        log.sync().unwrap();
        assert_eq!(metrics.durable_offset.get(), 25);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics() {
        let dir = temp_dir("fuzztrunc");
        {
            let mut log = open(&dir, FsyncPolicy::Always, 1 << 20);
            for i in 0..6 {
                log.append(&payload(i)).unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        let pristine = fs::read(&seg).unwrap();
        for cut in (0..pristine.len()).rev() {
            fs::write(&seg, &pristine[..cut]).unwrap();
            let log = open(&dir, FsyncPolicy::Always, 1 << 20);
            // Valid prefix only, and all of it checks out.
            for (off, bytes) in log.replay(0).unwrap() {
                assert_eq!(bytes, payload(off));
            }
            assert!(log.next_offset() <= 6);
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
