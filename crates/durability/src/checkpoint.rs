//! Atomic index checkpoints with a manifest.
//!
//! A checkpoint is a [`persist::save`] snapshot of one partition's
//! [`VisualIndex`] plus the queue offset it covers. Writes are atomic in
//! the classic temp-file + rename way:
//!
//! 1. snapshot bytes → `snap-{offset:020}.ckpt.tmp`, `fsync`, rename to
//!    `snap-{offset:020}.ckpt`, `fsync` the directory
//! 2. manifest bytes → `MANIFEST.tmp`, `fsync`, rename to `MANIFEST`,
//!    `fsync` the directory
//!
//! A crash between any two steps leaves either the old manifest (pointing
//! at the old snapshot, still present — retention keeps every snapshot the
//! manifest might name plus the newest) or the new one; never a manifest
//! naming a half-written snapshot. A crash *before* a rename can strand a
//! `*.tmp` file; [`CheckpointStore::open`] sweeps those away.
//!
//! Recovery trusts nothing: the manifest carries its own CRC32C, the
//! snapshot carries the format-v2 trailer checked by [`persist::load`],
//! and when either fails the store falls back to the newest snapshot file
//! that *does* decode (offset parsed from its name), or to a cold replay.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use jdvs_core::index::VisualIndex;
use jdvs_core::persist;
use jdvs_metrics::DurabilityMetrics;
use jdvs_storage::checksum::crc32c;
use jdvs_storage::queue::Offset;

use crate::log::sync_dir;

const MANIFEST_MAGIC: &[u8; 8] = b"JDVSMANI";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST: &str = "MANIFEST";

/// Configuration of a [`CheckpointStore`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding snapshots and the manifest (created if absent).
    pub dir: PathBuf,
    /// Snapshots retained beyond the manifest's current one (fallbacks for
    /// a corrupt newest snapshot). At least 1.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Defaults: keep the manifest snapshot plus one older fallback.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            keep: 2,
        }
    }
}

/// What the manifest records about the newest checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Snapshot file name (relative to the checkpoint dir).
    pub snapshot: String,
    /// Queue offset the snapshot covers: recovery replays the log from
    /// here (`applied_offset` == "next offset to apply").
    pub applied_offset: Offset,
}

/// Outcome of [`CheckpointStore::recover`].
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// The decoded index.
    pub index: VisualIndex,
    /// Offset recovery must replay the log from.
    pub applied_offset: Offset,
    /// Whether the manifest's snapshot was used (`false` = a fallback
    /// snapshot; the manifest was missing, corrupt or named a bad file).
    pub from_manifest: bool,
}

/// A checkpoint recovered once and fanned out across a partition's
/// replicas: the snapshot is read from disk and validated a single time,
/// the raw bytes are kept behind an `Arc`, and every additional replica
/// decodes its own index from memory via [`SharedCheckpoint::fork`] —
/// no per-replica disk read, no per-replica validation failure path.
#[derive(Debug)]
pub struct SharedCheckpoint {
    /// The index decoded during validation; the first consumer takes it.
    pub index: VisualIndex,
    /// The validated snapshot bytes, shared by all forks.
    bytes: Arc<Vec<u8>>,
    /// Offset recovery must replay the log from.
    pub applied_offset: Offset,
    /// Whether the manifest's snapshot was used (see
    /// [`RecoveredCheckpoint::from_manifest`]).
    pub from_manifest: bool,
}

impl SharedCheckpoint {
    /// Decodes a fresh index from the already-validated in-memory snapshot
    /// bytes, for an additional replica of the same partition.
    pub fn fork(&self) -> VisualIndex {
        persist::load(&self.bytes).expect("snapshot bytes were validated at recovery time")
    }

    /// Size of the shared snapshot, in bytes.
    pub fn snapshot_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Atomic snapshot + manifest storage for one partition.
#[derive(Debug)]
pub struct CheckpointStore {
    config: CheckpointConfig,
    metrics: Arc<DurabilityMetrics>,
}

impl CheckpointStore {
    /// Opens (or creates) the store in `config.dir`, sweeping any `*.tmp`
    /// file stranded by a crash between a temp write and its rename.
    pub fn open(config: CheckpointConfig, metrics: Arc<DurabilityMetrics>) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        for entry in fs::read_dir(&config.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                fs::remove_file(&path)?;
            }
        }
        Ok(Self { config, metrics })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Writes a checkpoint of `index` covering everything below
    /// `applied_offset`, atomically, then prunes old snapshots.
    pub fn save(&self, index: &VisualIndex, applied_offset: Offset) -> io::Result<()> {
        let snapshot_name = format!("snap-{applied_offset:020}.ckpt");
        let bytes = persist::save(index);

        write_atomic(&self.config.dir, &snapshot_name, &bytes)?;
        let manifest = Manifest {
            snapshot: snapshot_name,
            applied_offset,
        };
        write_atomic(&self.config.dir, MANIFEST, &encode_manifest(&manifest))?;

        self.metrics.checkpoints_written.incr();
        self.metrics.checkpoint_bytes.add(bytes.len() as u64);
        self.metrics.checkpoint_offset.set_max(applied_offset);

        self.prune(&manifest.snapshot)?;
        Ok(())
    }

    /// Reads and validates the manifest, if present.
    pub fn manifest(&self) -> Option<Manifest> {
        let bytes = fs::read(self.config.dir.join(MANIFEST)).ok()?;
        decode_manifest(&bytes)
    }

    /// Loads the newest usable checkpoint: the manifest's snapshot when it
    /// validates, else newest-first over the remaining snapshot files.
    /// `None` means cold recovery (replay the whole log).
    pub fn recover(&self) -> Option<RecoveredCheckpoint> {
        self.recover_within(Offset::MAX)
    }

    /// Like [`CheckpointStore::recover`], but rejects any snapshot whose
    /// applied offset exceeds `max_applied`. Recovery passes the durable
    /// log's end here: a checkpoint watermark past the log end means the
    /// log was truncated (or lost an un-fsynced tail) *after* the snapshot
    /// was taken — seeding from it would pin the consumer past events the
    /// log will re-assign those offsets to, silently skipping them forever.
    /// Such snapshots are skipped in favour of an older in-bounds one (or
    /// cold replay).
    pub fn recover_within(&self, max_applied: Offset) -> Option<RecoveredCheckpoint> {
        let shared = self.recover_shared_within(max_applied)?;
        Some(RecoveredCheckpoint {
            index: shared.index,
            applied_offset: shared.applied_offset,
            from_manifest: shared.from_manifest,
        })
    }

    /// Like [`CheckpointStore::recover_within`], but keeps the validated
    /// snapshot bytes so one recovered checkpoint can seed **all** of a
    /// partition's replicas ([`SharedCheckpoint::fork`]) instead of each
    /// replica re-reading and re-validating the file.
    pub fn recover_shared_within(&self, max_applied: Offset) -> Option<SharedCheckpoint> {
        if let Some(manifest) = self.manifest() {
            if manifest.applied_offset > max_applied {
                self.metrics.snapshots_rejected.incr();
            } else {
                let path = self.config.dir.join(&manifest.snapshot);
                if let Ok(bytes) = fs::read(&path) {
                    match persist::load(&bytes) {
                        Ok(index) => {
                            return Some(SharedCheckpoint {
                                index,
                                bytes: Arc::new(bytes),
                                applied_offset: manifest.applied_offset,
                                from_manifest: true,
                            });
                        }
                        Err(_) => {
                            self.metrics.snapshots_rejected.incr();
                        }
                    }
                } else {
                    self.metrics.snapshots_rejected.incr();
                }
            }
        }
        // Fallback: newest snapshot file that decodes, offset from name.
        let mut candidates = self.snapshot_files().ok()?;
        candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
        for (offset, name) in candidates {
            if offset > max_applied {
                continue;
            }
            let path = self.config.dir.join(&name);
            let Some(bytes) = fs::read(&path).ok() else {
                self.metrics.snapshots_rejected.incr();
                continue;
            };
            match persist::load(&bytes) {
                Ok(index) => {
                    return Some(SharedCheckpoint {
                        index,
                        bytes: Arc::new(bytes),
                        applied_offset: offset,
                        from_manifest: false,
                    });
                }
                Err(_) => {
                    self.metrics.snapshots_rejected.incr();
                }
            }
        }
        None
    }

    /// `(applied_offset, file name)` of every snapshot on disk.
    fn snapshot_files(&self) -> io::Result<Vec<(Offset, String)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.config.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(digits) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(offset) = digits.parse::<Offset>() {
                    out.push((offset, name.to_string()));
                }
            }
        }
        Ok(out)
    }

    /// Deletes all but the `keep` newest snapshots; `current` (the file the
    /// manifest names) is always kept regardless.
    fn prune(&self, current: &str) -> io::Result<()> {
        let mut files = self.snapshot_files()?;
        files.sort_unstable_by_key(|f| std::cmp::Reverse(f.0));
        for (_, name) in files.into_iter().skip(self.config.keep.max(1)) {
            if name != current {
                fs::remove_file(self.config.dir.join(name))?;
            }
        }
        Ok(())
    }
}

/// `magic(8) version:u32 applied_offset:u64 name_len:u32 name crc:u32`,
/// all little-endian; `crc = crc32c` of everything before it.
fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + m.snapshot.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&m.applied_offset.to_le_bytes());
    buf.extend_from_slice(&(m.snapshot.len() as u32).to_le_bytes());
    buf.extend_from_slice(m.snapshot.as_bytes());
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn decode_manifest(bytes: &[u8]) -> Option<Manifest> {
    if bytes.len() < 28 || &bytes[..8] != MANIFEST_MAGIC {
        return None;
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32c(payload) != crc {
        return None;
    }
    let version = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    if version != MANIFEST_VERSION {
        return None;
    }
    let applied_offset = u64::from_le_bytes(payload[12..20].try_into().unwrap());
    let name_len = u32::from_le_bytes(payload[20..24].try_into().unwrap()) as usize;
    let name = payload.get(24..24 + name_len)?;
    if 24 + name_len != payload.len() {
        return None;
    }
    let snapshot = String::from_utf8(name.to_vec()).ok()?;
    Some(Manifest {
        snapshot,
        applied_offset,
    })
}

/// Temp-file + fsync + rename + directory-fsync write of `name` in `dir`
/// — the rename itself is made durable here, not left to a later caller.
fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &target)?;
    sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_core::config::IndexConfig;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::Vector;
    use std::sync::atomic::{AtomicU64, Ordering};

    const DIM: usize = 8;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("jdvs-ckpt-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn store(dir: &Path, keep: usize) -> (CheckpointStore, Arc<DurabilityMetrics>) {
        let metrics = Arc::new(DurabilityMetrics::new());
        let config = CheckpointConfig {
            dir: dir.to_path_buf(),
            keep,
        };
        (
            CheckpointStore::open(config, Arc::clone(&metrics)).unwrap(),
            metrics,
        )
    }

    fn sample_index(n: u64) -> VisualIndex {
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(11);
        let train: Vec<Vector> = (0..32)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 2,
                ..Default::default()
            },
            &train,
        );
        for i in 0..n {
            let url = format!("ckpt-{i}");
            let attrs = ProductAttributes::new(ProductId(i), i, 100 + i, 1, url);
            let feats: Vector = (0..DIM).map(|_| rng.next_gaussian() as f32).collect();
            index.upsert(attrs, || Some(feats.clone())).unwrap();
        }
        index.flush();
        index
    }

    #[test]
    fn save_then_recover_round_trips() {
        let dir = temp_dir("roundtrip");
        let (store, metrics) = store(&dir, 2);
        let index = sample_index(5);
        store.save(&index, 17).unwrap();

        let rec = store.recover().unwrap();
        assert!(rec.from_manifest);
        assert_eq!(rec.applied_offset, 17);
        assert_eq!(rec.index.valid_images(), 5);
        assert_eq!(metrics.checkpoints_written.get(), 1);
        assert_eq!(metrics.checkpoint_offset.get(), 17);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_recovers_to_none() {
        let dir = temp_dir("empty");
        let (store, _) = store(&dir, 2);
        assert!(store.recover().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = temp_dir("fallback");
        let (store, metrics) = store(&dir, 3);
        store.save(&sample_index(3), 10).unwrap();
        store.save(&sample_index(6), 20).unwrap();

        // Bit-flip the newest snapshot's payload.
        let newest = dir.join("snap-00000000000000000020.ckpt");
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        fs::write(&newest, &bytes).unwrap();

        let rec = store.recover().unwrap();
        assert!(!rec.from_manifest, "manifest snapshot was rejected");
        assert_eq!(rec.applied_offset, 10, "older snapshot wins");
        assert_eq!(rec.index.valid_images(), 3);
        assert!(metrics.snapshots_rejected.get() >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_falls_back_to_newest_valid_snapshot() {
        let dir = temp_dir("badmanifest");
        let (store, _) = store(&dir, 3);
        store.save(&sample_index(4), 30).unwrap();
        // Truncate the manifest mid-write (crash between fsync and rename
        // is already covered by rename atomicity; this models a corrupt
        // manifest file itself).
        let manifest = dir.join(MANIFEST);
        let bytes = fs::read(&manifest).unwrap();
        fs::write(&manifest, &bytes[..bytes.len() - 2]).unwrap();

        let rec = store.recover().unwrap();
        assert!(!rec.from_manifest);
        assert_eq!(rec.applied_offset, 30, "offset parsed from file name");
        assert_eq!(rec.index.valid_images(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_newest_and_manifest_target() {
        let dir = temp_dir("prune");
        let (store, _) = store(&dir, 2);
        for (n, off) in [(1u64, 10u64), (2, 20), (3, 30), (4, 40)] {
            store.save(&sample_index(n), off).unwrap();
        }
        let mut names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "snap-00000000000000000030.ckpt".to_string(),
                "snap-00000000000000000040.ckpt".to_string(),
            ],
            "keep=2 retains the two newest"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_stranded_tmp_files() {
        let dir = temp_dir("tmpsweep");
        let (first, _) = store(&dir, 2);
        first.save(&sample_index(2), 5).unwrap();
        // A crash between fsync and rename strands temp files.
        fs::write(dir.join("snap-00000000000000000009.ckpt.tmp"), b"half").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"half").unwrap();
        drop(first);

        let (reopened, _) = store(&dir, 2);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "tmp files must be swept: {leftovers:?}"
        );
        // The real snapshot and manifest survive the sweep.
        let rec = reopened.recover().unwrap();
        assert!(rec.from_manifest);
        assert_eq!(rec.applied_offset, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_within_skips_snapshots_past_the_log_end() {
        let dir = temp_dir("within");
        let (store, metrics) = store(&dir, 3);
        store.save(&sample_index(3), 10).unwrap();
        store.save(&sample_index(6), 20).unwrap();

        // Log end 20: the manifest snapshot is in bounds.
        let rec = store.recover_within(20).unwrap();
        assert!(rec.from_manifest);
        assert_eq!(rec.applied_offset, 20);

        // Log end 15: the manifest's watermark (20) outruns the log —
        // the older snapshot must win.
        let rec = store.recover_within(15).unwrap();
        assert!(!rec.from_manifest);
        assert_eq!(rec.applied_offset, 10);
        assert_eq!(rec.index.valid_images(), 3);
        assert!(metrics.snapshots_rejected.get() >= 1);

        // Log end 5: nothing usable; cold recovery.
        assert!(store.recover_within(5).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_recovery_forks_bit_identical_replicas() {
        let dir = temp_dir("shared");
        let (store, _) = store(&dir, 2);
        let index = sample_index(7);
        store.save(&index, 42).unwrap();

        let shared = store.recover_shared_within(Offset::MAX).unwrap();
        assert!(shared.from_manifest);
        assert_eq!(shared.applied_offset, 42);
        assert!(shared.snapshot_len() > 0);

        // Delete the files: forks must come from memory, not disk.
        fs::remove_dir_all(&dir).unwrap();
        let fork_a = shared.fork();
        let fork_b = shared.fork();
        let original = persist::save(&shared.index);
        assert_eq!(persist::save(&fork_a), original);
        assert_eq!(persist::save(&fork_b), original);
        assert_eq!(fork_a.valid_images(), 7);
    }

    #[test]
    fn manifest_codec_rejects_mutations() {
        let m = Manifest {
            snapshot: "snap-00000000000000000099.ckpt".into(),
            applied_offset: 99,
        };
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes), Some(m));
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x10;
            assert_eq!(decode_manifest(&mutated), None, "flip at byte {i}");
        }
        for len in 0..bytes.len() {
            assert_eq!(decode_manifest(&bytes[..len]), None);
        }
    }
}
