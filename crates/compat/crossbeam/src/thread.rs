//! Scoped threads with the crossbeam calling convention (`spawn` closures
//! receive a `&Scope` for nested spawns), layered over `std::thread::scope`.

use std::any::Any;

/// Result type matching `crossbeam::thread::scope`'s signature: the outer
/// `Result` reports panics of spawned threads in crossbeam; with std scopes a
/// child panic aborts the scope by re-raising on join, so in practice this is
/// always `Ok` when it returns.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Wrapper over `std::thread::Scope` so spawn closures can take a scope
/// argument (`|_| ...`), as crossbeam's do.
#[repr(transparent)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle { inner: self.inner.spawn(move || f(self)) }
    }
}

/// Runs `f` with a scope handle; all threads spawned through the scope are
/// joined before `scope` returns (std guarantees this).
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| {
        // SAFETY: `Scope` is a `#[repr(transparent)]` wrapper around
        // `std::thread::Scope`, so the reference cast preserves layout and
        // lifetimes exactly.
        let wrapped: &Scope<'_, 'env> =
            unsafe { &*(s as *const std::thread::Scope<'_, 'env> as *const Scope<'_, 'env>) };
        Ok(f(wrapped))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).count()
        })
        .unwrap();
        assert_eq!(out, 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let total = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| total.fetch_add(1, Ordering::SeqCst)).join().unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 1);
    }
}
