//! K-means clustering: the coarse quantizer behind the inverted index.
//!
//! Section 2.2 of the paper: *"The k-mean algorithm on a set of training
//! data set (i.e., image features) is used to generate the classification"*
//! — each of the N inverted lists corresponds to one k-means centroid, and
//! an image is filed under the list of its nearest centroid.
//!
//! The implementation is standard Lloyd iteration with k-means++ seeding,
//! deterministic given the config seed, plus empty-cluster repair (an empty
//! cluster steals the point farthest from its current centroid, which keeps
//! all N inverted lists non-degenerate).

use serde::{Deserialize, Serialize};

use crate::coarse::{CentroidGraph, GraphScratch};
use crate::distance::squared_l2;
use crate::rng::Xoshiro256;
use crate::vector::Vector;

/// Configuration for [`Kmeans::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KmeansConfig {
    /// Number of clusters (= number of inverted lists, the paper's `N`).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop early when the relative inertia improvement between iterations
    /// falls below this threshold.
    pub tolerance: f64,
    /// Seed for k-means++ initialization.
    pub seed: u64,
    /// Imbalance control: when `> 0`, each Lloyd iteration reseats the
    /// centroids of the smallest clusters onto the farthest members of
    /// clusters whose population exceeds `balance_factor ×` the mean count,
    /// splitting hot cells so no inverted list dominates tail latency at
    /// 10k+ lists. `0.0` disables rebalancing (plain Lloyd).
    #[serde(default)]
    pub balance_factor: f64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 256,
            max_iters: 25,
            tolerance: 1e-4,
            seed: 0x5EED,
            balance_factor: 0.0,
        }
    }
}

impl KmeansConfig {
    /// Creates a config with `k` clusters and defaults elsewhere.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

/// A trained k-means model: the centroid table used as the IVF coarse
/// quantizer.
///
/// # Example
///
/// ```
/// use jdvs_vector::{Vector, kmeans::{Kmeans, KmeansConfig}};
///
/// let data: Vec<Vector> = (0..64)
///     .map(|i| Vector::from(vec![if i % 2 == 0 { 0.0 } else { 10.0 }, i as f32 * 1e-3]))
///     .collect();
/// let model = Kmeans::train(&data, &KmeansConfig { k: 2, ..Default::default() });
/// let a = model.assign(data[0].as_slice());
/// let b = model.assign(data[2].as_slice());
/// assert_eq!(a, b, "points in the same blob share a cluster");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kmeans {
    centroids: Vec<Vector>,
    dim: usize,
    inertia: f64,
    iterations: usize,
    /// Optional hierarchical coarse index over the centroids. Derived data:
    /// rebuilt deterministically from the centroid table, never required for
    /// correctness — absent, assignment falls back to the flat scan.
    #[serde(default)]
    coarse: Option<CentroidGraph>,
}

impl Kmeans {
    /// Trains a model on `data`.
    ///
    /// If `data.len() < k`, the effective `k` is reduced to `data.len()` —
    /// a tiny bootstrap catalog must still produce a valid (if degenerate)
    /// quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, if `config.k == 0`, or if vectors have
    /// inconsistent dimensions.
    pub fn train(data: &[Vector], config: &KmeansConfig) -> Self {
        assert!(!data.is_empty(), "cannot train k-means on empty data");
        assert!(config.k > 0, "k must be positive");
        let dim = data[0].dim();
        for v in data {
            assert_eq!(v.dim(), dim, "training vectors must share a dimension");
        }
        let k = config.k.min(data.len());
        let mut rng = Xoshiro256::seed_from(config.seed);
        let mut centroids = plus_plus_init(data, k, &mut rng);

        let mut assignments = vec![0usize; data.len()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0;
        for iter in 0..config.max_iters.max(1) {
            iterations = iter + 1;
            // Assignment step.
            let mut new_inertia = 0.0f64;
            for (i, v) in data.iter().enumerate() {
                let (best, d) = nearest(&centroids, v.as_slice());
                assignments[i] = best;
                new_inertia += d as f64;
            }
            // Update step.
            let mut sums = vec![Vector::zeros(dim); k];
            let mut counts = vec![0usize; k];
            for (v, &a) in data.iter().zip(&assignments) {
                sums[a].add_assign(v);
                counts[a] += 1;
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.clone();
                    c.scale(1.0 / *count as f32);
                }
            }
            repair_empty_clusters(data, &assignments, &mut centroids, &counts);
            if config.balance_factor > 0.0 {
                split_oversized_clusters(
                    data,
                    &assignments,
                    &mut centroids,
                    &mut counts,
                    config.balance_factor,
                );
            }

            let improved = inertia.is_infinite()
                || inertia == 0.0
                || (inertia - new_inertia) / inertia > config.tolerance;
            inertia = new_inertia;
            if !improved {
                break;
            }
        }
        Self {
            centroids,
            dim,
            inertia,
            iterations,
            coarse: None,
        }
    }

    /// Builds a model directly from pre-computed centroids (used when a
    /// searcher receives the quantizer trained by the full indexer).
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or dimensions are inconsistent.
    pub fn from_centroids(centroids: Vec<Vector>) -> Self {
        assert!(!centroids.is_empty(), "centroid table cannot be empty");
        let dim = centroids[0].dim();
        for c in &centroids {
            assert_eq!(c.dim(), dim, "centroids must share a dimension");
        }
        Self {
            centroids,
            dim,
            inertia: f64::NAN,
            iterations: 0,
            coarse: None,
        }
    }

    /// Enables the hierarchical coarse quantizer: builds (or, if already
    /// built, re-targets to `beam`) a [`CentroidGraph`] over the centroid
    /// table. Subsequent [`Kmeans::assign`] / [`Kmeans::assign_multi`] calls
    /// route through graph beam search with an effective beam of
    /// `max(beam, nprobe)`; a beam at or above `k` degenerates to the flat
    /// scan's exact output.
    ///
    /// # Panics
    ///
    /// Panics if `beam == 0` (use [`Kmeans::without_coarse_graph`] to
    /// disable).
    pub fn with_coarse_graph(mut self, beam: usize) -> Self {
        assert!(beam > 0, "beam width must be positive");
        match &mut self.coarse {
            Some(graph) => graph.set_beam(beam),
            None => self.coarse = Some(CentroidGraph::build(&self.centroids, beam)),
        }
        self
    }

    /// Drops the centroid graph; assignment reverts to the flat scan.
    pub fn without_coarse_graph(mut self) -> Self {
        self.coarse = None;
        self
    }

    /// Borrows the centroid graph, if enabled.
    pub fn coarse_graph(&self) -> Option<&CentroidGraph> {
        self.coarse.as_ref()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality of the training data.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Final within-cluster sum of squared distances (NaN for models built
    /// via [`Kmeans::from_centroids`]).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations actually executed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Borrows the centroid table.
    pub fn centroids(&self) -> &[Vector] {
        &self.centroids
    }

    /// Index of the nearest centroid to `v` — the inverted list an image
    /// with these features belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `v`'s dimension differs from the training dimension.
    pub fn assign(&self, v: &[f32]) -> usize {
        if let Some(graph) = &self.coarse {
            return graph.assign_one(&self.centroids, v);
        }
        nearest(&self.centroids, v).0
    }

    /// The `nprobe` nearest centroids to `v`, closest first. Searchers scan
    /// these lists (probing more than one list trades latency for recall).
    ///
    /// # Panics
    ///
    /// Panics if `nprobe == 0` or dimensions differ.
    pub fn assign_multi(&self, v: &[f32], nprobe: usize) -> Vec<usize> {
        let mut scratch = AssignScratch::default();
        let mut out = Vec::new();
        self.assign_multi_into(v, nprobe, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`Kmeans::assign_multi`]: writes the `nprobe` nearest
    /// centroid indices (closest first) into `out`, reusing `scratch` across
    /// calls. The serving hot path assigns once per query, so the per-call
    /// `Vec` churn of `assign_multi` is measurable at high QPS; with a
    /// warmed scratch this performs zero allocations.
    ///
    /// # Panics
    ///
    /// Panics if `nprobe == 0` or dimensions differ.
    pub fn assign_multi_into(
        &self,
        v: &[f32],
        nprobe: usize,
        scratch: &mut AssignScratch,
        out: &mut Vec<usize>,
    ) {
        assert!(nprobe > 0, "nprobe must be positive");
        if let Some(graph) = &self.coarse {
            graph.assign_into(&self.centroids, v, nprobe, &mut scratch.graph, out);
            return;
        }
        let candidates = &mut scratch.candidates;
        candidates.clear();
        for (i, c) in self.centroids.iter().enumerate() {
            candidates.push(crate::topk::Neighbor::new(
                i as u64,
                squared_l2(c.as_slice(), v),
            ));
        }
        let n = nprobe.min(candidates.len());
        // Same total order (distance, then id) as the TopK path, so the
        // selected cells and their order are identical.
        candidates.select_nth_unstable(n - 1);
        candidates.truncate(n);
        candidates.sort_unstable();
        out.clear();
        out.extend(candidates.iter().map(|c| c.id as usize));
    }
}

/// Reusable buffers for [`Kmeans::assign_multi_into`].
#[derive(Debug, Default, Clone)]
pub struct AssignScratch {
    candidates: Vec<crate::topk::Neighbor>,
    graph: GraphScratch,
}

fn nearest(centroids: &[Vector], v: &[f32]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_l2(c.as_slice(), v);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    (best, best_d)
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007): first centroid uniform,
/// each subsequent centroid sampled with probability proportional to the
/// squared distance to the nearest centroid chosen so far.
fn plus_plus_init(data: &[Vector], k: usize, rng: &mut Xoshiro256) -> Vec<Vector> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.next_index(data.len())].clone());
    let mut dists: Vec<f32> = data
        .iter()
        .map(|v| squared_l2(v.as_slice(), centroids[0].as_slice()))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            // All points coincide with existing centroids; fall back to
            // uniform choice so we still emit k centroids.
            rng.next_index(data.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        let c = data[chosen].clone();
        for (d, v) in dists.iter_mut().zip(data) {
            let nd = squared_l2(v.as_slice(), c.as_slice());
            if nd < *d {
                *d = nd;
            }
        }
        centroids.push(c);
    }
    centroids
}

/// Reseats empty clusters onto the point currently farthest from its own
/// centroid, so every inverted list stays usable.
fn repair_empty_clusters(
    data: &[Vector],
    assignments: &[usize],
    centroids: &mut [Vector],
    counts: &[usize],
) {
    for cluster in 0..centroids.len() {
        if counts[cluster] > 0 {
            continue;
        }
        let mut worst_idx = 0usize;
        let mut worst_d = -1.0f32;
        for (i, v) in data.iter().enumerate() {
            let d = squared_l2(v.as_slice(), centroids[assignments[i]].as_slice());
            if d > worst_d {
                worst_d = d;
                worst_idx = i;
            }
        }
        centroids[cluster] = data[worst_idx].clone();
    }
}

/// Imbalance-aware rebalancing: repeatedly reseats the centroid of the
/// smallest cluster onto the farthest member of the most oversized cluster
/// (population above `factor ×` the mean), approximately splitting the hot
/// cell in two. The next assignment step settles the real memberships; the
/// count bookkeeping here only steers which cells get split this pass.
/// Deterministic: all ties break toward the lower index.
fn split_oversized_clusters(
    data: &[Vector],
    assignments: &[usize],
    centroids: &mut [Vector],
    counts: &mut [usize],
    factor: f64,
) {
    let k = centroids.len();
    if k < 2 {
        return;
    }
    let mean = data.len() as f64 / k as f64;
    let cap = (factor * mean).ceil().max(1.0) as usize;
    for _ in 0..k {
        let (big, big_count) = counts
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
            .expect("k >= 2");
        if big_count <= cap {
            break;
        }
        let (small, small_count) = counts
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, c)| (c, i))
            .expect("k >= 2");
        if small == big || small_count * 2 >= big_count {
            // No donor meaningfully smaller than the hot cell: splitting
            // would just move the imbalance around.
            break;
        }
        let mut far_idx = None;
        let mut far_d = -1.0f32;
        for (i, v) in data.iter().enumerate() {
            if assignments[i] != big {
                continue;
            }
            let d = squared_l2(v.as_slice(), centroids[big].as_slice());
            if d > far_d {
                far_d = d;
                far_idx = Some(i);
            }
        }
        let Some(far_idx) = far_idx else { break };
        centroids[small] = data[far_idx].clone();
        counts[small] = big_count / 2;
        counts[big] = big_count - big_count / 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn blobs(n_per: usize, centers: &[[f32; 2]], seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut out = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                out.push(Vector::from(vec![
                    c[0] + rng.next_gaussian() as f32 * 0.1,
                    c[1] + rng.next_gaussian() as f32 * 0.1,
                ]));
            }
        }
        out
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = blobs(50, &[[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]], 1);
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 3,
                seed: 2,
                ..Default::default()
            },
        );
        // All members of a blob should land in the same cluster.
        for blob in 0..3 {
            let first = model.assign(data[blob * 50].as_slice());
            for i in 0..50 {
                assert_eq!(model.assign(data[blob * 50 + i].as_slice()), first);
            }
        }
        // And distinct blobs in distinct clusters.
        let a = model.assign(data[0].as_slice());
        let b = model.assign(data[50].as_slice());
        let c = model.assign(data[100].as_slice());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(30, &[[0.0, 0.0], [5.0, 5.0]], 7);
        let cfg = KmeansConfig {
            k: 2,
            seed: 11,
            ..Default::default()
        };
        let m1 = Kmeans::train(&data, &cfg);
        let m2 = Kmeans::train(&data, &cfg);
        assert_eq!(m1.centroids(), m2.centroids());
    }

    #[test]
    fn k_clamped_to_data_len() {
        let data = blobs(1, &[[0.0, 0.0], [1.0, 1.0]], 3);
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 100,
                ..Default::default()
            },
        );
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn assign_matches_brute_force_nearest() {
        let data = blobs(40, &[[0.0, 0.0], [3.0, 3.0], [6.0, 0.0]], 9);
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 5,
                seed: 4,
                ..Default::default()
            },
        );
        for v in &data {
            let assigned = model.assign(v.as_slice());
            let brute = model
                .centroids()
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    squared_l2(a.as_slice(), v.as_slice())
                        .partial_cmp(&squared_l2(b.as_slice(), v.as_slice()))
                        .unwrap()
                })
                .unwrap()
                .0;
            assert_eq!(assigned, brute);
        }
    }

    #[test]
    fn assign_multi_is_sorted_by_distance() {
        let data = blobs(40, &[[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]], 13);
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 3,
                seed: 5,
                ..Default::default()
            },
        );
        let probes = model.assign_multi(&[0.0, 0.0], 3);
        assert_eq!(probes.len(), 3);
        let d = |i: usize| squared_l2(model.centroids()[i].as_slice(), &[0.0, 0.0]);
        assert!(d(probes[0]) <= d(probes[1]));
        assert!(d(probes[1]) <= d(probes[2]));
        assert_eq!(probes[0], model.assign(&[0.0, 0.0]));
    }

    #[test]
    fn assign_multi_into_matches_assign_multi() {
        let data = blobs(40, &[[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]], 17);
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 6,
                seed: 3,
                ..Default::default()
            },
        );
        let mut scratch = AssignScratch::default();
        let mut out = Vec::new();
        for (i, q) in data.iter().enumerate().take(10) {
            for nprobe in [1usize, 3, 6, 99] {
                model.assign_multi_into(q.as_slice(), nprobe, &mut scratch, &mut out);
                assert_eq!(out, model.assign_multi(q.as_slice(), nprobe), "query {i}");
            }
        }
    }

    #[test]
    fn duplicate_points_still_yield_k_centroids() {
        let data = vec![Vector::from(vec![1.0, 1.0]); 20];
        let model = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 4,
                ..Default::default()
            },
        );
        assert_eq!(model.k(), 4);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs(50, &[[0.0, 0.0], [4.0, 4.0], [8.0, 0.0], [0.0, 8.0]], 21);
        let small = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 1,
                seed: 1,
                ..Default::default()
            },
        );
        let large = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 4,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(large.inertia() < small.inertia());
    }

    #[test]
    fn from_centroids_round_trip() {
        let cents = vec![Vector::from(vec![0.0, 0.0]), Vector::from(vec![1.0, 1.0])];
        let model = Kmeans::from_centroids(cents.clone());
        assert_eq!(model.k(), 2);
        assert_eq!(model.assign(&[0.9, 0.9]), 1);
        assert!(model.inertia().is_nan());
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        Kmeans::train(&[], &KmeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "nprobe must be positive")]
    fn zero_nprobe_panics() {
        let model = Kmeans::from_centroids(vec![Vector::from(vec![0.0])]);
        model.assign_multi(&[0.0], 0);
    }

    /// A skewed dataset: one dense blob plus scattered outliers, so plain
    /// Lloyd leaves one list holding almost everything.
    fn skewed(seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut out = Vec::new();
        for _ in 0..900 {
            out.push(Vector::from(vec![
                rng.next_gaussian() as f32 * 0.05,
                rng.next_gaussian() as f32 * 0.05,
            ]));
        }
        for _ in 0..100 {
            out.push(Vector::from(vec![
                rng.next_gaussian() as f32 * 20.0,
                rng.next_gaussian() as f32 * 20.0,
            ]));
        }
        out
    }

    fn max_list_population(model: &Kmeans, data: &[Vector]) -> usize {
        let mut counts = vec![0usize; model.k()];
        for v in data {
            counts[model.assign(v.as_slice())] += 1;
        }
        counts.into_iter().max().unwrap()
    }

    #[test]
    fn balance_factor_shrinks_hot_lists() {
        let data = skewed(77);
        let plain = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 16,
                seed: 6,
                ..Default::default()
            },
        );
        let balanced = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 16,
                seed: 6,
                balance_factor: 2.0,
                ..Default::default()
            },
        );
        let hot_plain = max_list_population(&plain, &data);
        let hot_balanced = max_list_population(&balanced, &data);
        assert!(
            hot_balanced < hot_plain,
            "balanced hot list {hot_balanced} should shrink below plain {hot_plain}"
        );
    }

    #[test]
    fn balanced_training_is_deterministic() {
        let data = skewed(78);
        let cfg = KmeansConfig {
            k: 8,
            seed: 12,
            balance_factor: 1.5,
            ..Default::default()
        };
        assert_eq!(
            Kmeans::train(&data, &cfg).centroids(),
            Kmeans::train(&data, &cfg).centroids()
        );
    }

    #[test]
    fn graph_assign_multi_exhaustive_matches_flat() {
        let data = blobs(60, &[[0.0, 0.0], [4.0, 4.0], [8.0, 0.0]], 91);
        let flat = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 12,
                seed: 9,
                ..Default::default()
            },
        );
        let graphed = flat.clone().with_coarse_graph(flat.k());
        let mut scratch = AssignScratch::default();
        let mut out = Vec::new();
        for q in data.iter().take(30) {
            for nprobe in [1usize, 3, 12, 40] {
                graphed.assign_multi_into(q.as_slice(), nprobe, &mut scratch, &mut out);
                assert_eq!(out, flat.assign_multi(q.as_slice(), nprobe));
            }
            assert_eq!(graphed.assign(q.as_slice()), flat.assign(q.as_slice()));
        }
    }

    #[test]
    fn coarse_graph_round_trips_through_enable_disable() {
        let data = blobs(40, &[[0.0, 0.0], [5.0, 5.0]], 93);
        let flat = Kmeans::train(
            &data,
            &KmeansConfig {
                k: 6,
                seed: 2,
                ..Default::default()
            },
        );
        let graphed = flat.clone().with_coarse_graph(4);
        assert_eq!(graphed.coarse_graph().map(|g| g.beam()), Some(4));
        let retargeted = graphed.clone().with_coarse_graph(8);
        assert_eq!(retargeted.coarse_graph().map(|g| g.beam()), Some(8));
        let back = graphed.without_coarse_graph();
        assert!(back.coarse_graph().is_none());
        assert_eq!(back, flat);
    }
}
