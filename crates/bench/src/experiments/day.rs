//! The production-day experiments: Table 1, Figure 11(a), Figure 11(b).
//!
//! One scaled day of catalog updates (Table 1 mix, Figure 11(a) hourly
//! curve) is replayed through a real-time indexer. Counts give Table 1 and
//! Fig. 11(a); per-event latency gives Fig. 11(b).
//!
//! Latency model for 11(b): the paper's per-update latencies (avg 132 ms,
//! p90 223 ms, p99 816 ms) are dominated by costs our in-process replay
//! does not physically pay — message-queue hops, feature-store round trips
//! and GPU feature extraction for the ~1.5% novel images. We therefore
//! charge a *virtual* cost per event (log-normal base ~90 ms plus an
//! extraction surcharge when the reuse check misses) on top of the real
//! measured apply time, and report the sum. DESIGN.md records this
//! substitution; the shape target is p99 ≫ p90 > avg with a peak-hour
//! thickening, which the model preserves.

use std::sync::Arc;
use std::time::Instant;

use jdvs_core::realtime::RealtimeIndexer;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_features::cost::CostModel;
use jdvs_features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
use jdvs_metrics::HourlySeries;
use jdvs_storage::{FeatureDb, ImageStore};
use jdvs_vector::rng::Xoshiro256;
use jdvs_workload::catalog::{Catalog, CatalogConfig};
use jdvs_workload::events::{DailyPlan, DailyPlanConfig, DayCounts};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 32;

/// Shared day-replay output.
pub struct DayRun {
    /// Counts from the generated plan.
    pub counts: DayCounts,
    /// Per-hour counts by kind (update/addition/deletion).
    pub hourly: [[u64; 3]; 24],
    /// Peak hour of the plan.
    pub peak_hour: usize,
    /// Per-hour synthetic apply-latency series.
    pub latency: HourlySeries,
    /// Fresh feature extractions performed.
    pub extractions: u64,
    /// Additions served by the reuse path (revalidation, no extraction).
    pub reuses: u64,
    /// Wall-clock of the replay itself.
    pub wall: std::time::Duration,
}

/// Builds the catalog, generates the day, replays it through a real-time
/// indexer, and measures.
pub fn run_day(ctx: &Ctx) -> DayRun {
    let total_events = ctx.scaled(20_000, 500);
    let num_products = total_events.max(1_000);
    let images = Arc::new(ImageStore::with_blob_len(64));
    let feature_db = Arc::new(FeatureDb::new());
    let extractor = Arc::new(CachingExtractor::new(
        FeatureExtractor::new(ExtractorConfig {
            dim: DIM,
            ..Default::default()
        }),
        CostModel::free(),
    ));
    let mut catalog = Catalog::generate(&CatalogConfig {
        num_products,
        num_clusters: 100,
        ..Default::default()
    });
    catalog.materialize(&images);

    // Bootstrap: extract features for a training sample, build the index,
    // bulk-load the catalog (the weekly full index's output), then delist
    // the plan's pre-delisted slice so re-listings exercise revalidation.
    let mut training = Vec::new();
    for product in catalog.products().iter().take(2_000) {
        for attrs in product.image_attributes() {
            let (f, _) = extractor.features_for(&attrs, &images, &feature_db);
            training.push(f.expect("materialized image"));
        }
    }
    let index = Arc::new(VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 64,
            initial_list_capacity: 64,
            ..Default::default()
        },
        &training,
    ));
    let indexer = RealtimeIndexer::for_index(
        Arc::clone(&index),
        Arc::clone(&extractor),
        Arc::clone(&images),
        Arc::clone(&feature_db),
    );
    for event in catalog.bootstrap_events() {
        indexer.apply(&event);
    }
    index.flush();

    let plan = DailyPlan::generate(
        &mut catalog,
        &images,
        &DailyPlanConfig {
            total_events,
            ..Default::default()
        },
    );
    for pid in plan.predelisted() {
        if let Some(product) = catalog.products().iter().find(|p| p.id == *pid) {
            indexer.apply(&product.remove_event());
        }
    }
    // Pre-day state set; reset measurement baselines.
    let extractions_before = extractor.misses();

    // Virtual latency model (see module docs).
    let base_cost = CostModel::virtual_time(
        jdvs_features::cost::CostDistribution::LogNormal {
            median: std::time::Duration::from_millis(90),
            sigma: 0.85,
        },
        7,
    );
    let extract_cost = CostModel::virtual_time(
        jdvs_features::cost::CostDistribution::LogNormal {
            median: std::time::Duration::from_millis(400),
            sigma: 0.5,
        },
        8,
    );
    let mut peak_rng = Xoshiro256::seed_from(99);

    let latency = HourlySeries::new();
    let mut reuses = 0u64;
    let t0 = Instant::now();
    for te in plan.events() {
        let misses_before = extractor.misses();
        let start = Instant::now();
        let report = indexer.apply(&te.event);
        let real = start.elapsed();
        reuses += report.revalidated;
        let extracted = extractor.misses() > misses_before;
        let mut synthetic = real + base_cost.sample();
        if extracted {
            synthetic += extract_cost.sample();
        }
        // Peak-hour congestion: the paper's 11(b) latencies thicken around
        // the rate peak; emulate queueing pressure proportional to the
        // hour's load.
        let load = jdvs_workload::events::FIG11A_HOURLY_WEIGHTS[te.hour] / 80.0;
        if peak_rng.next_bool(load * 0.25) {
            synthetic += base_cost.sample().mul_f64(load);
        }
        latency.record(
            te.hour,
            synthetic.as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }
    index.flush();
    let wall = t0.elapsed();

    DayRun {
        counts: plan.counts(),
        hourly: plan.hourly_counts(),
        peak_hour: plan.peak_hour(),
        latency,
        extractions: extractor.misses() - extractions_before,
        reuses,
        wall,
    }
}

/// Table 1: number of image updates by type.
pub fn table1(ctx: &Ctx) -> ExperimentResult {
    let run = run_day(ctx);
    let mut r = ExperimentResult::new(
        "table1",
        "Number of image updates on the simulated day (scaled)",
        "Table 1: total 977 M = 315 M updates + 521 M additions (513 M re-listed) + 141 M deletions",
    );
    let c = run.counts;
    let scale_note = c.total as f64 / 977e6;
    r.push_row(row![
        "kind" => "total", "count" => c.total,
        "share_%" => "100.0",
        "paper_share_%" => "100.0",
    ]);
    for (kind, count, paper_share) in [
        ("attribute_update", c.updates, 315.0 / 977.0),
        ("image_addition", c.additions, 521.0 / 977.0),
        ("addition_relisted", c.relists, 513.0 / 977.0),
        ("image_deletion", c.deletions, 141.0 / 977.0),
    ] {
        r.push_row(row![
            "kind" => kind,
            "count" => count,
            "share_%" => format!("{:.1}", 100.0 * count as f64 / c.total as f64),
            "paper_share_%" => format!("{:.1}", 100.0 * paper_share),
        ]);
    }
    r.note(format!("scale factor vs paper day: {scale_note:.2e}"));
    r.note(format!(
        "feature extractions during replay: {} (reuses: {}) — re-listings avoid re-extraction",
        run.extractions, run.reuses
    ));
    r.note(format!("replay wall time: {:?}", run.wall));
    r
}

/// Figure 11(a): hourly rate of real-time index updates by type.
pub fn fig11a(ctx: &Ctx) -> ExperimentResult {
    let run = run_day(ctx);
    let mut r = ExperimentResult::new(
        "fig11a",
        "Hourly rate of real-time index updates (scaled)",
        "Figure 11(a): night trough, morning ramp, ~80 M/h peak at 11:00",
    );
    for (h, counts) in run.hourly.iter().enumerate() {
        let total: u64 = counts.iter().sum();
        r.push_row(row![
            "hour" => h,
            "update" => counts[0],
            "addition" => counts[1],
            "deletion" => counts[2],
            "total" => total,
        ]);
    }
    r.note(format!("peak hour: {}:00 (paper: 11:00)", run.peak_hour));
    r
}

/// Figure 11(b): per-hour latency of real-time index updates.
pub fn fig11b(ctx: &Ctx) -> ExperimentResult {
    let run = run_day(ctx);
    let mut r = ExperimentResult::new(
        "fig11b",
        "Latency of real-time index updates by hour (virtual cost model)",
        "Figure 11(b): 24h average 132 ms, p90 223 ms, p99 816 ms",
    );
    for (h, (mean, p90, p99)) in run.latency.latency_stats().iter().enumerate() {
        if run.latency.hour_histogram(h).count() == 0 {
            continue;
        }
        r.push_row(row![
            "hour" => h,
            "avg_ms" => format!("{:.1}", mean / 1e3),
            "p90_ms" => format!("{:.1}", *p90 as f64 / 1e3),
            "p99_ms" => format!("{:.1}", *p99 as f64 / 1e3),
        ]);
    }
    let day = run.latency.day_histogram();
    r.note(format!(
        "24h: avg {:.0} ms (paper 132), p90 {:.0} ms (paper 223), p99 {:.0} ms (paper 816)",
        day.mean_us() / 1e3,
        day.percentile_us(0.90) as f64 / 1e3,
        day.percentile_us(0.99) as f64 / 1e3,
    ));
    r.note("latencies = measured apply time + virtual queue/extraction costs (see module docs)");
    r
}
