//! Retry policy: bounded rotations with jittered exponential backoff.
//!
//! A [`RetryPolicy`] controls how a [`crate::balancer::Balancer`] spends a
//! call's **total** deadline budget: how many passes it makes over the
//! replica set and how long it pauses between passes. The pause grows
//! exponentially and is randomly *shortened* by up to `jitter` of itself,
//! so synchronized callers retrying into a recovering node fan out in time
//! instead of stampeding it.
//!
//! The policy is pure configuration — it holds no clock and no RNG. The
//! caller supplies the random unit sample, which keeps backoff math
//! deterministic and directly testable.

use std::time::Duration;

/// Retry/backoff configuration for failover calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total passes over the replica set (minimum 1 — the initial pass).
    pub max_rotations: u32,
    /// Backoff before the second pass; doubles every pass after that.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff pause.
    pub max_backoff: Duration,
    /// Fraction of the pause randomly removed, in `[0, 1]`. `0.5` means a
    /// pause is uniformly in `[pause/2, pause]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_rotations: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// One pass over the replicas, no pauses — the pre-resilience behaviour.
    pub fn no_retry() -> Self {
        Self {
            max_rotations: 1,
            ..Self::default()
        }
    }

    /// The pause before pass `rotation` (1-based: `rotation == 1` is the
    /// pause before the *second* pass). `unit` is a random sample in
    /// `[0, 1)` supplied by the caller.
    pub fn backoff(&self, rotation: u32, unit: f64) -> Duration {
        if rotation == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let doublings = rotation.saturating_sub(1).min(31);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0) * unit.clamp(0.0, 1.0);
        raw.mul_f64(1.0 - jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_allows_one_retry_rotation() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_rotations, 2);
        assert!(p.base_backoff > Duration::ZERO);
    }

    #[test]
    fn no_retry_is_a_single_rotation() {
        assert_eq!(RetryPolicy::no_retry().max_rotations, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_rotations: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(1, 0.9), Duration::from_millis(10));
        assert_eq!(p.backoff(2, 0.9), Duration::from_millis(20));
        assert_eq!(p.backoff(3, 0.9), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff(9, 0.9), Duration::from_millis(35));
    }

    #[test]
    fn jitter_only_shortens() {
        let p = RetryPolicy {
            max_rotations: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
        };
        let full = p.backoff(1, 0.0);
        assert_eq!(full, Duration::from_millis(100));
        let jittered = p.backoff(1, 1.0);
        assert!(jittered >= Duration::from_millis(49) && jittered <= full);
        for i in 0..10 {
            let u = i as f64 / 10.0;
            let b = p.backoff(1, u);
            assert!(b <= full && b >= Duration::from_millis(50) - Duration::from_millis(1));
        }
    }

    #[test]
    fn rotation_zero_and_zero_base_pause_nothing() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0, 0.5), Duration::ZERO);
        let z = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..p
        };
        assert_eq!(z.backoff(3, 0.5), Duration::ZERO);
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        let p = RetryPolicy {
            max_rotations: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(10),
            jitter: 5.0, // clamped to 1.0
        };
        assert_eq!(
            p.backoff(1, 2.0),
            Duration::ZERO,
            "full jitter removes the whole pause"
        );
        assert_eq!(p.backoff(1, -1.0), Duration::from_millis(10));
    }

    #[test]
    fn deep_rotations_do_not_overflow() {
        let p = RetryPolicy {
            max_rotations: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
        };
        assert_eq!(p.backoff(u32::MAX, 0.0), Duration::from_secs(1));
    }
}
