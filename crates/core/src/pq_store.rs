//! Compressed-vector scan mode (product quantization).
//!
//! The paper's searchers scan raw feature vectors; its related work cites
//! product quantization (Jégou et al., ref \[19\]) as the standard way to
//! shrink the scan-side memory footprint at 100 B-image scale: a `d`-dim
//! `f32` vector (4·d bytes) becomes `m` one-byte codes. [`PqStore`] is the
//! drop-in compressed companion of [`crate::vectors::VectorStore`]: slot
//! `i` holds image `i`'s PQ code, written once and scanned lock-free via
//! per-query ADC tables.
//!
//! The `ablate-pq` experiment quantifies the trade: memory shrinks by
//! `4·d/m`, distances become approximate (recall dips), scan gets
//! cheaper per candidate for large `d`.

use parking_lot::RwLock;
use std::sync::{Arc, OnceLock};

use jdvs_vector::pq::{AdcTable, ProductQuantizer};
use jdvs_vector::Vector;

use crate::ids::ImageId;

/// Codes per chunk.
const CHUNK_CODES: usize = 4096;

struct Chunk {
    slots: Box<[OnceLock<Box<[u8]>>]>,
}

impl Chunk {
    fn new() -> Self {
        let mut v = Vec::with_capacity(CHUNK_CODES);
        v.resize_with(CHUNK_CODES, OnceLock::new);
        Self {
            slots: v.into_boxed_slice(),
        }
    }
}

/// Append-only store of PQ codes aligned with forward-index ids.
pub struct PqStore {
    quantizer: Arc<ProductQuantizer>,
    chunks: RwLock<Vec<Arc<Chunk>>>,
}

impl std::fmt::Debug for PqStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqStore")
            .field("subspaces", &self.quantizer.num_subspaces())
            .field("chunks", &self.chunks.read().len())
            .finish()
    }
}

impl PqStore {
    /// Creates a store over a trained quantizer.
    pub fn new(quantizer: Arc<ProductQuantizer>) -> Self {
        Self {
            quantizer,
            chunks: RwLock::new(Vec::new()),
        }
    }

    /// The underlying quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.quantizer
    }

    /// Bytes per stored vector.
    pub fn code_len(&self) -> usize {
        self.quantizer.num_subspaces()
    }

    /// Encodes and stores `vector` in slot `id` (write-once; later writes
    /// to the same slot are ignored, mirroring the vector store).
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from the quantizer's.
    pub fn put(&self, id: ImageId, vector: &Vector) {
        let code = self.quantizer.encode(vector.as_slice()).into_boxed_slice();
        let chunk_idx = id.as_usize() / CHUNK_CODES;
        {
            let chunks = self.chunks.read();
            if chunks.len() <= chunk_idx {
                drop(chunks);
                let mut chunks = self.chunks.write();
                while chunks.len() <= chunk_idx {
                    chunks.push(Arc::new(Chunk::new()));
                }
            }
        }
        let chunks = self.chunks.read();
        let _ = chunks[chunk_idx].slots[id.as_usize() % CHUNK_CODES].set(code);
    }

    /// Builds the per-query ADC table.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s dimension differs from the quantizer's.
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        self.quantizer.adc_table(query)
    }

    /// Approximate squared distance from the tabled query to slot `id`
    /// (`None` if the slot was never written).
    pub fn distance(&self, table: &AdcTable, id: ImageId) -> Option<f32> {
        let chunk_idx = id.as_usize() / CHUNK_CODES;
        let chunks = self.chunks.read();
        let chunk = Arc::clone(chunks.get(chunk_idx)?);
        drop(chunks);
        chunk.slots[id.as_usize() % CHUNK_CODES]
            .get()
            .map(|code| table.distance(code))
    }

    /// Scans every written code in id order, calling `f(id, distance)` —
    /// the bulk path: chunks are pinned once per 4096 candidates instead
    /// of per candidate.
    pub fn scan(&self, table: &AdcTable, mut f: impl FnMut(ImageId, f32)) {
        let chunks: Vec<Arc<Chunk>> = self.chunks.read().iter().map(Arc::clone).collect();
        for (ci, chunk) in chunks.iter().enumerate() {
            for (si, slot) in chunk.slots.iter().enumerate() {
                if let Some(code) = slot.get() {
                    f(
                        ImageId((ci * CHUNK_CODES + si) as u32),
                        table.distance(code),
                    );
                }
            }
        }
    }

    /// Reconstructs the approximate vector stored at `id`.
    pub fn decode(&self, id: ImageId) -> Option<Vector> {
        let chunk_idx = id.as_usize() / CHUNK_CODES;
        let chunks = self.chunks.read();
        let chunk = Arc::clone(chunks.get(chunk_idx)?);
        drop(chunks);
        chunk.slots[id.as_usize() % CHUNK_CODES]
            .get()
            .map(|code| self.quantizer.decode(code))
    }

    /// Approximate heap bytes used per stored vector (codes only).
    pub fn bytes_per_vector(&self) -> usize {
        self.code_len()
    }

    /// Pins every chunk once and returns a snapshot whose `code` is a pure
    /// pointer chase — mirrors [`crate::vectors::VectorStore::snapshot`]
    /// for the compressed scan path.
    pub fn snapshot(&self) -> PqSnapshot {
        PqSnapshot {
            chunks: self.chunks.read().iter().map(Arc::clone).collect(),
        }
    }
}

/// A pinned, lock-free view of a [`PqStore`]; see [`PqStore::snapshot`].
pub struct PqSnapshot {
    chunks: Vec<Arc<Chunk>>,
}

impl std::fmt::Debug for PqSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqSnapshot")
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

impl PqSnapshot {
    /// Borrows the PQ code in slot `id`, if written.
    #[inline]
    pub fn code(&self, id: ImageId) -> Option<&[u8]> {
        self.chunks.get(id.as_usize() / CHUNK_CODES)?.slots[id.as_usize() % CHUNK_CODES]
            .get()
            .map(|code| &**code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_vector::pq::PqConfig;
    use jdvs_vector::rng::Xoshiro256;

    fn trained(dim: usize, m: usize) -> (Arc<ProductQuantizer>, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(4);
        let data: Vec<Vector> = (0..400)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: m,
                max_iters: 6,
                seed: 1,
            },
        );
        (Arc::new(pq), data)
    }

    #[test]
    fn put_then_distance_round_trip() {
        let (pq, data) = trained(16, 4);
        let store = PqStore::new(pq);
        for (i, v) in data.iter().take(50).enumerate() {
            store.put(ImageId(i as u32), v);
        }
        let table = store.adc_table(data[0].as_slice());
        let d_self = store.distance(&table, ImageId(0)).unwrap();
        let d_other = store.distance(&table, ImageId(25)).unwrap();
        assert!(
            d_self < d_other,
            "self-distance {d_self} must beat {d_other}"
        );
        assert!(store.distance(&table, ImageId(9_999)).is_none());
    }

    #[test]
    fn decode_approximates_original() {
        let (pq, data) = trained(16, 8);
        let store = PqStore::new(pq);
        store.put(ImageId(0), &data[0]);
        let approx = store.decode(ImageId(0)).unwrap();
        let err = jdvs_vector::distance::squared_l2(approx.as_slice(), data[0].as_slice());
        let base = data[0].squared_norm();
        assert!(err < base, "reconstruction beats the origin baseline");
        assert!(store.decode(ImageId(1)).is_none());
    }

    #[test]
    fn slots_are_write_once() {
        let (pq, data) = trained(8, 2);
        let store = PqStore::new(pq);
        store.put(ImageId(0), &data[0]);
        store.put(ImageId(0), &data[1]);
        let decoded = store.decode(ImageId(0)).unwrap();
        let d0 = jdvs_vector::distance::squared_l2(decoded.as_slice(), data[0].as_slice());
        let d1 = jdvs_vector::distance::squared_l2(decoded.as_slice(), data[1].as_slice());
        assert!(d0 <= d1, "first write wins");
    }

    #[test]
    fn compression_ratio_is_as_advertised() {
        let (pq, _) = trained(32, 8);
        let store = PqStore::new(pq);
        assert_eq!(store.bytes_per_vector(), 8);
        assert_eq!(store.code_len(), 8);
        // Raw storage would be 32 * 4 = 128 bytes: 16x compression.
    }

    #[test]
    fn scan_visits_every_written_slot() {
        let (pq, data) = trained(8, 2);
        let store = PqStore::new(pq);
        for (i, v) in data.iter().take(40).enumerate() {
            store.put(ImageId(i as u32 * 3), v); // sparse ids
        }
        let table = store.adc_table(data[0].as_slice());
        let mut seen = Vec::new();
        store.scan(&table, |id, d| {
            assert_eq!(Some(d), store.distance(&table, id));
            seen.push(id.0);
        });
        assert_eq!(seen, (0..40u32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn spans_chunks() {
        let (pq, data) = trained(8, 2);
        let store = PqStore::new(pq);
        let far = ImageId((CHUNK_CODES * 2 + 3) as u32);
        store.put(far, &data[0]);
        assert!(store.decode(far).is_some());
    }

    #[test]
    fn snapshot_codes_match_store_distances() {
        let (pq, data) = trained(8, 2);
        let store = PqStore::new(pq);
        for (i, v) in data.iter().take(20).enumerate() {
            store.put(ImageId(i as u32), v);
        }
        let table = store.adc_table(data[0].as_slice());
        let snap = store.snapshot();
        for i in 0..20u32 {
            let code = snap.code(ImageId(i)).unwrap();
            assert_eq!(
                Some(table.distance(code)),
                store.distance(&table, ImageId(i))
            );
        }
        assert!(snap.code(ImageId(999)).is_none());
    }
}
