//! The front-end load balancer.
//!
//! Figure 1's entry point: *"a front end (i.e., load balancer) forwards the
//! query to one of the blenders."* [`Balancer`] round-robins over a set of
//! equivalent [`NodeHandle`]s and fails over: if the chosen node is down or
//! the call errors, the next replica is tried, up to one full rotation —
//! which is what makes "multiple identical instances for load balancing and
//! fault tolerance" actually tolerate faults.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::node::NodeHandle;
use crate::rpc::{RpcError, Service};

/// Round-robin balancer with failover over identical nodes.
pub struct Balancer<S: Service> {
    targets: Vec<NodeHandle<S>>,
    next: AtomicUsize,
}

impl<S: Service> std::fmt::Debug for Balancer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer").field("targets", &self.targets.len()).finish()
    }
}

impl<S: Service> Balancer<S> {
    /// Creates a balancer over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<NodeHandle<S>>) -> Self {
        assert!(!targets.is_empty(), "balancer needs at least one target");
        Self { targets, next: AtomicUsize::new(0) }
    }

    /// Number of backend nodes.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// Calls one backend, rotating through replicas on failure. Requests
    /// are cloned per attempt, hence the `Clone` bound.
    ///
    /// # Errors
    ///
    /// Returns the **last** error if every replica fails.
    pub fn call(&self, request: S::Request, deadline: Duration) -> Result<S::Response, RpcError>
    where
        S::Request: Clone,
    {
        let n = self.targets.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last_err = RpcError::NodeDown;
        for i in 0..n {
            let target = &self.targets[(start + i) % n];
            if target.is_down() {
                last_err = RpcError::NodeDown;
                continue;
            }
            match target.call(request.clone(), deadline) {
                Ok(resp) => return Ok(resp),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// The backend that the next call would try first (for tests/metrics).
    pub fn peek_next(&self) -> &NodeHandle<S> {
        &self.targets[self.next.load(Ordering::Relaxed) % self.targets.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use std::sync::atomic::AtomicU64;

    struct Tagged(u64);
    impl Service for Tagged {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            self.0
        }
    }

    struct Counting(AtomicU64);
    impl Service for Counting {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            self.0.fetch_add(1, Ordering::Relaxed)
        }
    }

    const DL: Duration = Duration::from_secs(5);

    #[test]
    fn round_robin_rotates_over_targets() {
        let nodes: Vec<_> = (0..3).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        let got: Vec<u64> = (0..6).map(|_| lb.call((), DL).unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(lb.num_targets(), 3);
    }

    #[test]
    fn failover_skips_downed_node() {
        let nodes: Vec<_> = (0..3).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        nodes[1].faults().set_down(true);
        let got: Vec<u64> = (0..4).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(!got.contains(&1), "downed node must be skipped: {got:?}");
    }

    #[test]
    fn all_down_returns_error() {
        let nodes: Vec<_> = (0..2).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        for n in &nodes {
            n.faults().set_down(true);
        }
        assert_eq!(lb.call((), DL), Err(RpcError::NodeDown));
    }

    #[test]
    fn recovery_restores_rotation() {
        let nodes: Vec<_> = (0..2).map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1)).collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        nodes[0].faults().set_down(true);
        assert_eq!(lb.call((), DL).unwrap(), 1);
        nodes[0].faults().set_down(false);
        let got: Vec<u64> = (0..4).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(got.contains(&0), "recovered node serves again: {got:?}");
    }

    #[test]
    fn dropped_requests_fail_over() {
        let flaky = Node::spawn("flaky", Counting(AtomicU64::new(0)), 1);
        let solid = Node::spawn("solid", Counting(AtomicU64::new(1000)), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::new(vec![flaky.handle(), solid.handle()]);
        for _ in 0..5 {
            let v = lb.call((), DL).unwrap();
            assert!(v >= 1000, "only the solid node can answer: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panics() {
        Balancer::<Tagged>::new(vec![]);
    }
}
