//! A bounded, thread-safe LRU cache.
//!
//! Substrate for the blender's query-feature cache: viral query images
//! repeat (shared screenshots, trending products), and re-extracting the
//! same photo wastes the most expensive step of the query path. A small
//! LRU in front of extraction captures that repetition.
//!
//! Implementation: a `HashMap` keyed store plus a monotonic recency stamp
//! per entry; eviction removes the stalest entry. O(capacity) eviction
//! scan — fine for the few-thousand-entry caches used here, with no
//! unsafe linked-list machinery.

use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::Mutex;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LruStats {
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl LruStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    stamp: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    clock: u64,
    stats: LruStats,
}

/// A bounded LRU cache; see the module docs.
///
/// # Example
///
/// ```
/// use jdvs_storage::lru::LruCache;
///
/// let cache: LruCache<&str, u32> = LruCache::new(2);
/// cache.put("a", 1);
/// cache.put("b", 2);
/// assert_eq!(cache.get(&"a"), Some(1)); // refreshes "a"
/// cache.put("c", 3);                    // evicts "b" (stalest)
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.get(&"a"), Some(1));
/// ```
pub struct LruCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: usize,
}

impl<K, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LruCache")
            .field("len", &inner.map.len())
            .field("capacity", &self.capacity)
            .field("stats", &inner.stats)
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity + 1),
                clock: 0,
                stats: LruStats::default(),
            }),
            capacity,
        }
    }

    /// Fetches a value, refreshing its recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let v = entry.value.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a value, evicting the stalest entry if full.
    pub fn put(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(key, Entry { value, stamp });
        if inner.map.len() > self.capacity {
            if let Some(stale) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&stale);
                inner.stats.evictions += 1;
            }
        }
    }

    /// Fetches or computes-and-caches.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = make();
        self.put(key, v.clone());
        v
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of hit/miss/eviction counters.
    pub fn stats(&self) -> LruStats {
        self.inner.lock().stats
    }

    /// Drops every entry (stats are kept).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_put_get() {
        let cache = LruCache::new(4);
        cache.put(1, "one");
        assert_eq!(cache.get(&1), Some("one"));
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = LruCache::new(3);
        cache.put(1, 1);
        cache.put(2, 2);
        cache.put(3, 3);
        cache.get(&1); // 2 is now stalest
        cache.put(4, 4);
        assert_eq!(cache.get(&2), None, "2 evicted");
        assert_eq!(cache.get(&1), Some(1));
        assert_eq!(cache.get(&3), Some(3));
        assert_eq!(cache.get(&4), Some(4));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn put_refreshes_recency() {
        let cache = LruCache::new(2);
        cache.put(1, 1);
        cache.put(2, 2);
        cache.put(1, 10); // refresh 1; 2 becomes stalest
        cache.put(3, 3);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), None);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = LruCache::new(2);
        cache.put("k", 1);
        cache.get(&"k");
        cache.get(&"k");
        cache.get(&"absent");
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_of_untouched_cache_is_zero() {
        let cache: LruCache<u8, u8> = LruCache::new(1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.is_empty());
    }

    #[test]
    fn get_or_insert_with_computes_once() {
        let cache = LruCache::new(2);
        let mut calls = 0;
        let v = cache.get_or_insert_with(5, || {
            calls += 1;
            50
        });
        assert_eq!(v, 50);
        let v = cache.get_or_insert_with(5, || {
            calls += 1;
            99
        });
        assert_eq!(v, 50);
        assert_eq!(calls, 1);
    }

    #[test]
    fn clear_empties_but_keeps_stats() {
        let cache = LruCache::new(2);
        cache.put(1, 1);
        cache.get(&1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        LruCache::<u8, u8>::new(0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(LruCache::new(64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        cache.put(t * 1_000 + i, i);
                        cache.get(&(t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
        assert!(cache.stats().hits > 0);
    }
}
