//! Product quantization (Jégou, Douze & Schmid 2011 — the paper's ref \[19\]).
//!
//! The production JD system scans inverted lists over raw features; at
//! 100 B images the memory footprint makes compressed codes attractive, and
//! the paper cites PQ as the established technique. We provide it as the
//! searcher's optional compressed-scan mode and as an ablation subject: a
//! `d`-dimensional vector is split into `m` subspaces, each quantized by its
//! own 256-entry codebook, so a vector costs `m` bytes instead of `4·d`.
//!
//! Queries use asymmetric distance computation (ADC): a per-query lookup
//! table of squared distances from each query sub-vector to every codeword,
//! after which scanning a code is `m` table lookups and adds.

use serde::{Deserialize, Serialize};

use crate::distance::squared_l2;
use crate::kmeans::{Kmeans, KmeansConfig};
use crate::vector::Vector;

/// Number of codewords per 8-bit sub-quantizer (one byte per sub-code).
pub const CODEBOOK_SIZE: usize = 256;

/// Number of codewords per 4-bit sub-quantizer (one nibble per sub-code —
/// the fast-scan mode, where a whole 16-entry LUT fits in one SIMD
/// register).
pub const CODEBOOK_SIZE_4BIT: usize = 16;

/// Codes per fast-scan block (mirrors
/// [`crate::simd::FASTSCAN_LANES`]): one AVX2/NEON table-lookup pass
/// computes this many quantized distances.
pub const FASTSCAN_BLOCK: usize = crate::simd::FASTSCAN_LANES;

/// Configuration for [`ProductQuantizer::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PqConfig {
    /// Number of subspaces `m`; must divide the vector dimension.
    pub num_subspaces: usize,
    /// Lloyd iterations per sub-quantizer.
    pub max_iters: usize,
    /// Training seed.
    pub seed: u64,
    /// Bits per sub-code: `8` (256-word codebooks, one byte per sub) or
    /// `4` (16-word codebooks, one nibble per sub — enables the fast-scan
    /// kernels).
    pub bits: u8,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            num_subspaces: 8,
            max_iters: 15,
            seed: 0xC0DE,
            bits: 8,
        }
    }
}

/// A trained product quantizer.
///
/// # Example
///
/// ```
/// use jdvs_vector::{Vector, pq::{ProductQuantizer, PqConfig}};
/// use jdvs_vector::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(1);
/// let data: Vec<Vector> = (0..300)
///     .map(|_| (0..8).map(|_| rng.next_gaussian() as f32).collect())
///     .collect();
/// let pq = ProductQuantizer::train(&data, &PqConfig { num_subspaces: 4, ..Default::default() });
/// let code = pq.encode(data[0].as_slice());
/// assert_eq!(code.len(), 4);
/// let approx = pq.decode(&code);
/// assert_eq!(approx.dim(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    sub_dim: usize,
    /// Bits per sub-code (4 or 8); decides the codebook size `2^bits`.
    bits: u8,
    // One k-means model per subspace, each over `sub_dim`-dimensional data.
    codebooks: Vec<Kmeans>,
}

impl ProductQuantizer {
    /// Trains one `2^bits`-word codebook per subspace on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `config.num_subspaces` is zero or does not
    /// divide the vector dimension, `config.bits` is neither 4 nor 8, or
    /// vectors have inconsistent dimensions.
    pub fn train(data: &[Vector], config: &PqConfig) -> Self {
        assert!(!data.is_empty(), "cannot train PQ on empty data");
        let dim = data[0].dim();
        let m = config.num_subspaces;
        assert!(m > 0, "num_subspaces must be positive");
        assert!(
            config.bits == 4 || config.bits == 8,
            "pq bits must be 4 or 8, got {}",
            config.bits
        );
        assert_eq!(
            dim % m,
            0,
            "num_subspaces ({m}) must divide dimension ({dim})"
        );
        let sub_dim = dim / m;
        let mut codebooks = Vec::with_capacity(m);
        for sub in 0..m {
            let slice_data: Vec<Vector> = data
                .iter()
                .map(|v| Vector::from(&v.as_slice()[sub * sub_dim..(sub + 1) * sub_dim]))
                .collect();
            let cfg = KmeansConfig {
                k: 1usize << config.bits,
                max_iters: config.max_iters,
                tolerance: 1e-4,
                seed: config.seed.wrapping_add(sub as u64),
                balance_factor: 0.0,
            };
            codebooks.push(Kmeans::train(&slice_data, &cfg));
        }
        Self {
            dim,
            sub_dim,
            bits: config.bits,
            codebooks,
        }
    }

    /// Original vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces `m` (= sub-codes per encoded vector).
    pub fn num_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Bits per sub-code: 8 (classic ADC) or 4 (fast-scan).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Codewords per sub-quantizer (`2^bits`).
    pub fn ksub(&self) -> usize {
        1usize << self.bits
    }

    /// Encodes `v` into `m` one-byte codes.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "encode dimension mismatch");
        self.codebooks
            .iter()
            .enumerate()
            .map(|(sub, cb)| cb.assign(&v[sub * self.sub_dim..(sub + 1) * self.sub_dim]) as u8)
            .collect()
    }

    /// Reconstructs the approximate vector for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.num_subspaces()`.
    pub fn decode(&self, code: &[u8]) -> Vector {
        assert_eq!(
            code.len(),
            self.num_subspaces(),
            "decode code-length mismatch"
        );
        let mut out = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            let centroid = &self.codebooks[sub].centroids()[c as usize % self.codebooks[sub].k()];
            out.extend_from_slice(centroid.as_slice());
        }
        Vector::from(out)
    }

    /// Builds the per-query ADC table: entry `sub * 256 + word` is the
    /// squared distance between the query's `sub`-th sub-vector and codeword
    /// `word`. Rows are stored **flattened and contiguous** so the SIMD
    /// gather kernel can index the whole table from one base pointer.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let m = self.num_subspaces();
        let mut flat = vec![f32::INFINITY; m * CODEBOOK_SIZE];
        for (sub, cb) in self.codebooks.iter().enumerate() {
            let q = &query[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let row = &mut flat[sub * CODEBOOK_SIZE..(sub + 1) * CODEBOOK_SIZE];
            for (w, centroid) in cb.centroids().iter().enumerate() {
                row[w] = squared_l2(q, centroid.as_slice());
            }
        }
        AdcTable { flat, m }
    }

    /// Builds the quantized u8 ADC table for the fast-scan kernels; see
    /// [`QuantizedAdcTable`]. Only meaningful in 4-bit mode.
    ///
    /// # Panics
    ///
    /// Panics if `self.bits() != 4` or `query.len() != self.dim()`.
    pub fn quantized_adc_table(&self, query: &[f32]) -> QuantizedAdcTable {
        assert_eq!(self.bits, 4, "fast-scan LUTs require 4-bit codes");
        QuantizedAdcTable::from_table(&self.adc_table(query))
    }
}

/// Asymmetric-distance lookup table for one query; see
/// [`ProductQuantizer::adc_table`].
#[derive(Debug, Clone)]
pub struct AdcTable {
    /// Row-major `m × 256` distance entries.
    flat: Vec<f32>,
    m: usize,
}

impl AdcTable {
    /// Approximate squared L2 distance between the query and the vector
    /// encoded as `code` (SIMD-dispatched table lookup).
    ///
    /// # Panics
    ///
    /// Panics if `code.len()` differs from the number of subspaces.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        assert_eq!(code.len(), self.m, "code length mismatch");
        crate::simd::active().adc(code, &self.flat)
    }

    /// Number of subspaces `m`.
    pub fn num_subspaces(&self) -> usize {
        self.m
    }

    /// The flattened `m × 256` row-major table (for custom scan kernels and
    /// differential tests).
    pub fn flat(&self) -> &[f32] {
        &self.flat
    }
}

/// Per-query u8 lookup tables for the 4-bit fast-scan kernels.
///
/// The f32 ADC rows are affinely rescaled so every entry fits a byte and a
/// whole distance fits a u16 accumulator:
///
/// - per subspace `s`, the finite row minimum `min_s` is subtracted and
///   folded into one query-global `bias = Σ_s min_s`;
/// - one global step `delta = max_s (max_s - min_s) / 255` scales every
///   row, so `lut[s][w] = round((t[s][w] - min_s) / delta)` is in
///   `0..=255` and `Σ_s lut[s][code_s] ≤ m · 255 ≤ 65535` for `m ≤ 257`
///   (no u16 saturation in practice; the kernels still saturate
///   defensively).
///
/// A quantized distance `q` maps back as `bias + delta · q`; the rounding
/// error is at most `delta / 2` per subspace, i.e. [`Self::error_bound`]
/// overall — which is why fast-scan results are re-ranked before serving.
#[derive(Debug, Clone)]
pub struct QuantizedAdcTable {
    /// Row-major `m × 16` u8 entries (row `s` is subspace `s`'s LUT).
    luts: Vec<u8>,
    bias: f32,
    delta: f32,
    m: usize,
}

impl QuantizedAdcTable {
    /// Quantizes the first [`CODEBOOK_SIZE_4BIT`] entries of each f32 row.
    ///
    /// Entries that are `INFINITY` (codewords beyond the trained codebook)
    /// clamp to 255; codes never reference them.
    pub fn from_table(table: &AdcTable) -> Self {
        let m = table.num_subspaces();
        let flat = table.flat();
        let mut mins = Vec::with_capacity(m);
        let mut max_range = 0.0f32;
        for sub in 0..m {
            let row = &flat[sub * CODEBOOK_SIZE..sub * CODEBOOK_SIZE + CODEBOOK_SIZE_4BIT];
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &t in row {
                if t.is_finite() {
                    min = min.min(t);
                    max = max.max(t);
                }
            }
            // A row with no finite entry cannot be produced by a trained
            // quantizer (k-means always emits ≥ 1 centroid); guard anyway.
            if !min.is_finite() {
                min = 0.0;
                max = 0.0;
            }
            max_range = max_range.max(max - min);
            mins.push(min);
        }
        // delta == 0 means every LUT entry quantizes to 0 and distances
        // collapse to `bias` exactly; keep it positive so `to_f32` stays
        // finite and the error bound is 0-ish rather than NaN.
        let delta = if max_range > 0.0 {
            max_range / 255.0
        } else {
            1.0
        };
        let mut luts = vec![0u8; m * CODEBOOK_SIZE_4BIT];
        for sub in 0..m {
            let row = &flat[sub * CODEBOOK_SIZE..sub * CODEBOOK_SIZE + CODEBOOK_SIZE_4BIT];
            let out = &mut luts[sub * CODEBOOK_SIZE_4BIT..(sub + 1) * CODEBOOK_SIZE_4BIT];
            for (o, &t) in out.iter_mut().zip(row) {
                *o = if t.is_finite() {
                    (((t - mins[sub]) / delta).round()).clamp(0.0, 255.0) as u8
                } else {
                    255
                };
            }
        }
        Self {
            luts,
            bias: mins.iter().sum(),
            delta,
            m,
        }
    }

    /// The flattened `m × 16` u8 LUTs (kernel input).
    pub fn luts(&self) -> &[u8] {
        &self.luts
    }

    /// Number of subspaces `m`.
    pub fn num_subspaces(&self) -> usize {
        self.m
    }

    /// Maps a kernel's u16 accumulator back to an approximate squared
    /// distance.
    #[inline]
    pub fn to_f32(&self, q: u16) -> f32 {
        self.bias + self.delta * f32::from(q)
    }

    /// Largest accumulator value whose [`Self::to_f32`] distance is still
    /// `<= threshold` — i.e. could pass a [`crate::topk::TopK::would_accept`]
    /// test — or `None` if no accumulator can. `to_f32` is monotone
    /// nondecreasing in the accumulator (`delta` is always positive), so a
    /// block scan may skip every lane above the bound without changing its
    /// candidate set: those lanes provably fail `would_accept`. Lanes at or
    /// below the bound still go through the exact `to_f32`/`would_accept`
    /// path, so pruning being conservative costs nothing but a compare.
    ///
    /// The closed-form estimate is corrected against `to_f32`'s actual f32
    /// rounding by walking to the exact edge (at most a couple of steps).
    pub fn prune_bound(&self, threshold: f32) -> Option<u16> {
        if threshold == f32::INFINITY {
            return Some(u16::MAX);
        }
        if threshold.is_nan() {
            // A NaN k-th distance rejects everything (`d <= NaN` is false).
            return None;
        }
        let est = (f64::from(threshold) - f64::from(self.bias)) / f64::from(self.delta);
        let mut q = est.clamp(0.0, f64::from(u16::MAX)) as u16;
        while q < u16::MAX && self.to_f32(q + 1) <= threshold {
            q += 1;
        }
        while self.to_f32(q) > threshold {
            if q == 0 {
                return None;
            }
            q -= 1;
        }
        Some(q)
    }

    /// Quantized distance of one unpacked code (sub-code values `0..16`) —
    /// the per-id scalar twin of the block kernels. Accumulates with
    /// saturating u16 adds in subspace order, exactly like
    /// [`crate::simd::KernelSet::fastscan16`], so per-id and block paths
    /// are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.num_subspaces()`.
    #[inline]
    pub fn distance(&self, code: &[u8]) -> f32 {
        assert_eq!(code.len(), self.m, "code length mismatch");
        let mut acc = 0u16;
        for (sub, &c) in code.iter().enumerate() {
            acc = acc.saturating_add(u16::from(
                self.luts[sub * CODEBOOK_SIZE_4BIT + (c & 0x0f) as usize],
            ));
        }
        self.to_f32(acc)
    }

    /// Worst-case absolute error of a quantized distance vs the f32 ADC
    /// table it came from (`m · delta / 2` rounding slack).
    pub fn error_bound(&self) -> f32 {
        0.5 * self.m as f32 * self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect()
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let data = random_data(400, 16, 5);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 4,
                ..Default::default()
            },
        );
        let mut err = 0.0f64;
        let mut base = 0.0f64;
        for v in data.iter().take(100) {
            let approx = pq.decode(&pq.encode(v.as_slice()));
            err += squared_l2(v.as_slice(), approx.as_slice()) as f64;
            base += v.squared_norm() as f64; // error of quantizing to origin
        }
        assert!(
            err < base * 0.5,
            "PQ reconstruction ({err}) should beat origin baseline ({base})"
        );
    }

    #[test]
    fn adc_matches_decoded_distance() {
        let data = random_data(300, 8, 6);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        let query = &data[0];
        let table = pq.adc_table(query.as_slice());
        for v in data.iter().take(50) {
            let code = pq.encode(v.as_slice());
            let adc = table.distance(&code);
            let exact = squared_l2(query.as_slice(), pq.decode(&code).as_slice());
            assert!((adc - exact).abs() < 1e-3, "adc {adc} vs decoded {exact}");
        }
    }

    #[test]
    fn adc_preserves_neighbor_ordering_roughly() {
        // With well-separated clusters, ADC must rank the same-cluster point
        // closer than a far-cluster point.
        let mut data = Vec::new();
        let mut rng = Xoshiro256::seed_from(8);
        for c in [0.0f32, 50.0] {
            for _ in 0..200 {
                data.push(Vector::from(vec![
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                    c + rng.next_gaussian() as f32,
                ]));
            }
        }
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        let table = pq.adc_table(data[0].as_slice());
        let near = table.distance(&pq.encode(data[1].as_slice()));
        let far = table.distance(&pq.encode(data[250].as_slice()));
        assert!(near < far);
    }

    #[test]
    fn code_length_equals_subspaces() {
        let data = random_data(300, 12, 7);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 3,
                ..Default::default()
            },
        );
        assert_eq!(pq.encode(data[0].as_slice()).len(), 3);
        assert_eq!(pq.num_subspaces(), 3);
        assert_eq!(pq.dim(), 12);
    }

    #[test]
    #[should_panic(expected = "must divide dimension")]
    fn indivisible_subspaces_panic() {
        let data = random_data(10, 10, 1);
        ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 3,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "encode dimension mismatch")]
    fn encode_wrong_dim_panics() {
        let data = random_data(50, 8, 2);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        pq.encode(&[0.0; 4]);
    }

    #[test]
    fn four_bit_codes_stay_in_nibble_range() {
        let data = random_data(300, 16, 11);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 4,
                bits: 4,
                ..Default::default()
            },
        );
        assert_eq!(pq.bits(), 4);
        assert_eq!(pq.ksub(), 16);
        for v in data.iter().take(50) {
            assert!(pq.encode(v.as_slice()).iter().all(|&c| c < 16));
        }
    }

    #[test]
    fn quantized_table_tracks_f32_table_within_bound() {
        let data = random_data(400, 16, 12);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 8,
                bits: 4,
                ..Default::default()
            },
        );
        let query = &data[3];
        let exact = pq.adc_table(query.as_slice());
        let quant = pq.quantized_adc_table(query.as_slice());
        let bound = quant.error_bound() + 1e-3;
        for v in data.iter().take(100) {
            let code = pq.encode(v.as_slice());
            let d_exact = exact.distance(&code);
            let d_quant = quant.distance(&code);
            assert!(
                (d_exact - d_quant).abs() <= bound,
                "quantized {d_quant} vs exact {d_exact}, bound {bound}"
            );
        }
    }

    #[test]
    fn quantized_table_matches_block_kernel_bit_exactly() {
        // Pack 32 codes the fast-scan way and check the per-id scalar twin
        // against the dispatched block kernel.
        let data = random_data(300, 8, 13);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 4,
                bits: 4,
                ..Default::default()
            },
        );
        let quant = pq.quantized_adc_table(data[0].as_slice());
        let m = pq.num_subspaces();
        let codes: Vec<Vec<u8>> = data
            .iter()
            .take(FASTSCAN_BLOCK)
            .map(|v| pq.encode(v.as_slice()))
            .collect();
        let mut block = vec![0u8; m * CODEBOOK_SIZE_4BIT];
        for (lane, code) in codes.iter().enumerate() {
            for (sub, &c) in code.iter().enumerate() {
                let byte = &mut block[sub * CODEBOOK_SIZE_4BIT + lane % CODEBOOK_SIZE_4BIT];
                *byte |= if lane < CODEBOOK_SIZE_4BIT { c } else { c << 4 };
            }
        }
        let mut acc = [0u16; FASTSCAN_BLOCK];
        crate::simd::active().fastscan16(&block, quant.luts(), &mut acc);
        for (lane, code) in codes.iter().enumerate() {
            assert_eq!(
                quant.to_f32(acc[lane]).to_bits(),
                quant.distance(code).to_bits(),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn prune_bound_is_the_exact_would_accept_edge() {
        // The contract the block-scan prune relies on: for every possible
        // accumulator q, `to_f32(q) <= threshold` ⇔ `q <= prune_bound`.
        let data = random_data(400, 16, 21);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 8,
                bits: 4,
                ..Default::default()
            },
        );
        let quant = pq.quantized_adc_table(data[7].as_slice());
        let mut thresholds: Vec<f32> = (0..40).map(|i| quant.to_f32((i * 1637) as u16)).collect();
        // Off-edge thresholds, the edges themselves, and the extremes.
        thresholds.extend((0..40).map(|i| quant.to_f32((i * 1637) as u16) + 1e-3));
        thresholds.extend([0.0, quant.to_f32(0), quant.to_f32(u16::MAX) + 1.0]);
        for thr in thresholds {
            let bound = quant.prune_bound(thr);
            // The edge itself: the bound passes, the next value fails.
            match bound {
                Some(b) => {
                    assert!(quant.to_f32(b) <= thr, "bound {b} fails at thr {thr}");
                    if b < u16::MAX {
                        assert!(quant.to_f32(b + 1) > thr, "bound {b} not maximal at {thr}");
                    }
                }
                None => assert!(quant.to_f32(0) > thr, "None but q=0 passes at {thr}"),
            }
            // Spot-check the equivalence across the whole range.
            for q in (0..=u16::MAX).step_by(251).chain([u16::MAX]) {
                let passes = quant.to_f32(q) <= thr;
                let kept = bound.is_some_and(|b| q <= b);
                assert_eq!(passes, kept, "thr {thr} q {q} bound {bound:?}");
            }
        }
        assert_eq!(quant.prune_bound(f32::INFINITY), Some(u16::MAX));
        assert_eq!(quant.prune_bound(f32::NAN), None);
        assert_eq!(quant.prune_bound(f32::NEG_INFINITY), None);
    }

    #[test]
    fn degenerate_identical_rows_quantize_to_bias() {
        // All codewords equidistant → delta clamps to 1.0 and every
        // quantized distance equals the bias exactly.
        let data: Vec<Vector> = (0..100).map(|_| Vector::from(vec![0.0f32; 8])).collect();
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                bits: 4,
                ..Default::default()
            },
        );
        let quant = pq.quantized_adc_table(&[1.0f32; 8]);
        let code = pq.encode(&[0.5f32; 8]);
        let exact = pq.adc_table(&[1.0f32; 8]).distance(&code);
        assert!((quant.distance(&code) - exact).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "fast-scan LUTs require 4-bit codes")]
    fn quantized_table_requires_4bit_mode() {
        let data = random_data(300, 8, 14);
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: 2,
                ..Default::default()
            },
        );
        pq.quantized_adc_table(data[0].as_slice());
    }

    #[test]
    fn training_is_deterministic() {
        let data = random_data(200, 8, 3);
        let cfg = PqConfig {
            num_subspaces: 2,
            ..Default::default()
        };
        let a = ProductQuantizer::train(&data, &cfg);
        let b = ProductQuantizer::train(&data, &cfg);
        assert_eq!(a.encode(data[5].as_slice()), b.encode(data[5].as_slice()));
    }
}
