//! The composed per-partition visual index.
//!
//! [`VisualIndex`] wires together every structure of Section 2 for one
//! index partition: the k-means coarse quantizer, the forward index and its
//! variable-length buffer, the feature-vector store, the validity bitmap,
//! the inverted lists, and the URL→id map that lets update/delete messages
//! (which carry URLs) find their records.
//!
//! Concurrency contract, matching the paper's deployment:
//!
//! - **one writer per partition** — the owning searcher applies catalog
//!   events serially;
//! - **any number of readers** — searches run concurrently with the writer
//!   and never block it (or each other).

use std::sync::Arc;

use jdvs_storage::model::{ImageKey, ProductAttributes};
use jdvs_storage::KvStore;
use jdvs_vector::kmeans::{Kmeans, KmeansConfig};
use jdvs_vector::pq::{PqConfig, ProductQuantizer};
use jdvs_vector::topk::Neighbor;
use jdvs_vector::Vector;

use crate::bitmap::AtomicBitmap;
use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::filter::{FilterIndex, FilterSpec};
use crate::forward::ForwardIndex;
use crate::ids::{ImageId, ListId};
use crate::inverted::InvertedIndex;
use crate::pq_store::PqStore;
use crate::search;
use crate::stats::IndexStats;
use crate::vectors::VectorStore;

/// Result of an upsert: what the index actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// A brand-new image was inserted under this id.
    Inserted(ImageId),
    /// The image was already indexed; its validity bit was set and its
    /// attributes refreshed (the paper's reuse path).
    Revalidated(ImageId),
}

impl UpsertOutcome {
    /// The image id in either case.
    pub fn id(self) -> ImageId {
        match self {
            UpsertOutcome::Inserted(id) | UpsertOutcome::Revalidated(id) => id,
        }
    }

    /// Returns `true` for the reuse path.
    pub fn reused(self) -> bool {
        matches!(self, UpsertOutcome::Revalidated(_))
    }
}

/// One partition's visual index; see the module docs.
#[derive(Debug)]
pub struct VisualIndex {
    config: IndexConfig,
    quantizer: Kmeans,
    forward: ForwardIndex,
    vectors: VectorStore,
    bitmap: AtomicBitmap,
    inverted: InvertedIndex,
    key_map: KvStore<ImageKey, ImageId>,
    stats: IndexStats,
    /// Compressed-code companion store (config.pq_subspaces).
    pq: Option<PqStore>,
    /// Per-attribute filter bitmaps (category, in-stock), maintained by
    /// every insert and re-listing for search-time pushdown.
    filters: FilterIndex,
}

impl VisualIndex {
    /// Builds an index whose coarse quantizer is trained on `training`
    /// feature vectors (at least one required; `config.num_lists` is
    /// clamped to the sample size by k-means).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid or `training` is empty / of the wrong
    /// dimension.
    pub fn bootstrap(config: IndexConfig, training: &[Vector]) -> Self {
        config.validate();
        assert!(
            !training.is_empty(),
            "quantizer training sample cannot be empty"
        );
        for t in training {
            assert_eq!(
                t.dim(),
                config.dim,
                "training vectors must match config.dim"
            );
        }
        let quantizer = Kmeans::train(
            training,
            &KmeansConfig {
                k: config.num_lists,
                max_iters: config.kmeans_iters,
                tolerance: 1e-4,
                seed: config.seed,
                balance_factor: config.coarse_balance_factor,
            },
        );
        let pq = config.pq_subspaces.map(|m| {
            Arc::new(ProductQuantizer::train(
                training,
                &PqConfig {
                    num_subspaces: m,
                    max_iters: config.kmeans_iters,
                    seed: config.seed ^ 0x90DE,
                    bits: config.pq_bits,
                },
            ))
        });
        Self::with_quantizers(config, quantizer, pq)
    }

    /// Builds an index around a pre-trained quantizer (the full indexer
    /// trains once and distributes the centroid table to partitions).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid, the quantizer dimension mismatches,
    /// or `config.pq_subspaces` is set (that mode needs a PQ codebook —
    /// use [`VisualIndex::with_quantizers`] or [`VisualIndex::bootstrap`]).
    pub fn with_quantizer(config: IndexConfig, quantizer: Kmeans) -> Self {
        assert!(
            config.pq_subspaces.is_none(),
            "pq mode requires a trained codebook: use with_quantizers or bootstrap"
        );
        Self::with_quantizers(config, quantizer, None)
    }

    /// Builds an index around pre-trained coarse and (optionally) product
    /// quantizers.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid, any quantizer dimension mismatches,
    /// or the PQ codebook's presence/shape disagrees with
    /// `config.pq_subspaces`.
    pub fn with_quantizers(
        config: IndexConfig,
        quantizer: Kmeans,
        pq_quantizer: Option<Arc<ProductQuantizer>>,
    ) -> Self {
        config.validate();
        assert_eq!(
            quantizer.dim(),
            config.dim,
            "quantizer dimension must match config.dim"
        );
        // The config is authoritative for the hierarchical coarse index: the
        // centroid graph is derived data, rebuilt deterministically from the
        // centroid table whenever absent (e.g. a quantizer deserialized from
        // a snapshot), re-targeted when the beam knob changed, and dropped
        // when disabled. A quantizer cloned from a sibling partition carries
        // its graph along, so splits/replicas skip the rebuild.
        let quantizer = if config.coarse_beam_width > 0 {
            quantizer.with_coarse_graph(config.coarse_beam_width)
        } else {
            quantizer.without_coarse_graph()
        };
        match (config.pq_subspaces, &pq_quantizer) {
            (None, None) => {}
            (Some(m), Some(pq)) => {
                assert_eq!(pq.dim(), config.dim, "pq dimension must match config.dim");
                assert_eq!(pq.num_subspaces(), m, "pq subspaces must match config");
                assert_eq!(pq.bits(), config.pq_bits, "pq bits must match config");
            }
            (Some(_), None) => panic!("config.pq_subspaces set but no codebook supplied"),
            (None, Some(_)) => panic!("codebook supplied but config.pq_subspaces unset"),
        }
        let num_lists = quantizer.k();
        let inverted = InvertedIndex::new(
            num_lists,
            config.initial_list_capacity,
            config.background_expansion,
        );
        Self {
            config,
            quantizer,
            forward: ForwardIndex::new(),
            vectors: VectorStore::new(),
            bitmap: AtomicBitmap::new(),
            inverted,
            key_map: KvStore::new(),
            stats: IndexStats::new(),
            pq: pq_quantizer.map(|q| PqStore::new(q, num_lists)),
            filters: FilterIndex::new(),
        }
    }

    /// Whether the compressed (PQ) scan mode is enabled.
    pub fn has_pq(&self) -> bool {
        self.pq.is_some()
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The coarse quantizer.
    pub fn quantizer(&self) -> &Kmeans {
        &self.quantizer
    }

    /// The shared PQ codebook, when compressed mode is enabled — for
    /// constructing sibling indexes with identical quantizers.
    pub fn pq_quantizer(&self) -> Option<Arc<ProductQuantizer>> {
        self.pq.as_ref().map(|s| s.quantizer_arc())
    }

    /// Operation statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Inverted-index internals (aux positions, expansion counts).
    pub fn inverted(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Total images ever inserted (including logically deleted ones).
    pub fn num_images(&self) -> usize {
        self.forward.len()
    }

    /// Images currently valid (searchable).
    pub fn valid_images(&self) -> usize {
        self.bitmap.count_ones()
    }

    /// Looks up the id previously assigned to an image URL hash.
    pub fn lookup(&self, key: ImageKey) -> Option<ImageId> {
        self.key_map.get(&key)
    }

    /// Whether `id` is currently valid.
    pub fn is_valid(&self, id: ImageId) -> bool {
        self.bitmap.test(id.as_usize())
    }

    /// Reads the attributes of `id` from the forward index.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownImage`] for out-of-range ids.
    pub fn attributes(&self, id: ImageId) -> Result<ProductAttributes, IndexError> {
        self.forward.attributes(id)
    }

    /// Reads the feature vector of `id`.
    pub fn features(&self, id: ImageId) -> Option<Vector> {
        self.vectors.get(id)
    }

    /// Inserts a brand-new image (Figure 8): appends the forward record
    /// (fixed fields + URL into the buffer), stores the vector, assigns the
    /// nearest-centroid inverted list and appends the id to its tail, sets
    /// the validity bit, and registers the URL mapping.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::DimensionMismatch`] for wrong-dimension
    /// features, or forwards forward-index errors.
    pub fn insert(
        &self,
        features: Vector,
        attrs: ProductAttributes,
    ) -> Result<ImageId, IndexError> {
        if features.dim() != self.config.dim {
            return Err(IndexError::DimensionMismatch {
                expected: self.config.dim,
                actual: features.dim(),
            });
        }
        let key = attrs.image_key();
        let list = ListId(self.quantizer.assign(features.as_slice()) as u32);
        let id = self.forward.append(&attrs)?;
        // The list position is the PQ code's storage key, so the inverted
        // append happens first; the id stays invisible to searches (and the
        // code tile's lane stays masked) until the bitmap bit below — which
        // is Release-ordered after both — flips on.
        let pos = self.inverted.append(list, id);
        if let Some(pq) = &self.pq {
            pq.put(id, list, pos, &features);
        }
        self.vectors.put(id, features);
        // Filter bits land before the validity bit so a filtered search
        // that sees the image also sees its category / stock membership.
        self.filters
            .note_listing(id, attrs.category, attrs.in_stock, None);
        self.bitmap.set(id.as_usize());
        self.key_map.put(key, id);
        self.stats.inserts.incr();
        Ok(id)
    }

    /// Inserts if the URL is new; revalidates (bitmap set + attribute
    /// refresh) if the image is already indexed — the paper's reuse path,
    /// where `features` need not be recomputed. `features` is only
    /// consulted on the insert path, so callers pass a closure and skip
    /// extraction entirely on reuse.
    ///
    /// # Errors
    ///
    /// Forwards [`VisualIndex::insert`] errors.
    pub fn upsert(
        &self,
        attrs: ProductAttributes,
        features: impl FnOnce() -> Option<Vector>,
    ) -> Result<UpsertOutcome, IndexError> {
        let key = attrs.image_key();
        if let Some(id) = self.key_map.get(&key) {
            // Reuse: no extraction, no index append — flip the bit back on
            // and refresh the attributes in place.
            let prev_category = self.forward.numeric(id).map(|n| n.category).ok();
            self.forward.update_numeric(
                id,
                Some(attrs.sales),
                Some(attrs.price),
                Some(attrs.praise),
            )?;
            self.forward
                .update_listing(id, attrs.category, attrs.in_stock)?;
            self.filters
                .note_listing(id, attrs.category, attrs.in_stock, prev_category);
            self.bitmap.set(id.as_usize());
            self.stats.reuses.incr();
            return Ok(UpsertOutcome::Revalidated(id));
        }
        let features = features().ok_or_else(|| IndexError::UnknownUrl(attrs.url.clone()))?;
        let id = self.insert(features, attrs)?;
        Ok(UpsertOutcome::Inserted(id))
    }

    /// Logically deletes an image by URL hash: one bitmap bit flips 1→0
    /// (Section 2.3 Deletion).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownUrl`] if the URL was never indexed.
    pub fn invalidate(&self, key: ImageKey, url: &str) -> Result<ImageId, IndexError> {
        let id = self
            .key_map
            .get(&key)
            .ok_or_else(|| IndexError::UnknownUrl(url.to_string()))?;
        self.bitmap.clear(id.as_usize());
        self.stats.deletions.incr();
        Ok(id)
    }

    /// Updates numeric attributes of the image behind `key` (Figure 7).
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::UnknownUrl`] if the URL was never indexed.
    pub fn update_numeric(
        &self,
        key: ImageKey,
        url: &str,
        sales: Option<u64>,
        price: Option<u64>,
        praise: Option<u64>,
    ) -> Result<ImageId, IndexError> {
        let id = self
            .key_map
            .get(&key)
            .ok_or_else(|| IndexError::UnknownUrl(url.to_string()))?;
        self.forward.update_numeric(id, sales, price, praise)?;
        self.stats.updates.incr();
        Ok(id)
    }

    /// Completes in-flight inverted-list expansions (call when the event
    /// stream idles so migration-window inserts become searchable).
    pub fn flush(&self) {
        self.inverted.flush();
    }

    /// ANN search: probes the `nprobe` nearest inverted lists and returns
    /// the `k` nearest *valid* images (Section 2.4).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `nprobe == 0`, or the query dimension is wrong.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::ann_search(self, query, k, nprobe)
    }

    /// Search with the configured default `nprobe`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the query dimension is wrong.
    pub fn search_default(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search(query, k, self.config.nprobe)
    }

    /// Two-stage compressed search (PQ mode): probes the `nprobe` nearest
    /// inverted lists scanning **PQ codes** via an ADC table, shortlists
    /// `k * rerank_factor` candidates, then reranks the shortlist with raw
    /// vectors. Scan memory traffic drops by `4·dim / m` at a small recall
    /// cost (the `ablate-pq` experiment quantifies it).
    ///
    /// # Panics
    ///
    /// Panics if PQ mode is disabled, `k == 0`, `nprobe == 0`,
    /// `rerank_factor == 0`, or the query dimension is wrong.
    pub fn search_compressed(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank_factor: usize,
    ) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::compressed_search(self, query, k, nprobe, rerank_factor)
    }

    /// Attribute-filtered ANN search: like [`VisualIndex::search`], but only
    /// images admitted by `filter` are returned. The constraints are pushed
    /// down into the block scan (bitmap lane masks resolve *before* the
    /// distance kernels run), and when the filtered scan cannot fill `k`
    /// results, probing widens up to
    /// [`crate::config::IndexConfig::nprobe_escalation`] lists. Results are
    /// bit-identical to scoring every valid candidate and post-filtering.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `nprobe == 0`, or the query dimension is wrong.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        filter: &FilterSpec,
    ) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::filtered_ann_search(self, query, k, nprobe, filter)
    }

    /// [`VisualIndex::search_filtered`] with a deadline budget: probe
    /// escalation stops when the remaining time cannot pay for another
    /// doubling round, returning the current (possibly underfull) top-k on
    /// time instead (see [`search::filtered_ann_search_with_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `nprobe == 0`, or the query dimension is wrong.
    pub fn search_filtered_with_budget(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        filter: &FilterSpec,
        deadline: Option<std::time::Instant>,
    ) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::filtered_ann_search_with_budget(self, query, k, nprobe, filter, deadline)
    }

    /// Attribute-filtered two-stage compressed search; the filtered twin of
    /// [`VisualIndex::search_compressed`] with the same pushdown and
    /// escalation behaviour as [`VisualIndex::search_filtered`].
    ///
    /// # Panics
    ///
    /// Panics if PQ mode is disabled, `k == 0`, `nprobe == 0`,
    /// `rerank_factor == 0`, or the query dimension is wrong.
    pub fn search_compressed_filtered(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank_factor: usize,
        filter: &FilterSpec,
    ) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::filtered_compressed_search(self, query, k, nprobe, rerank_factor, filter)
    }

    /// [`VisualIndex::search_compressed_filtered`] with a deadline budget;
    /// the compressed twin of [`VisualIndex::search_filtered_with_budget`].
    ///
    /// # Panics
    ///
    /// Panics if PQ mode is disabled, `k == 0`, `nprobe == 0`,
    /// `rerank_factor == 0`, or the query dimension is wrong.
    pub fn search_compressed_filtered_with_budget(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank_factor: usize,
        filter: &FilterSpec,
        deadline: Option<std::time::Instant>,
    ) -> Vec<Neighbor> {
        self.stats.searches.incr();
        search::filtered_compressed_search_with_budget(
            self,
            query,
            k,
            nprobe,
            rerank_factor,
            filter,
            deadline,
        )
    }

    /// Batched ANN search: executes co-arriving queries in one pass over
    /// the union of their probed lists (see
    /// [`search::multi_ann_search`]). Per-member results are bit-identical
    /// to [`VisualIndex::search`] with a single-threaded scan.
    ///
    /// # Panics
    ///
    /// Panics if any member has `k == 0`, `nprobe == 0`, or the wrong
    /// dimension.
    pub fn search_multi(&self, queries: &[search::MultiQuery<'_>]) -> Vec<Vec<Neighbor>> {
        self.stats.searches.add(queries.len() as u64);
        search::multi_ann_search(self, queries)
    }

    /// Batched two-stage compressed search (see
    /// [`search::multi_compressed_search`]): one fast-scan pass per probed
    /// list scores every subscribed member. Per-member results are
    /// bit-identical to [`VisualIndex::search_compressed`].
    ///
    /// # Panics
    ///
    /// Panics if PQ mode is disabled, `rerank_factor == 0`, or any member
    /// has `k == 0`, `nprobe == 0`, or the wrong dimension.
    pub fn search_compressed_multi(
        &self,
        queries: &[search::MultiQuery<'_>],
        rerank_factor: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.stats.searches.add(queries.len() as u64);
        search::multi_compressed_search(self, queries, rerank_factor)
    }

    /// Exhaustive exact search over all valid images (ground truth for
    /// recall measurement; not a serving path).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the query dimension is wrong.
    pub fn brute_force_search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        search::brute_force(self, query, k)
    }

    /// The per-attribute filter bitmaps (category / in-stock membership).
    pub fn filters(&self) -> &FilterIndex {
        &self.filters
    }

    pub(crate) fn bitmap(&self) -> &AtomicBitmap {
        &self.bitmap
    }

    pub(crate) fn vectors(&self) -> &VectorStore {
        &self.vectors
    }

    pub(crate) fn inverted_internal(&self) -> &InvertedIndex {
        &self.inverted
    }

    pub(crate) fn forward(&self) -> &ForwardIndex {
        &self.forward
    }

    pub(crate) fn pq_store(&self) -> Option<&PqStore> {
        self.pq.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_storage::model::ProductId;
    use jdvs_vector::rng::Xoshiro256;

    fn training(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect()
    }

    fn attrs(product: u64, url: &str) -> ProductAttributes {
        ProductAttributes::new(ProductId(product), 10, 999, 5, url.to_string())
    }

    fn small_index() -> VisualIndex {
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            initial_list_capacity: 4,
            nprobe: 4,
            ..Default::default()
        };
        VisualIndex::bootstrap(config, &training(64, 8, 1))
    }

    fn vec_of(seed: u64) -> Vector {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..8).map(|_| rng.next_gaussian() as f32).collect()
    }

    #[test]
    fn insert_then_search_finds_it() {
        let index = small_index();
        let v = vec_of(42);
        let id = index.insert(v.clone(), attrs(1, "u1")).unwrap();
        let hits = index.search(v.as_slice(), 1, 4);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id.as_u64());
        assert!(hits[0].distance < 1e-6);
        assert_eq!(index.num_images(), 1);
        assert_eq!(index.valid_images(), 1);
    }

    #[test]
    fn wrong_dimension_is_rejected() {
        let index = small_index();
        let err = index
            .insert(Vector::from(vec![1.0; 4]), attrs(1, "u1"))
            .unwrap_err();
        assert_eq!(
            err,
            IndexError::DimensionMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn invalidate_hides_from_search() {
        let index = small_index();
        let v = vec_of(7);
        let a = attrs(1, "u1");
        let key = a.image_key();
        index.insert(v.clone(), a).unwrap();
        assert_eq!(index.search(v.as_slice(), 1, 4).len(), 1);
        index.invalidate(key, "u1").unwrap();
        assert!(index.search(v.as_slice(), 1, 4).is_empty());
        assert_eq!(index.valid_images(), 0);
        assert_eq!(index.num_images(), 1, "forward index keeps the record");
    }

    #[test]
    fn upsert_new_then_reuse() {
        let index = small_index();
        let v = vec_of(9);
        let a = attrs(1, "u1");
        let key = a.image_key();
        let first = index.upsert(a.clone(), || Some(v.clone())).unwrap();
        assert!(matches!(first, UpsertOutcome::Inserted(_)));
        assert!(!first.reused());
        index.invalidate(key, "u1").unwrap();
        // Relist with updated attributes; closure must not be called.
        let relist = ProductAttributes::new(ProductId(1), 999, 777, 1, "u1".into());
        let second = index
            .upsert(relist, || {
                panic!("features must not be recomputed on reuse")
            })
            .unwrap();
        assert!(second.reused());
        assert_eq!(second.id(), first.id());
        assert!(index.is_valid(first.id()));
        let got = index.attributes(first.id()).unwrap();
        assert_eq!(got.sales, 999);
        assert_eq!(got.price, 777);
        assert_eq!(index.stats().reuses.get(), 1);
        assert_eq!(index.stats().inserts.get(), 1);
    }

    #[test]
    fn upsert_without_features_for_new_image_errors() {
        let index = small_index();
        let err = index.upsert(attrs(1, "new"), || None).unwrap_err();
        assert!(matches!(err, IndexError::UnknownUrl(_)));
    }

    #[test]
    fn update_numeric_by_key() {
        let index = small_index();
        let a = attrs(1, "u1");
        let key = a.image_key();
        let id = index.insert(vec_of(3), a).unwrap();
        index
            .update_numeric(key, "u1", Some(1_000), None, Some(42))
            .unwrap();
        let got = index.attributes(id).unwrap();
        assert_eq!(got.sales, 1_000);
        assert_eq!(got.price, 999, "unspecified unchanged");
        assert_eq!(got.praise, 42);
        assert_eq!(index.stats().updates.get(), 1);
    }

    #[test]
    fn update_unknown_url_errors() {
        let index = small_index();
        let err = index
            .update_numeric(ImageKey::from_url("nope"), "nope", Some(1), None, None)
            .unwrap_err();
        assert_eq!(err, IndexError::UnknownUrl("nope".into()));
        let err = index
            .invalidate(ImageKey::from_url("nope"), "nope")
            .unwrap_err();
        assert_eq!(err, IndexError::UnknownUrl("nope".into()));
    }

    #[test]
    fn search_matches_brute_force_with_full_probing() {
        let index = small_index();
        let mut rng = Xoshiro256::seed_from(11);
        for i in 0..200u64 {
            let v: Vector = (0..8).map(|_| rng.next_gaussian() as f32).collect();
            index.insert(v, attrs(i, &format!("u{i}"))).unwrap();
        }
        index.flush();
        let q = vec_of(99);
        // Probing every list makes IVF exact.
        let ann = index.search(q.as_slice(), 10, 4);
        let exact = index.brute_force_search(q.as_slice(), 10);
        assert_eq!(
            ann.iter().map(|n| n.id).collect::<Vec<_>>(),
            exact.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lookup_maps_urls_to_ids() {
        let index = small_index();
        let a = attrs(5, "u5");
        let key = a.image_key();
        let id = index.insert(vec_of(5), a).unwrap();
        assert_eq!(index.lookup(key), Some(id));
        assert_eq!(index.lookup(ImageKey::from_url("other")), None);
    }

    #[test]
    fn compressed_search_finds_exact_match_after_rerank() {
        let config = IndexConfig {
            dim: 8,
            num_lists: 4,
            nprobe: 4,
            pq_subspaces: Some(4),
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &training(256, 8, 21));
        assert!(index.has_pq());
        let mut rng = Xoshiro256::seed_from(33);
        let mut vectors = Vec::new();
        for i in 0..200u64 {
            let v: Vector = (0..8).map(|_| rng.next_gaussian() as f32).collect();
            index.insert(v.clone(), attrs(i, &format!("u{i}"))).unwrap();
            vectors.push(v);
        }
        index.flush();
        for (i, v) in vectors.iter().enumerate().step_by(23) {
            let hits = index.search_compressed(v.as_slice(), 1, 4, 8);
            assert_eq!(hits[0].id, i as u64, "rerank must surface the exact match");
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn compressed_recall_is_high_with_rerank() {
        let config = IndexConfig {
            dim: 16,
            num_lists: 8,
            nprobe: 8,
            pq_subspaces: Some(4),
            ..Default::default()
        };
        let train = training(512, 16, 5);
        let index = VisualIndex::bootstrap(config, &train);
        for (i, v) in train.iter().enumerate() {
            index
                .insert(v.clone(), attrs(i as u64, &format!("u{i}")))
                .unwrap();
        }
        index.flush();
        let mut total = 0.0;
        for v in train.iter().step_by(37) {
            let compressed = index.search_compressed(v.as_slice(), 10, 8, 4);
            let exact = index.brute_force_search(v.as_slice(), 10);
            total += crate::search::recall(&compressed, &exact);
        }
        let queries = train.iter().step_by(37).count() as f64;
        assert!(
            total / queries > 0.8,
            "rerank recall too low: {}",
            total / queries
        );
    }

    #[test]
    fn compressed_search_skips_deleted_images() {
        let config = IndexConfig {
            dim: 8,
            num_lists: 2,
            nprobe: 2,
            pq_subspaces: Some(2),
            ..Default::default()
        };
        let index = VisualIndex::bootstrap(config, &training(64, 8, 9));
        let v = vec_of(77);
        let a = attrs(1, "u1");
        let key = a.image_key();
        index.insert(v.clone(), a).unwrap();
        index.flush();
        assert_eq!(index.search_compressed(v.as_slice(), 1, 2, 2).len(), 1);
        index.invalidate(key, "u1").unwrap();
        assert!(index.search_compressed(v.as_slice(), 1, 2, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "compressed search requires config.pq_subspaces")]
    fn compressed_search_without_pq_panics() {
        let index = small_index();
        index.search_compressed(&[0.0; 8], 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "pq mode requires a trained codebook")]
    fn with_quantizer_rejects_pq_config() {
        let config = IndexConfig {
            dim: 8,
            pq_subspaces: Some(4),
            ..Default::default()
        };
        let q = Kmeans::from_centroids(vec![Vector::zeros(8)]);
        VisualIndex::with_quantizer(config, q);
    }

    #[test]
    fn stats_track_operations() {
        let index = small_index();
        let a = attrs(1, "u1");
        let key = a.image_key();
        index.insert(vec_of(1), a).unwrap();
        index
            .update_numeric(key, "u1", Some(1), None, None)
            .unwrap();
        index.invalidate(key, "u1").unwrap();
        index.search(vec_of(1).as_slice(), 1, 1);
        let s = index.stats();
        assert_eq!(s.inserts.get(), 1);
        assert_eq!(s.updates.get(), 1);
        assert_eq!(s.deletions.get(), 1);
        assert_eq!(s.searches.get(), 1);
        assert_eq!(s.total_mutations(), 3);
    }
}
