//! End-to-end searcher scan: the block execution engine against the
//! pre-engine per-id scan, with and without SIMD dispatch and intra-query
//! threads. The `searcher-scan` repro experiment records the same
//! comparison into `bench_results/`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jdvs_core::search;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_storage::model::{ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::Vector;

const DIM: usize = 64;
const N: usize = 10_000;
const K: usize = 10;
const NPROBE: usize = 16;

fn build_index() -> (VisualIndex, Vec<Vector>) {
    let mut rng = Xoshiro256::seed_from(0xBE7C);
    let data: Vec<Vector> = (0..N)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: 64,
            initial_list_capacity: 64,
            kmeans_iters: 4,
            ..Default::default()
        },
        &data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("b/u{i}")),
            )
            .expect("insert");
    }
    index.flush();
    (index, data)
}

fn bench_searcher_scan(c: &mut Criterion) {
    let (index, data) = build_index();
    let query = data[17].clone();
    let q = query.as_slice();

    let mut group = c.benchmark_group("searcher_scan");
    group.bench_function("scalar_per_id_baseline", |b| {
        b.iter(|| search::ann_search_scalar_baseline(&index, black_box(q), K, NPROBE))
    });
    group.bench_function("dispatched_per_id_reference", |b| {
        b.iter(|| search::ann_search_reference(&index, black_box(q), K, NPROBE))
    });
    group.bench_function("engine_1_thread", |b| {
        b.iter(|| search::ann_search_with_threads(&index, black_box(q), K, NPROBE, 1))
    });
    group.bench_function("engine_4_threads", |b| {
        b.iter(|| search::ann_search_with_threads(&index, black_box(q), K, NPROBE, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_searcher_scan);
criterion_main!(benches);
