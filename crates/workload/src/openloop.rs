//! The open-loop query driver (overload experiments).
//!
//! The closed-loop driver ([`crate::client`]) can never push a system past
//! saturation: each emulated user waits for a response before sending the
//! next query, so offered load self-throttles exactly when the system
//! slows down — the failure mode *coordinated omission* hides. Overload
//! experiments need the opposite: arrivals on a fixed schedule that does
//! not care how the system is doing, like real traffic. This driver
//! schedules arrival `n` at `start + n / rate` and issues it as close to
//! that instant as the worker pool allows, whether or not earlier requests
//! have completed. Driving `rate` past capacity is the whole point: a
//! well-behaved serving tier sheds the excess at admission (fast
//! `Overloaded` replies) and keeps goodput near capacity with bounded
//! latency for the requests it accepts.
//!
//! The driver is closure-driven so it can front anything callable — the
//! in-process [`jdvs_search::SearchClient`], a
//! [`jdvs_net::TcpChannel`]-backed network client, or a stub in tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jdvs_metrics::histogram::{Histogram, SharedHistogram};
use serde::{Deserialize, Serialize};

/// How one open-loop request ended, as classified by the caller's closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenLoopOutcome {
    /// The request was admitted and answered (counts toward goodput).
    Accepted,
    /// The request was deliberately rejected by admission control
    /// (`Overloaded`) — the system protecting itself, not a fault.
    Shed,
    /// The request failed or timed out.
    Failed,
}

/// Open-loop run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// Arrival rate in requests per second.
    pub rate: f64,
    /// Length of the arrival schedule.
    pub duration: Duration,
    /// Worker threads issuing the scheduled arrivals. Size this above
    /// `rate × worst-case latency`, or arrivals queue behind slow calls
    /// and show up in [`OpenLoopReport::late`].
    pub workers: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            rate: 200.0,
            duration: Duration::from_secs(2),
            workers: 16,
        }
    }
}

/// The outcome of one open-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpenLoopReport {
    /// Arrivals the schedule offered (every one was issued).
    pub offered: u64,
    /// Requests admitted and answered.
    pub accepted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that failed or timed out.
    pub failed: u64,
    /// Arrivals issued more than 1 ms behind schedule (worker pool fell
    /// behind; the run is still open-loop but the offered rate sagged).
    pub late: u64,
    /// Wall clock from first scheduled arrival to last completion.
    pub elapsed: Duration,
    /// Latency distribution of accepted requests.
    pub accepted_latency: Histogram,
    /// Latency distribution of shed requests (should be fast: shedding
    /// that costs as much as serving defeats its purpose).
    pub shed_latency: Histogram,
}

impl OpenLoopReport {
    /// Accepted requests per second over the run (goodput).
    pub fn goodput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.accepted as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Offered requests per second over the run.
    pub fn offered_rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.offered as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of arrivals shed, in `[0, 1]`.
    pub fn shed_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "offered={:.0}/s goodput={:.0}/s shed={} failed={} late={} accepted[{}] shed[{}]",
            self.offered_rate(),
            self.goodput(),
            self.shed,
            self.failed,
            self.late,
            self.accepted_latency.summary(),
            self.shed_latency.summary(),
        )
    }
}

/// One point of an offered-load sweep: the rate that was offered and what
/// the system under test did with it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateSweepPoint {
    /// Offered arrival rate of this point (requests per second).
    pub rate: f64,
    /// The full open-loop report measured at that rate.
    pub report: OpenLoopReport,
}

/// Runs open-loop load; see the module docs.
#[derive(Debug)]
pub struct OpenLoopDriver;

impl OpenLoopDriver {
    /// Issues arrivals at `config.rate` for `config.duration`, calling
    /// `op` once per arrival from a pool of `config.workers` threads.
    /// `op` performs one request and classifies how it ended.
    ///
    /// # Panics
    ///
    /// Panics if `config.rate` is not positive-finite or
    /// `config.workers == 0`.
    pub fn run<F>(config: OpenLoopConfig, op: F) -> OpenLoopReport
    where
        F: Fn() -> OpenLoopOutcome + Sync,
    {
        assert!(
            config.rate.is_finite() && config.rate > 0.0,
            "rate must be positive"
        );
        assert!(config.workers > 0, "workers must be positive");
        let interval = Duration::from_secs_f64(1.0 / config.rate);
        let total = (config.duration.as_secs_f64() * config.rate).floor() as u64;
        let next = AtomicU64::new(0);
        let accepted = AtomicU64::new(0);
        let shed = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        let late = AtomicU64::new(0);
        let accepted_latency = Arc::new(SharedHistogram::new());
        let shed_latency = Arc::new(SharedHistogram::new());
        let start = Instant::now();

        crossbeam::thread::scope(|scope| {
            for _ in 0..config.workers {
                let op = &op;
                let next = &next;
                let accepted = &accepted;
                let shed = &shed;
                let failed = &failed;
                let late = &late;
                let accepted_latency = Arc::clone(&accepted_latency);
                let shed_latency = Arc::clone(&shed_latency);
                scope.spawn(move |_| loop {
                    // Claim the next slot of the global arrival schedule.
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    if n >= total {
                        return;
                    }
                    let due = start + interval.mul_f64(n as f64);
                    let now = Instant::now();
                    if now < due {
                        std::thread::sleep(due - now);
                    } else if now - due > Duration::from_millis(1) {
                        // All workers were busy when this arrival came due:
                        // issue it anyway (open loop), but record the sag.
                        late.fetch_add(1, Ordering::Relaxed);
                    }
                    let issued = Instant::now();
                    match op() {
                        OpenLoopOutcome::Accepted => {
                            accepted_latency.record(issued.elapsed());
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        OpenLoopOutcome::Shed => {
                            shed_latency.record(issued.elapsed());
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        OpenLoopOutcome::Failed => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .expect("open-loop scope");

        OpenLoopReport {
            offered: total,
            accepted: accepted.into_inner(),
            shed: shed.into_inner(),
            failed: failed.into_inner(),
            late: late.into_inner(),
            elapsed: start.elapsed(),
            accepted_latency: accepted_latency.snapshot(),
            shed_latency: shed_latency.snapshot(),
        }
    }

    /// Sweeps the offered rate across `rates`, running one open-loop pass
    /// per point with `base`'s duration and worker pool. The resulting
    /// goodput-vs-offered curve is the standard overload picture: goodput
    /// tracks the offered rate up to capacity, then plateaus while
    /// admission control sheds the excess.
    ///
    /// Points run in ascending-rate order exactly as given; the system
    /// under test keeps its state (warmed caches, pools) across points,
    /// matching how a real load test is driven.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not positive-finite or `base.workers == 0`.
    pub fn sweep<F>(rates: &[f64], base: OpenLoopConfig, op: F) -> Vec<RateSweepPoint>
    where
        F: Fn() -> OpenLoopOutcome + Sync,
    {
        rates
            .iter()
            .map(|&rate| RateSweepPoint {
                rate,
                report: Self::run(OpenLoopConfig { rate, ..base }, &op),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Calls;

    #[test]
    fn issues_every_scheduled_arrival() {
        let calls = Calls::new(0);
        let report = OpenLoopDriver::run(
            OpenLoopConfig {
                rate: 500.0,
                duration: Duration::from_millis(200),
                workers: 4,
            },
            || {
                calls.fetch_add(1, Ordering::Relaxed);
                OpenLoopOutcome::Accepted
            },
        );
        assert_eq!(report.offered, 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(report.accepted, 100);
        assert_eq!(report.accepted_latency.count(), 100);
        assert_eq!(report.shed + report.failed, 0);
        assert!(report.goodput() > 0.0);
    }

    #[test]
    fn classifies_outcomes_and_keeps_offering_under_slowness() {
        // A "server" that takes 5 ms per call and sheds every third
        // request: at 400/s with 2 workers the pool saturates (capacity
        // 2/5ms = 400/s exactly, minus scheduling overhead), yet every
        // arrival must still be issued — late, not dropped.
        let calls = Calls::new(0);
        let report = OpenLoopDriver::run(
            OpenLoopConfig {
                rate: 400.0,
                duration: Duration::from_millis(250),
                workers: 2,
            },
            || {
                let n = calls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
                if n % 3 == 2 {
                    OpenLoopOutcome::Shed
                } else {
                    OpenLoopOutcome::Failed
                }
            },
        );
        assert_eq!(report.offered, 100);
        assert_eq!(report.accepted, 0);
        assert_eq!(report.shed + report.failed, 100);
        assert!(report.shed >= 30, "roughly a third shed: {}", report.shed);
        assert_eq!(report.shed_latency.count(), report.shed);
        assert!(report.shed_ratio() > 0.25);
    }

    #[test]
    fn sweep_runs_every_rate_in_order() {
        let calls = Calls::new(0);
        let points = OpenLoopDriver::sweep(
            &[100.0, 300.0],
            OpenLoopConfig {
                duration: Duration::from_millis(100),
                workers: 4,
                ..Default::default()
            },
            || {
                calls.fetch_add(1, Ordering::Relaxed);
                OpenLoopOutcome::Accepted
            },
        );
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].rate, 100.0);
        assert_eq!(points[1].rate, 300.0);
        assert_eq!(points[0].report.offered, 10);
        assert_eq!(points[1].report.offered, 30);
        assert_eq!(calls.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn report_math() {
        let r = OpenLoopReport {
            offered: 200,
            accepted: 100,
            shed: 80,
            failed: 20,
            late: 0,
            elapsed: Duration::from_secs(2),
            accepted_latency: Histogram::new(),
            shed_latency: Histogram::new(),
        };
        assert!((r.goodput() - 50.0).abs() < 1e-9);
        assert!((r.offered_rate() - 100.0).abs() < 1e-9);
        assert!((r.shed_ratio() - 0.4).abs() < 1e-9);
        assert!(r.summary().contains("goodput=50"));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = OpenLoopDriver::run(
            OpenLoopConfig {
                rate: 0.0,
                ..Default::default()
            },
            || OpenLoopOutcome::Accepted,
        );
    }
}
