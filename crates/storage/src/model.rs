//! Shared domain schema.
//!
//! The whole pipeline speaks this vocabulary: products carry attributes and
//! one or more images; every catalog change is a [`ProductEvent`] flowing
//! through the message queue; images are addressed by URL, and the system
//! keys feature storage and index partitioning by a stable 64-bit hash of
//! that URL ([`ImageKey`]).

use serde::{Deserialize, Serialize};

/// A product's stable identifier (SKU id).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ProductId(pub u64);

impl std::fmt::Display for ProductId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sku-{}", self.0)
    }
}

/// Stable 64-bit key derived from an image URL (FNV-1a).
///
/// The paper hashes the image URL both to deduplicate feature extraction in
/// the KV store and to assign the image to an index partition; a single
/// stable hash serves both uses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ImageKey(pub u64);

impl ImageKey {
    /// Hashes an image URL with FNV-1a (stable across runs and platforms,
    /// unlike `std`'s randomized `DefaultHasher`).
    pub fn from_url(url: &str) -> Self {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in url.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        Self(h)
    }

    /// The partition (searcher shard) this image belongs to, out of
    /// `num_partitions` — the paper's "divides the entire image index data
    /// into multiple partitions by hashing the image's URL".
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions == 0`.
    pub fn partition(self, num_partitions: usize) -> usize {
        assert!(num_partitions > 0, "num_partitions must be positive");
        // Multiply-shift spreads low-entropy keys across partitions better
        // than a plain modulus.
        ((self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % num_partitions as u64) as usize
    }
}

impl std::fmt::Display for ImageKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "img-{:016x}", self.0)
    }
}

/// Numeric and variable-length product attributes stored in the forward
/// index and used for result ranking (Section 2.2: "product ID, sales,
/// prices and image URL are used to search and rank results").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductAttributes {
    /// Owning product.
    pub product_id: ProductId,
    /// Cumulative sales count.
    pub sales: u64,
    /// Price in minor currency units (fen).
    pub price: u64,
    /// Praise / positive-review count.
    pub praise: u64,
    /// Product category id (query constraints filter on this; `0` is the
    /// catch-all "uncategorized").
    pub category: u32,
    /// Whether the product is currently purchasable. Listings default to
    /// in-stock; a sold-out product stays searchable unless the query asks
    /// for in-stock only.
    pub in_stock: bool,
    /// The image's URL (variable-length attribute).
    pub url: String,
}

impl Default for ProductAttributes {
    fn default() -> Self {
        Self {
            product_id: ProductId::default(),
            sales: 0,
            price: 0,
            praise: 0,
            category: 0,
            in_stock: true,
            url: String::new(),
        }
    }
}

impl ProductAttributes {
    /// Convenience constructor (category 0, in stock).
    pub fn new(product_id: ProductId, sales: u64, price: u64, praise: u64, url: String) -> Self {
        Self {
            product_id,
            sales,
            price,
            praise,
            category: 0,
            in_stock: true,
            url,
        }
    }

    /// Sets the product category.
    pub fn with_category(mut self, category: u32) -> Self {
        self.category = category;
        self
    }

    /// Sets the stock state.
    pub fn with_stock(mut self, in_stock: bool) -> Self {
        self.in_stock = in_stock;
        self
    }

    /// The image key for this record's URL.
    pub fn image_key(&self) -> ImageKey {
        ImageKey::from_url(&self.url)
    }
}

/// A catalog-change message, as delivered by the message queue.
///
/// These are the three real-time operations of Section 2.3 plus the
/// attribute-only update of Figure 7. `AddProduct` covers both genuinely new
/// products and re-listings (the paper's dominant case: 513 M of 521 M
/// additions on the measured day were products returning to the market).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProductEvent {
    /// A product (re-)enters the market with the given images.
    AddProduct {
        /// Owning product.
        product_id: ProductId,
        /// One attribute record per image of the product.
        images: Vec<ProductAttributes>,
    },
    /// A product leaves the market; its images become invalid.
    RemoveProduct {
        /// Product being delisted.
        product_id: ProductId,
        /// URLs of the product's images (the indexer flips their validity
        /// bits).
        urls: Vec<String>,
    },
    /// Numeric attributes of a product changed (price cut, sales tick...).
    UpdateAttributes {
        /// Product being updated.
        product_id: ProductId,
        /// URLs of the images whose forward-index entries must change.
        urls: Vec<String>,
        /// New sales count, if changed.
        sales: Option<u64>,
        /// New price, if changed.
        price: Option<u64>,
        /// New praise count, if changed.
        praise: Option<u64>,
    },
}

impl ProductEvent {
    /// The product this event concerns.
    pub fn product_id(&self) -> ProductId {
        match self {
            ProductEvent::AddProduct { product_id, .. }
            | ProductEvent::RemoveProduct { product_id, .. }
            | ProductEvent::UpdateAttributes { product_id, .. } => *product_id,
        }
    }

    /// Image URLs touched by this event.
    pub fn urls(&self) -> Vec<&str> {
        match self {
            ProductEvent::AddProduct { images, .. } => {
                images.iter().map(|a| a.url.as_str()).collect()
            }
            ProductEvent::RemoveProduct { urls, .. }
            | ProductEvent::UpdateAttributes { urls, .. } => {
                urls.iter().map(String::as_str).collect()
            }
        }
    }

    /// Short kind tag for statistics ("add" / "remove" / "update").
    pub fn kind(&self) -> EventKind {
        match self {
            ProductEvent::AddProduct { .. } => EventKind::Addition,
            ProductEvent::RemoveProduct { .. } => EventKind::Deletion,
            ProductEvent::UpdateAttributes { .. } => EventKind::Update,
        }
    }
}

/// Classification of product events, matching Table 1's three columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Attribute update.
    Update,
    /// Image/product addition (including re-listings).
    Addition,
    /// Image/product removal.
    Deletion,
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EventKind::Update => "update",
            EventKind::Addition => "addition",
            EventKind::Deletion => "deletion",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_key_is_stable() {
        let a = ImageKey::from_url("https://img.jd.com/sku/1/main.jpg");
        let b = ImageKey::from_url("https://img.jd.com/sku/1/main.jpg");
        assert_eq!(a, b);
    }

    #[test]
    fn image_key_differs_for_different_urls() {
        let a = ImageKey::from_url("https://img.jd.com/sku/1/main.jpg");
        let b = ImageKey::from_url("https://img.jd.com/sku/2/main.jpg");
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of "a" is a published constant.
        assert_eq!(ImageKey::from_url("a").0, 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn partition_is_in_range_and_spreads() {
        let n = 16;
        let mut seen = vec![0usize; n];
        for i in 0..10_000 {
            let k = ImageKey::from_url(&format!("https://img.jd.com/sku/{i}/1.jpg"));
            let p = k.partition(n);
            assert!(p < n);
            seen[p] += 1;
        }
        let min = *seen.iter().min().unwrap();
        let max = *seen.iter().max().unwrap();
        assert!(min > 0, "every partition should receive images");
        assert!(max < 3 * 10_000 / n, "partition skew too high: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "num_partitions must be positive")]
    fn zero_partitions_panics() {
        ImageKey(1).partition(0);
    }

    #[test]
    fn event_accessors() {
        let attrs = ProductAttributes::new(ProductId(7), 10, 1999, 5, "u1".into());
        let add = ProductEvent::AddProduct {
            product_id: ProductId(7),
            images: vec![attrs],
        };
        assert_eq!(add.product_id(), ProductId(7));
        assert_eq!(add.urls(), vec!["u1"]);
        assert_eq!(add.kind(), EventKind::Addition);

        let rm = ProductEvent::RemoveProduct {
            product_id: ProductId(8),
            urls: vec!["u2".into()],
        };
        assert_eq!(rm.kind(), EventKind::Deletion);
        assert_eq!(rm.urls(), vec!["u2"]);

        let up = ProductEvent::UpdateAttributes {
            product_id: ProductId(9),
            urls: vec!["u3".into()],
            sales: Some(1),
            price: None,
            praise: None,
        };
        assert_eq!(up.kind(), EventKind::Update);
    }

    #[test]
    fn attributes_image_key_matches_url_hash() {
        let attrs = ProductAttributes::new(ProductId(1), 0, 0, 0, "xyz".into());
        assert_eq!(attrs.image_key(), ImageKey::from_url("xyz"));
    }

    #[test]
    fn attributes_default_to_in_stock_uncategorized() {
        let attrs = ProductAttributes::new(ProductId(1), 0, 0, 0, "u".into());
        assert_eq!(attrs.category, 0);
        assert!(attrs.in_stock);
        assert!(ProductAttributes::default().in_stock);
        let attrs = attrs.with_category(42).with_stock(false);
        assert_eq!(attrs.category, 42);
        assert!(!attrs.in_stock);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProductId(3).to_string(), "sku-3");
        assert!(ImageKey(0xff).to_string().starts_with("img-"));
        assert_eq!(EventKind::Update.to_string(), "update");
    }
}
