//! Experiment result reporting: aligned text tables + JSON dumps.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

/// One row of an experiment's output table: column name → value.
pub type Row = Vec<(String, String)>;

/// A finished experiment, ready to print and persist.
#[derive(Debug, Serialize)]
pub struct ExperimentResult {
    /// Short id, e.g. `"fig12a"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this table/figure.
    pub paper_reference: String,
    /// Column-ordered rows.
    #[serde(skip)]
    pub rows: Vec<Row>,
    /// The same rows as JSON objects (serialized form).
    pub data: Vec<serde_json::Value>,
    /// Shape checks / caveats worth recording.
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(id: &str, title: &str, paper_reference: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            paper_reference: paper_reference.to_string(),
            rows: Vec::new(),
            data: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (also mirrored into the JSON payload).
    pub fn push_row(&mut self, row: Row) {
        let mut obj = serde_json::Map::new();
        for (k, v) in &row {
            // Store numbers as numbers when they parse, else strings.
            let val = v
                .parse::<f64>()
                .ok()
                .and_then(serde_json::Number::from_f64)
                .map(serde_json::Value::Number)
                .unwrap_or_else(|| serde_json::Value::String(v.clone()));
            obj.insert(k.clone(), val);
        }
        self.data.push(serde_json::Value::Object(obj));
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   paper: {}\n", self.paper_reference));
        if let Some(first) = self.rows.first() {
            let cols: Vec<&String> = first.iter().map(|(k, _)| k).collect();
            let mut widths: Vec<usize> = cols.iter().map(|c| c.len()).collect();
            for row in &self.rows {
                for (i, (_, v)) in row.iter().enumerate() {
                    if i < widths.len() {
                        widths[i] = widths[i].max(v.len());
                    }
                }
            }
            out.push_str("   ");
            for (c, w) in cols.iter().zip(&widths) {
                out.push_str(&format!("{c:>w$}  ", w = w));
            }
            out.push('\n');
            for row in &self.rows {
                out.push_str("   ");
                for ((_, v), w) in row.iter().zip(&widths) {
                    out.push_str(&format!("{v:>w$}  ", w = w));
                }
                out.push('\n');
            }
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the JSON payload to `dir/<id>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let json = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "data": self.data,
            "notes": self.notes,
        });
        writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(&json).expect("serializable")
        )?;
        Ok(())
    }
}

/// Convenience: builds a row from `(&str, String)` pairs.
#[macro_export]
macro_rules! row {
    ($($k:expr => $v:expr),* $(,)?) => {
        vec![$(($k.to_string(), $v.to_string())),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = ExperimentResult::new("t1", "Test", "paper says X");
        r.push_row(row!["threads" => 1, "qps" => 1234.5]);
        r.push_row(row!["threads" => 32, "qps" => 9.0]);
        r.note("shape holds");
        let s = r.render();
        assert!(s.contains("t1"));
        assert!(s.contains("threads"));
        assert!(s.contains("1234.5"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    fn json_payload_stores_numbers() {
        let mut r = ExperimentResult::new("t2", "Test", "ref");
        r.push_row(row!["x" => 5, "label" => "abc"]);
        assert_eq!(r.data[0]["x"], serde_json::json!(5.0));
        assert_eq!(r.data[0]["label"], serde_json::json!("abc"));
    }

    #[test]
    fn save_json_writes_file() {
        let mut r = ExperimentResult::new("t3", "Test", "ref");
        r.push_row(row!["x" => 1]);
        let dir = std::env::temp_dir().join("jdvs_bench_test");
        r.save_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t3.json")).unwrap();
        assert!(content.contains("\"id\": \"t3\""));
    }
}
