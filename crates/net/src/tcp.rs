//! Socket-backed serving: a framed TCP listener wrapping a [`Service`]
//! behind an [`AdmissionController`], and the matching pooled client
//! channel implementing [`CallTarget`].
//!
//! This is the network-native counterpart of [`crate::node::Node`]: the
//! same `Service` implementations (searchers, brokers, blenders) serve
//! unmodified, but requests arrive as CRC-checked frames over real
//! loopback sockets, pass through the tier's admission front door
//! *before* body decode, and tiers can be drained or crashed
//! independently.
//!
//! ## Offline substitution
//!
//! The design brief calls for a tokio-based transport; this build runs in
//! an offline environment where tokio is not vendored, so the transport
//! uses `std::net` blocking sockets with dedicated threads — a
//! thread-per-connection accept loop, read-timeout polling for shutdown
//! signals, and condvar-based admission queues. The wire format, the
//! admission state machine and the drain/crash semantics are transport
//! agnostic.

use std::io;
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use jdvs_metrics::ServingMetrics;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, ResponseEnvelope,
};
use crate::rpc::{CallTarget, RpcError, Service};

/// How often a connection thread wakes from a blocked read to check the
/// stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How often the accept loop polls its non-blocking listener.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(2);

/// Idle connections kept per client channel.
const POOL_CAP: usize = 8;

/// Floor for socket timeouts (`set_read_timeout(Some(0))` is an error).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_millis(1);

/// One tier of the serving stack listening on a real TCP socket.
///
/// Accepts framed requests, runs them through admission control, and
/// serves admitted ones on per-connection threads. Supports a graceful
/// [`TcpTier::drain`] (answer in-flight work, shed new arrivals, then
/// stop) and an abrupt [`TcpTier::crash`] (sever everything mid-flight,
/// refuse new connections) for fault-injection tests.
pub struct TcpTier<S: Service> {
    name: String,
    local_addr: SocketAddr,
    admission: Arc<AdmissionController>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    stopped: bool,
    _service: PhantomData<fn() -> S>,
}

impl<S: Service> std::fmt::Debug for TcpTier<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTier")
            .field("name", &self.name)
            .field("local_addr", &self.local_addr)
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl<S: Service> TcpTier<S> {
    /// Binds a listener on an OS-assigned loopback port and starts serving
    /// `service` behind admission control.
    ///
    /// `decode_request_body` / `encode_response_body` bridge the wire to
    /// the service's message types; a body that fails to decode is
    /// answered with an error envelope (never a crash).
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors.
    pub fn spawn(
        name: &str,
        service: S,
        decode_request_body: fn(&[u8]) -> Option<S::Request>,
        encode_response_body: fn(&S::Response) -> Vec<u8>,
        config: AdmissionConfig,
    ) -> io::Result<Self> {
        Self::spawn_with_metrics(
            name,
            service,
            decode_request_body,
            encode_response_body,
            config,
            Arc::new(ServingMetrics::new()),
        )
    }

    /// Like [`TcpTier::spawn`], but shares a caller-provided
    /// [`ServingMetrics`] instance instead of creating a private one — so
    /// a service that records its own metrics (e.g. a micro-batcher) and
    /// the tier's admission front door report into one snapshot.
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors.
    pub fn spawn_with_metrics(
        name: &str,
        service: S,
        decode_request_body: fn(&[u8]) -> Option<S::Request>,
        encode_response_body: fn(&S::Response) -> Vec<u8>,
        config: AdmissionConfig,
        metrics: Arc<ServingMetrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let admission = Arc::new(AdmissionController::new(config, metrics));
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let admission = Arc::clone(&admission);
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let streams = Arc::clone(&streams);
            let name = name.to_string();
            thread::Builder::new()
                .name(format!("{name}-accept"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if stream.set_nonblocking(false).is_err() {
                                    continue;
                                }
                                let _ = stream.set_nodelay(true);
                                let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
                                if let Ok(clone) = stream.try_clone() {
                                    streams.lock().push(clone);
                                }
                                let admission = Arc::clone(&admission);
                                let service = Arc::clone(&service);
                                let stop = Arc::clone(&stop);
                                let handle = thread::Builder::new()
                                    .name(format!("{name}-conn"))
                                    .spawn(move || {
                                        serve_connection(
                                            stream,
                                            &service,
                                            &admission,
                                            decode_request_body,
                                            encode_response_body,
                                            &stop,
                                        );
                                    })
                                    .expect("spawn connection thread");
                                workers.lock().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(ACCEPT_INTERVAL);
                            }
                            Err(_) => break,
                        }
                    }
                    // Listener drops here: further connects are refused.
                })
                .expect("spawn accept thread")
        };

        Ok(Self {
            name: name.to_string(),
            local_addr,
            admission,
            stop,
            accept_handle: Some(accept_handle),
            workers,
            streams,
            stopped: false,
            _service: PhantomData,
        })
    }

    /// The loopback address the tier listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Tier name (used in thread names and diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serving metrics for this tier (admissions, sheds, concurrency
    /// high-water marks).
    pub fn metrics(&self) -> &Arc<ServingMetrics> {
        self.admission.metrics()
    }

    /// The tier's admission controller (for drain checks in tests).
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Gracefully drains the tier: new requests are shed with a fast
    /// `Draining` rejection, in-flight requests are answered, and once the
    /// tier is idle (or `timeout` elapses) all threads are stopped and the
    /// listener is closed.
    ///
    /// Returns `true` if the tier went idle before the timeout.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        self.admission.start_draining();
        let deadline = Instant::now() + timeout;
        let mut idle = false;
        while Instant::now() < deadline {
            if self.admission.in_flight() == 0 {
                idle = true;
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        self.stop_threads(true);
        idle
    }

    /// Simulates a process crash: the listener closes (subsequent connects
    /// are refused), every open connection is severed mid-whatever, and no
    /// in-flight request receives a response.
    ///
    /// Connection threads still inside a handler are detached rather than
    /// joined (their response write fails and they exit on their own) — a
    /// crash must not wait for in-flight work.
    pub fn crash(&mut self) {
        self.stop_threads(false);
    }

    fn stop_threads(&mut self, join_workers: bool) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.stop.store(true, Ordering::SeqCst);
        self.admission.start_draining();
        // Sever tracked connections so blocked reads/writes fail now.
        for s in self.streams.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        if join_workers {
            for h in workers {
                let _ = h.join();
            }
        }
    }
}

impl<S: Service> Drop for TcpTier<S> {
    fn drop(&mut self) {
        // Detach any worker still inside a handler; it exits once its
        // response write fails against the severed socket.
        self.stop_threads(false);
    }
}

/// Serves one connection until the peer closes, the stream breaks, or the
/// tier stops.
///
/// A read timeout with no bytes consumed just re-polls the stop flag; a
/// timeout *mid-frame* desynchronizes the stream, which the CRC check
/// catches on the next frame — the connection is then dropped rather than
/// risk misparsing.
fn serve_connection<S: Service>(
    mut stream: TcpStream,
    service: &Arc<S>,
    admission: &Arc<AdmissionController>,
    decode_request_body: fn(&[u8]) -> Option<S::Request>,
    encode_response_body: fn(&S::Response) -> Vec<u8>,
    stop: &AtomicBool,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e) if e.is_timeout() => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return, // closed, torn or corrupt: drop the connection
        };
        let metrics = admission.metrics();
        let envelope = match decode_request(&payload) {
            Ok(env) => env,
            Err(_) => {
                metrics.decode_errors.incr();
                if respond(&mut stream, &ResponseEnvelope::Error).is_err() {
                    return;
                }
                continue;
            }
        };
        let reply = match admission.admit(envelope.budget) {
            Err(reason) => ResponseEnvelope::Overloaded(reason),
            Ok(permit) => {
                let reply = match decode_request_body(&envelope.body) {
                    Some(request) => {
                        let response = service.handle(request);
                        ResponseEnvelope::Ok(encode_response_body(&response))
                    }
                    None => {
                        metrics.decode_errors.incr();
                        ResponseEnvelope::Error
                    }
                };
                drop(permit);
                reply
            }
        };
        if respond(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn respond(stream: &mut TcpStream, envelope: &ResponseEnvelope) -> io::Result<()> {
    write_frame(stream, &encode_response(envelope))
}

/// A pooled client channel to one remote tier, implementing
/// [`CallTarget`] so a [`crate::balancer::Balancer`] can spread calls,
/// trip breakers and hedge across network replicas exactly as it does
/// across in-process nodes.
pub struct TcpChannel<Req, Resp> {
    name: String,
    addr: SocketAddr,
    encode_request_body: fn(&Req) -> Vec<u8>,
    decode_response_body: fn(&[u8]) -> Option<Resp>,
    pool: Mutex<Vec<TcpStream>>,
}

impl<Req, Resp> std::fmt::Debug for TcpChannel<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannel")
            .field("name", &self.name)
            .field("addr", &self.addr)
            .finish()
    }
}

enum CallFail {
    /// A pooled connection went stale (peer closed it between calls);
    /// worth one retry on a fresh connection.
    Stale,
    Rpc(RpcError),
}

impl<Req, Resp> TcpChannel<Req, Resp> {
    /// Creates a channel to `addr`. Connections are opened lazily on first
    /// call and reused afterwards.
    pub fn new(
        name: impl Into<String>,
        addr: SocketAddr,
        encode_request_body: fn(&Req) -> Vec<u8>,
        decode_response_body: fn(&[u8]) -> Option<Resp>,
    ) -> Self {
        Self {
            name: name.into(),
            addr,
            encode_request_body,
            decode_response_body,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The remote address this channel dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn exchange(
        &self,
        stream: &mut TcpStream,
        body: &[u8],
        deadline_at: Instant,
        total_deadline: Duration,
    ) -> Result<Resp, CallFail> {
        let remaining = deadline_at.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(CallFail::Rpc(RpcError::Timeout {
                deadline: total_deadline,
            }));
        }
        let socket_timeout = remaining.max(MIN_SOCKET_TIMEOUT);
        let _ = stream.set_write_timeout(Some(socket_timeout));
        let _ = stream.set_read_timeout(Some(socket_timeout));

        let payload = encode_request(remaining, body);
        if let Err(e) = write_frame(stream, &payload) {
            return Err(
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    CallFail::Rpc(RpcError::Timeout {
                        deadline: total_deadline,
                    })
                } else {
                    CallFail::Stale
                },
            );
        }
        let response = match read_frame(stream) {
            Ok(p) => p,
            Err(e) if e.is_timeout() => {
                return Err(CallFail::Rpc(RpcError::Timeout {
                    deadline: total_deadline,
                }))
            }
            Err(FrameError::Closed) => return Err(CallFail::Stale),
            Err(_) => return Err(CallFail::Rpc(RpcError::NodeDown)),
        };
        match decode_response(&response) {
            Ok(ResponseEnvelope::Ok(body)) => {
                (self.decode_response_body)(&body).ok_or(CallFail::Rpc(RpcError::NodeDown))
            }
            Ok(ResponseEnvelope::Overloaded(_)) => Err(CallFail::Rpc(RpcError::Overloaded)),
            Ok(ResponseEnvelope::Error) | Err(_) => Err(CallFail::Rpc(RpcError::NodeDown)),
        }
    }
}

impl<Req, Resp> CallTarget for TcpChannel<Req, Resp>
where
    Req: Send + Sync + 'static,
    Resp: Send + Sync + 'static,
{
    type Request = Req;
    type Response = Resp;

    fn call(&self, request: Req, deadline: Duration) -> Result<Resp, RpcError> {
        let deadline_at = Instant::now() + deadline;
        let body = (self.encode_request_body)(&request);

        // Queries are idempotent, so a stale pooled connection (or one the
        // peer closed mid-call) is worth exactly one retry on a fresh
        // socket before reporting the node down.
        for _attempt in 0..2 {
            let pooled = self.pool.lock().pop();
            let mut stream = match pooled {
                Some(s) => s,
                None => {
                    let remaining = deadline_at.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(RpcError::Timeout { deadline });
                    }
                    match TcpStream::connect_timeout(&self.addr, remaining.max(MIN_SOCKET_TIMEOUT))
                    {
                        Ok(s) => {
                            let _ = s.set_nodelay(true);
                            s
                        }
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                            ) =>
                        {
                            return Err(RpcError::Timeout { deadline })
                        }
                        Err(_) => return Err(RpcError::NodeDown),
                    }
                }
            };
            match self.exchange(&mut stream, &body, deadline_at, deadline) {
                Ok(resp) => {
                    let mut pool = self.pool.lock();
                    if pool.len() < POOL_CAP {
                        pool.push(stream);
                    }
                    return Ok(resp);
                }
                Err(CallFail::Stale) => continue, // fresh socket next round
                Err(CallFail::Rpc(e)) => return Err(e),
            }
        }
        Err(RpcError::NodeDown)
    }

    fn is_down(&self) -> bool {
        false // a network target only learns from failed calls
    }

    fn target_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;

    struct Echo;
    impl Service for Echo {
        type Request = Vec<u8>;
        type Response = Vec<u8>;
        fn handle(&self, req: Vec<u8>) -> Vec<u8> {
            req
        }
    }

    struct Sleeper(Duration);
    impl Service for Sleeper {
        type Request = Vec<u8>;
        type Response = Vec<u8>;
        fn handle(&self, req: Vec<u8>) -> Vec<u8> {
            thread::sleep(self.0);
            req
        }
    }

    fn bytes_decode(b: &[u8]) -> Option<Vec<u8>> {
        Some(b.to_vec())
    }
    #[allow(clippy::ptr_arg)] // must match the fn(&Req) -> Vec<u8> pointer shape
    fn bytes_encode(b: &Vec<u8>) -> Vec<u8> {
        b.clone()
    }

    fn channel_to<S: Service>(tier: &TcpTier<S>) -> TcpChannel<Vec<u8>, Vec<u8>> {
        TcpChannel::new("chan", tier.local_addr(), bytes_encode, bytes_decode)
    }

    #[test]
    fn echo_round_trip_over_tcp() {
        let tier = TcpTier::spawn(
            "echo",
            Echo,
            bytes_decode,
            bytes_encode,
            AdmissionConfig::default(),
        )
        .unwrap();
        let chan = channel_to(&tier);
        for i in 0..20u8 {
            let resp = chan.call(vec![i, i + 1], Duration::from_secs(2)).unwrap();
            assert_eq!(resp, vec![i, i + 1]);
        }
        assert_eq!(tier.metrics().admitted.get(), 20);
        assert_eq!(tier.metrics().completed.get(), 20);
    }

    #[test]
    fn overload_sheds_fast() {
        let tier = TcpTier::spawn(
            "slow",
            Sleeper(Duration::from_millis(300)),
            bytes_decode,
            bytes_encode,
            AdmissionConfig {
                max_concurrency: 1,
                queue_capacity: 0,
                ..AdmissionConfig::default()
            },
        )
        .unwrap();
        let chan = Arc::new(channel_to(&tier));
        let c2 = Arc::clone(&chan);
        let busy = thread::spawn(move || c2.call(vec![1], Duration::from_secs(3)));
        thread::sleep(Duration::from_millis(100)); // let the first call occupy the slot
        let start = Instant::now();
        let shed = chan.call(vec![2], Duration::from_secs(3));
        let shed_latency = start.elapsed();
        assert_eq!(shed.unwrap_err(), RpcError::Overloaded);
        assert!(
            shed_latency < Duration::from_millis(150),
            "shed took {shed_latency:?}, expected a fast rejection"
        );
        busy.join().unwrap().unwrap();
        assert_eq!(tier.metrics().shed_queue_full.get(), 1);
    }

    #[test]
    fn drain_answers_in_flight_then_refuses_connections() {
        let mut tier = TcpTier::spawn(
            "drainable",
            Sleeper(Duration::from_millis(150)),
            bytes_decode,
            bytes_encode,
            AdmissionConfig::default(),
        )
        .unwrap();
        let addr = tier.local_addr();
        let chan = Arc::new(channel_to(&tier));
        let c2 = Arc::clone(&chan);
        let inflight = thread::spawn(move || c2.call(vec![7], Duration::from_secs(3)));
        // Positive handshake: wait until the request is actually admitted
        // before draining — a fixed sleep races the connect under load.
        let t0 = Instant::now();
        while tier.metrics().admitted.get() == 0 {
            assert!(t0.elapsed() < Duration::from_secs(2), "call never admitted");
            thread::sleep(Duration::from_millis(2));
        }
        assert!(tier.drain(Duration::from_secs(3)), "tier should go idle");
        // The in-flight request was answered, not severed.
        assert_eq!(inflight.join().unwrap().unwrap(), vec![7]);
        // New connections are refused now.
        let fresh = TcpChannel::new("late", addr, bytes_encode, bytes_decode);
        assert_eq!(
            fresh.call(vec![9], Duration::from_millis(500)).unwrap_err(),
            RpcError::NodeDown
        );
    }

    #[test]
    fn draining_tier_sheds_new_requests() {
        let tier = TcpTier::spawn(
            "shedding",
            Echo,
            bytes_decode,
            bytes_encode,
            AdmissionConfig::default(),
        )
        .unwrap();
        let chan = channel_to(&tier);
        chan.call(vec![1], Duration::from_secs(1)).unwrap();
        tier.admission().start_draining();
        assert_eq!(
            chan.call(vec![2], Duration::from_secs(1)).unwrap_err(),
            RpcError::Overloaded
        );
        assert_eq!(tier.metrics().shed_draining.get(), 1);
    }

    #[test]
    fn crash_severs_in_flight_and_refuses_new() {
        let mut tier = TcpTier::spawn(
            "crashy",
            Sleeper(Duration::from_secs(5)),
            bytes_decode,
            bytes_encode,
            AdmissionConfig::default(),
        )
        .unwrap();
        let addr = tier.local_addr();
        let chan = Arc::new(channel_to(&tier));
        let c2 = Arc::clone(&chan);
        let doomed = thread::spawn(move || c2.call(vec![1], Duration::from_millis(400)));
        thread::sleep(Duration::from_millis(50));
        tier.crash();
        // The in-flight call fails (severed or timed out), never succeeds.
        assert!(doomed.join().unwrap().is_err());
        let fresh = TcpChannel::new("late", addr, bytes_encode, bytes_decode);
        assert_eq!(
            fresh.call(vec![2], Duration::from_millis(300)).unwrap_err(),
            RpcError::NodeDown
        );
    }

    #[test]
    fn tiny_budget_is_shed_as_hopeless() {
        let tier = TcpTier::spawn(
            "strict",
            Echo,
            bytes_decode,
            bytes_encode,
            AdmissionConfig {
                min_budget: Duration::from_millis(50),
                ..AdmissionConfig::default()
            },
        )
        .unwrap();
        let chan = channel_to(&tier);
        assert_eq!(
            chan.call(vec![1], Duration::from_millis(10)).unwrap_err(),
            RpcError::Overloaded
        );
        assert_eq!(tier.metrics().shed_deadline.get(), 1);
    }
}
