//! The front-end load balancer.
//!
//! Figure 1's entry point: *"a front end (i.e., load balancer) forwards the
//! query to one of the blenders."* [`Balancer`] round-robins over a set of
//! equivalent [`NodeHandle`]s and fails over — which is what makes
//! "multiple identical instances for load balancing and fault tolerance"
//! actually tolerate faults. Beyond the plain rotation, the balancer is the
//! serving path's resilience primitive:
//!
//! - **Total deadline budget** — [`Balancer::call`]'s `deadline` bounds the
//!   *whole* call including every failover attempt and backoff pause; each
//!   attempt only gets what is left of the budget, and an exhausted budget
//!   returns [`RpcError::Timeout`].
//! - **Health-aware failover** — each target has a [`HealthTracker`]
//!   circuit breaker: replicas that keep failing are skipped (instead of
//!   being re-tried every rotation) until a cooldown admits a half-open
//!   probe. If *every* replica is skipped, one forced probe keeps the
//!   balancer live.
//! - **Jittered retry rotations** — after a fully-failed pass the balancer
//!   sleeps a jittered exponential backoff ([`RetryPolicy`]) and makes
//!   another pass, while the budget lasts.
//! - **Hedged calls** — [`Balancer::call_hedged`] launches a second attempt
//!   when the first one straggles past a threshold; the first success wins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jdvs_metrics::ResilienceMetrics;
use parking_lot::{Mutex, RwLock};

use crate::health::{CircuitState, HealthPolicy, HealthTracker};
use crate::latency::NetRng;
use crate::retry::RetryPolicy;
use crate::rpc::{CallTarget, RpcError};

/// One backend with its circuit breaker; `Arc`-shared so a call can keep
/// operating on a consistent snapshot of the target set while a lifecycle
/// operation ([`Balancer::push_target`]) grows it.
struct TargetEntry<T> {
    target: T,
    health: HealthTracker,
}

/// State shared between a balancer and its detached hedge threads.
struct Inner<T: CallTarget> {
    /// The live target set. Growable: [`Balancer::push_target`] appends
    /// under the write lock while calls work off a cheap read-locked
    /// snapshot — no lock is ever held across an RPC.
    targets: RwLock<Vec<Arc<TargetEntry<T>>>>,
    /// Policy used to build breakers for targets pushed after construction.
    health_policy: HealthPolicy,
    retry: RetryPolicy,
    next: AtomicUsize,
    rng: Mutex<NetRng>,
    metrics: Option<Arc<ResilienceMetrics>>,
}

impl<T: CallTarget> Inner<T> {
    /// A consistent snapshot of the target set for one call.
    fn snapshot(&self) -> Vec<Arc<TargetEntry<T>>> {
        self.targets.read().clone()
    }

    /// One budgeted, health-aware, retrying failover call; see
    /// [`Balancer::call`].
    fn call(&self, request: &T::Request, deadline: Duration) -> Result<T::Response, RpcError>
    where
        T::Request: Clone,
    {
        let start = Instant::now();
        let entries = self.snapshot();
        let n = entries.len();
        let begin = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last_err = RpcError::NodeDown;
        let rotations = self.retry.max_rotations.max(1);
        for rotation in 0..rotations {
            if rotation > 0 {
                let unit = self.rng.lock().next_f64();
                let pause = self.retry.backoff(rotation, unit);
                let remaining = deadline.saturating_sub(start.elapsed());
                if remaining <= pause {
                    // Not worth sleeping into a dead budget: report what we
                    // know (the budget ran out retrying past `last_err`).
                    return Err(RpcError::Timeout { deadline });
                }
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                if let Some(m) = &self.metrics {
                    m.retries.incr();
                }
            }
            let mut attempted = false;
            for i in 0..n {
                let entry = &entries[(begin + i) % n];
                if entry.target.is_down() {
                    last_err = RpcError::NodeDown;
                    continue;
                }
                if !entry.health.allow() {
                    // Breaker open: skip without spending budget.
                    continue;
                }
                attempted = true;
                match self.attempt(entry, request, start, deadline)? {
                    Ok(resp) => return Ok(resp),
                    Err(e) => last_err = e,
                }
            }
            if !attempted {
                // Every replica was down or breaker-open. Force one probe so
                // a fully-tripped balancer still recovers within a call (and
                // callers see the real error, not a stale one).
                match self.attempt(&entries[begin % n], request, start, deadline)? {
                    Ok(resp) => return Ok(resp),
                    Err(e) => last_err = e,
                }
            }
            if last_err == RpcError::Overloaded {
                // Every reachable replica shed this request. Shedding is a
                // deliberate, authoritative answer from a healthy node —
                // backoff-retrying into a system that just asked for less
                // load amplifies the overload and burns the caller's
                // budget. Propagate the shed fast instead.
                return Err(last_err);
            }
        }
        Err(last_err)
    }

    /// One attempt against `entry` with the budget's remainder.
    /// The outer `Err` is budget exhaustion (abort the whole call); the
    /// inner `Err` is this attempt's failure (keep failing over).
    #[allow(clippy::type_complexity)]
    fn attempt(
        &self,
        entry: &TargetEntry<T>,
        request: &T::Request,
        start: Instant,
        deadline: Duration,
    ) -> Result<Result<T::Response, RpcError>, RpcError>
    where
        T::Request: Clone,
    {
        let remaining = deadline.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(RpcError::Timeout { deadline });
        }
        match entry.target.call(request.clone(), remaining) {
            Ok(resp) => {
                entry.health.record_success();
                Ok(Ok(resp))
            }
            Err(RpcError::Overloaded) => {
                // A shed is the admission controller doing its job, not a
                // fault: it must not push the breaker toward open (that
                // would mark a healthy-but-busy node down and concentrate
                // load on its siblings). Counted apart from failures.
                if let Some(m) = &self.metrics {
                    m.calls_overloaded.incr();
                }
                Ok(Err(RpcError::Overloaded))
            }
            Err(e) => {
                if entry.health.record_failure() {
                    if let Some(m) = &self.metrics {
                        m.breaker_opens.incr();
                    }
                }
                if let Some(m) = &self.metrics {
                    m.call_failures.incr();
                }
                Ok(Err(e))
            }
        }
    }
}

/// Round-robin balancer with budgeted, health-aware failover over any
/// [`CallTarget`] — in-process node handles or TCP channels.
pub struct Balancer<T: CallTarget> {
    inner: Arc<Inner<T>>,
}

impl<T: CallTarget> Clone for Balancer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: CallTarget> std::fmt::Debug for Balancer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer")
            .field("targets", &self.inner.targets.read().len())
            .finish()
    }
}

impl<T: CallTarget> Balancer<T> {
    /// Creates a balancer over `targets` with the default [`HealthPolicy`]
    /// and [`RetryPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<T>) -> Self {
        Self::with_policies(
            targets,
            HealthPolicy::default(),
            RetryPolicy::default(),
            0x5EED,
        )
    }

    /// Creates a balancer with explicit health/retry policies and a seed
    /// for the backoff jitter stream.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn with_policies(
        targets: Vec<T>,
        health: HealthPolicy,
        retry: RetryPolicy,
        seed: u64,
    ) -> Self {
        assert!(!targets.is_empty(), "balancer needs at least one target");
        let entries = targets
            .into_iter()
            .map(|target| {
                Arc::new(TargetEntry {
                    target,
                    health: HealthTracker::new(health),
                })
            })
            .collect();
        Self {
            inner: Arc::new(Inner {
                targets: RwLock::new(entries),
                health_policy: health,
                retry,
                next: AtomicUsize::new(0),
                rng: Mutex::new(NetRng::new(seed)),
                metrics: None,
            }),
        }
    }

    /// Attaches shared resilience counters (retries, breaker opens,
    /// hedges). Must be called before the balancer starts serving.
    ///
    /// # Panics
    ///
    /// Panics if the balancer has already been shared with a hedge thread.
    pub fn with_metrics(mut self, metrics: Arc<ResilienceMetrics>) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("configure the balancer before first use")
            .metrics = Some(metrics);
        self
    }

    /// Number of backend nodes.
    pub fn num_targets(&self) -> usize {
        self.inner.targets.read().len()
    }

    /// Appends a new backend to the rotation with a fresh (closed)
    /// breaker. In-flight calls finish on the snapshot they started with;
    /// every call that begins afterwards sees the new target. This is how
    /// a bootstrapped replica atomically joins the serving set.
    pub fn push_target(&self, target: T) {
        self.inner.targets.write().push(Arc::new(TargetEntry {
            target,
            health: HealthTracker::new(self.inner.health_policy),
        }));
    }

    /// The breaker state of target `idx` (for tests/metrics).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn health_state(&self, idx: usize) -> CircuitState {
        self.inner.targets.read()[idx].health.state()
    }

    /// Calls one backend, rotating through replicas on failure. `deadline`
    /// is the **total budget** for the call: every failover attempt and
    /// backoff pause is deducted from it, and an exhausted budget returns
    /// [`RpcError::Timeout`]. Requests are cloned per attempt, hence the
    /// `Clone` bound.
    ///
    /// # Errors
    ///
    /// Returns the **last** attempt error if every replica fails, or
    /// [`RpcError::Timeout`] once the budget is spent.
    pub fn call(&self, request: T::Request, deadline: Duration) -> Result<T::Response, RpcError>
    where
        T::Request: Clone,
    {
        self.inner.call(&request, deadline)
    }

    /// Like [`Balancer::call`], but if no result arrived within
    /// `hedge_after` a second (hedged) attempt is launched against the
    /// rotation's next replica set, and the first success wins. The
    /// straggler keeps running on a detached thread and its late result is
    /// discarded. Falls back to a plain call when there is only one target
    /// or `hedge_after >= deadline`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] when the budget is spent, otherwise the last
    /// error once both attempts have failed.
    pub fn call_hedged(
        &self,
        request: T::Request,
        deadline: Duration,
        hedge_after: Duration,
    ) -> Result<T::Response, RpcError>
    where
        T::Request: Clone,
    {
        if self.num_targets() < 2 || hedge_after >= deadline {
            return self.inner.call(&request, deadline);
        }
        let start = Instant::now();
        let (tx, rx) = crossbeam::channel::bounded::<Result<T::Response, RpcError>>(2);
        {
            let inner = Arc::clone(&self.inner);
            let req = request.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(inner.call(&req, deadline));
            });
        }
        let mut first_err = None;
        match rx.recv_timeout(hedge_after) {
            Ok(Ok(resp)) => return Ok(resp),
            Ok(Err(e)) => first_err = Some(e), // primary failed fast: hedge immediately
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {} // straggling
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                return Err(RpcError::NodeDown)
            }
        }
        let remaining = deadline.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(first_err.unwrap_or(RpcError::Timeout { deadline }));
        }
        if let Some(m) = &self.inner.metrics {
            m.hedges_launched.incr();
        }
        {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                let _ = tx.send(inner.call(&request, remaining));
            });
        }
        // `tx` was moved into the hedge thread; once both threads finish the
        // channel disconnects and we report the last error.
        let mut errors = usize::from(first_err.is_some());
        let mut last_err = first_err.unwrap_or(RpcError::NodeDown);
        loop {
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Err(RpcError::Timeout { deadline });
            }
            match rx.recv_timeout(remaining) {
                Ok(Ok(resp)) => {
                    if let Some(m) = &self.inner.metrics {
                        m.hedges_won.incr();
                    }
                    return Ok(resp);
                }
                Ok(Err(e)) => {
                    errors += 1;
                    last_err = e;
                    if errors >= 2 {
                        return Err(last_err);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    return Err(RpcError::Timeout { deadline });
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    return Err(last_err);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeHandle};
    use crate::rpc::Service;
    use std::sync::atomic::AtomicU64;

    struct Tagged(u64);
    impl Service for Tagged {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            self.0
        }
    }

    struct Counting(AtomicU64);
    impl Service for Counting {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            self.0.fetch_add(1, Ordering::Relaxed)
        }
    }

    struct Sleeper(Duration);
    impl Service for Sleeper {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            std::thread::sleep(self.0);
            7
        }
    }

    struct SlowTagged(u64, Duration);
    impl Service for SlowTagged {
        type Request = ();
        type Response = u64;
        fn handle(&self, _: ()) -> u64 {
            std::thread::sleep(self.1);
            self.0
        }
    }

    const DL: Duration = Duration::from_secs(5);

    #[test]
    fn round_robin_rotates_over_targets() {
        let nodes: Vec<_> = (0..3)
            .map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1))
            .collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        let got: Vec<u64> = (0..6).map(|_| lb.call((), DL).unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(lb.num_targets(), 3);
    }

    #[test]
    fn failover_skips_downed_node() {
        let nodes: Vec<_> = (0..3)
            .map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1))
            .collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        nodes[1].faults().set_down(true);
        let got: Vec<u64> = (0..4).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(!got.contains(&1), "downed node must be skipped: {got:?}");
    }

    #[test]
    fn all_down_returns_error() {
        let nodes: Vec<_> = (0..2)
            .map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1))
            .collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        for n in &nodes {
            n.faults().set_down(true);
        }
        assert_eq!(lb.call((), DL), Err(RpcError::NodeDown));
    }

    #[test]
    fn recovery_restores_rotation() {
        let nodes: Vec<_> = (0..2)
            .map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1))
            .collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        nodes[0].faults().set_down(true);
        assert_eq!(lb.call((), DL).unwrap(), 1);
        nodes[0].faults().set_down(false);
        let got: Vec<u64> = (0..4).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(got.contains(&0), "recovered node serves again: {got:?}");
    }

    #[test]
    fn dropped_requests_fail_over() {
        let flaky = Node::spawn("flaky", Counting(AtomicU64::new(0)), 1);
        let solid = Node::spawn("solid", Counting(AtomicU64::new(1000)), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::new(vec![flaky.handle(), solid.handle()]);
        for _ in 0..5 {
            let v = lb.call((), DL).unwrap();
            assert!(v >= 1000, "only the solid node can answer: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panics() {
        Balancer::<NodeHandle<Tagged>>::new(vec![]);
    }

    #[test]
    fn deadline_is_a_total_budget_across_attempts() {
        // Two stragglers: the first attempt eats the whole 60 ms budget, so
        // the balancer must NOT grant the second attempt another 60 ms
        // (which is what the old per-attempt deadline did).
        let a = Node::spawn("a", Sleeper(Duration::from_millis(300)), 1);
        let b = Node::spawn("b", Sleeper(Duration::from_millis(300)), 1);
        let lb = Balancer::with_policies(
            vec![a.handle(), b.handle()],
            HealthPolicy::default(),
            RetryPolicy::no_retry(),
            1,
        );
        let start = Instant::now();
        let err = lb.call((), Duration::from_millis(60)).unwrap_err();
        let elapsed = start.elapsed();
        assert!(
            matches!(err, RpcError::Timeout { .. }),
            "budget exhaustion is a timeout: {err}"
        );
        assert!(
            elapsed < Duration::from_millis(200),
            "one budget, not one per attempt: took {elapsed:?}"
        );
    }

    #[test]
    fn fast_failures_leave_budget_for_failover() {
        let flaky = Node::spawn("flaky", SlowTagged(1, Duration::ZERO), 1);
        let solid = Node::spawn("solid", SlowTagged(7, Duration::from_millis(20)), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::new(vec![flaky.handle(), solid.handle()]);
        // Drops cost ~no budget; the slow-but-healthy replica still fits.
        assert_eq!(lb.call((), Duration::from_millis(500)), Ok(7));
    }

    #[test]
    fn consecutive_failures_open_the_breaker() {
        let flaky = Node::spawn("flaky", Tagged(0), 1);
        let solid = Node::spawn("solid", Tagged(1), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::with_policies(
            vec![flaky.handle(), solid.handle()],
            HealthPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_secs(60),
            },
            RetryPolicy::no_retry(),
            2,
        );
        for _ in 0..6 {
            assert_eq!(lb.call((), DL).unwrap(), 1);
        }
        assert_eq!(
            lb.health_state(0),
            CircuitState::Open,
            "flaky replica tripped its breaker"
        );
        assert_eq!(lb.health_state(1), CircuitState::Closed);
    }

    #[test]
    fn half_open_probe_recovers_a_healed_replica() {
        let flaky = Node::spawn("flaky", Tagged(0), 1);
        let solid = Node::spawn("solid", Tagged(1), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::with_policies(
            vec![flaky.handle(), solid.handle()],
            HealthPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_millis(30),
            },
            RetryPolicy::no_retry(),
            3,
        );
        for _ in 0..4 {
            let _ = lb.call((), DL).unwrap();
        }
        assert_eq!(lb.health_state(0), CircuitState::Open);
        flaky.faults().set_drop_probability(0.0); // heal
        std::thread::sleep(Duration::from_millis(40)); // past the cooldown
        let got: Vec<u64> = (0..6).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(
            got.contains(&0),
            "healed replica serves again after a probe: {got:?}"
        );
        assert_eq!(lb.health_state(0), CircuitState::Closed);
    }

    #[test]
    fn all_breakers_open_still_forces_a_probe() {
        let node = Node::spawn("only-flaky", Tagged(0), 1);
        let lb = Balancer::with_policies(
            vec![node.handle()],
            HealthPolicy {
                failure_threshold: 1,
                cooldown: Duration::from_secs(60),
            },
            RetryPolicy::no_retry(),
            4,
        );
        node.faults().set_drop_probability(1.0);
        assert_eq!(lb.call((), DL), Err(RpcError::Dropped));
        assert_eq!(lb.health_state(0), CircuitState::Open);
        node.faults().set_drop_probability(0.0);
        // Breaker is open for a minute, but the forced probe (nothing else
        // to try) must still reach the healed node.
        assert_eq!(lb.call((), DL), Ok(0));
    }

    #[test]
    fn backoff_pause_respects_the_remaining_budget() {
        // Both replicas drop everything; with generous rotations the call
        // must still end when the budget does — never sleeping past it.
        let a = Node::spawn("a", Tagged(0), 1);
        let b = Node::spawn("b", Tagged(1), 1);
        a.faults().set_drop_probability(1.0);
        b.faults().set_drop_probability(1.0);
        let lb = Balancer::with_policies(
            vec![a.handle(), b.handle()],
            HealthPolicy::disabled(),
            RetryPolicy {
                max_rotations: 1_000,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(20),
                jitter: 0.0,
            },
            5,
        );
        let start = Instant::now();
        let err = lb.call((), Duration::from_millis(80)).unwrap_err();
        let elapsed = start.elapsed();
        assert!(
            matches!(err, RpcError::Dropped | RpcError::Timeout { .. }),
            "got {err}"
        );
        assert!(
            elapsed < Duration::from_millis(300),
            "stopped near the budget: {elapsed:?}"
        );
        // After healing, the same balancer serves again.
        a.faults().set_drop_probability(0.0);
        assert_eq!(lb.call((), Duration::from_millis(500)), Ok(0));
    }

    #[test]
    fn hedged_call_beats_a_straggler() {
        let slow = Node::spawn("slow", SlowTagged(7, Duration::from_millis(300)), 1);
        let fast = Node::spawn("fast", SlowTagged(42, Duration::ZERO), 1);
        let lb = Balancer::new(vec![slow.handle(), fast.handle()]);
        // Rotation starts at the slow node; the hedge fires after 20 ms and
        // lands on the fast one.
        let start = Instant::now();
        let got = lb
            .call_hedged((), Duration::from_secs(2), Duration::from_millis(20))
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got, 42);
        assert!(
            elapsed < Duration::from_millis(250),
            "hedge must win: took {elapsed:?}"
        );
    }

    #[test]
    fn hedged_call_with_single_target_falls_back() {
        let only = Node::spawn("only", Tagged(9), 1);
        let lb = Balancer::new(vec![only.handle()]);
        assert_eq!(lb.call_hedged((), DL, Duration::from_millis(1)), Ok(9));
    }

    #[test]
    fn hedged_call_reports_failure_when_everything_is_down() {
        let nodes: Vec<_> = (0..2)
            .map(|i| Node::spawn(format!("n{i}"), Tagged(i), 1))
            .collect();
        let lb = Balancer::new(nodes.iter().map(Node::handle).collect());
        for n in &nodes {
            n.faults().set_down(true);
        }
        let err = lb.call_hedged((), Duration::from_millis(500), Duration::from_millis(10));
        assert!(err.is_err());
    }

    #[test]
    fn pushed_target_joins_the_rotation_with_a_fresh_breaker() {
        let a = Node::spawn("a", Tagged(0), 1);
        let lb = Balancer::new(vec![a.handle()]);
        assert_eq!(lb.num_targets(), 1);
        let b = Node::spawn("b", Tagged(1), 1);
        lb.push_target(b.handle());
        assert_eq!(lb.num_targets(), 2);
        assert_eq!(lb.health_state(1), CircuitState::Closed);
        let got: Vec<u64> = (0..6).map(|_| lb.call((), DL).unwrap()).collect();
        assert!(
            got.contains(&0) && got.contains(&1),
            "both targets serve after the push: {got:?}"
        );
        // Shared handles see the same (grown) target set.
        let shared = lb.clone();
        assert_eq!(shared.num_targets(), 2);
    }

    #[test]
    fn metrics_count_retries_and_breaker_opens() {
        let m = Arc::new(ResilienceMetrics::new());
        let flaky = Node::spawn("flaky", Tagged(0), 1);
        let solid = Node::spawn("solid", Tagged(1), 1);
        flaky.faults().set_drop_probability(1.0);
        let lb = Balancer::with_policies(
            vec![flaky.handle(), solid.handle()],
            HealthPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            },
            RetryPolicy::no_retry(),
            6,
        )
        .with_metrics(Arc::clone(&m));
        for _ in 0..4 {
            let _ = lb.call((), DL).unwrap();
        }
        let snap = m.snapshot();
        assert!(snap.call_failures >= 2, "flaky failures counted: {snap:?}");
        assert_eq!(
            snap.breaker_opens, 1,
            "one closed->open transition: {snap:?}"
        );
    }
}
