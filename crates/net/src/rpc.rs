//! RPC contract: the service trait, call targets, and call errors.

use std::time::Duration;

/// A request handler living inside a [`crate::node::Node`].
///
/// One service instance is shared by all of a node's worker threads, so
/// handlers must be `Sync`; jdvs services (searchers, brokers, blenders)
/// hold their state in the concurrent structures of `jdvs-core`.
pub trait Service: Send + Sync + 'static {
    /// Request message type.
    type Request: Send + 'static;
    /// Response message type.
    type Response: Send + 'static;

    /// Handles one request. Runs on a node worker thread.
    fn handle(&self, req: Self::Request) -> Self::Response;
}

/// A shared service serves too — lets a caller keep a handle to the same
/// instance a tier runs (e.g. to drain a stateful wrapper at shutdown).
impl<S: Service> Service for std::sync::Arc<S> {
    type Request = S::Request;
    type Response = S::Response;

    fn handle(&self, req: Self::Request) -> Self::Response {
        (**self).handle(req)
    }
}

/// Something a [`crate::balancer::Balancer`] can route requests to: an
/// in-process [`crate::node::NodeHandle`] or a [`crate::tcp::TcpChannel`]
/// to a remote tier. The balancer's resilience machinery (budgeted
/// failover, circuit breakers, hedging) is written against this trait, so
/// the same policies run unchanged over channels and over real sockets.
pub trait CallTarget: Send + Sync + 'static {
    /// Request message type.
    type Request: Send + 'static;
    /// Response message type.
    type Response: Send + 'static;

    /// Performs one call with a deadline.
    ///
    /// # Errors
    ///
    /// Any [`RpcError`]; see the implementor for the exact mapping.
    fn call(&self, request: Self::Request, deadline: Duration) -> Result<Self::Response, RpcError>;

    /// Whether the target is known-dead without spending a call on it
    /// (best-effort; network targets may only learn from a failed call).
    fn is_down(&self) -> bool;

    /// Human-readable target name for diagnostics.
    fn target_name(&self) -> &str;
}

/// Errors a remote call can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply within the caller's deadline.
    Timeout {
        /// The deadline that elapsed.
        deadline: Duration,
    },
    /// The target node has been shut down (or crashed via fault injection).
    NodeDown,
    /// The fault injector dropped the request.
    Dropped,
    /// The target's admission controller rejected the request (rate limit,
    /// full queue, hopeless deadline, or drain). Deliberate fast rejection
    /// under overload — the service is alive, and retrying elsewhere (or
    /// later) is the right reaction, unlike [`RpcError::NodeDown`].
    Overloaded,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout { deadline } => write!(f, "rpc timed out after {deadline:?}"),
            RpcError::NodeDown => f.write_str("target node is down"),
            RpcError::Dropped => f.write_str("request dropped by fault injection"),
            RpcError::Overloaded => f.write_str("request shed by target admission control"),
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(RpcError::Timeout {
            deadline: Duration::from_millis(5)
        }
        .to_string()
        .contains("timed out"));
        assert!(RpcError::NodeDown.to_string().contains("down"));
        assert!(RpcError::Dropped.to_string().contains("dropped"));
        assert!(RpcError::Overloaded.to_string().contains("shed"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&RpcError::NodeDown);
    }
}
