//! Deterministic pseudo-random number generators.
//!
//! The visual search system must be reproducible end-to-end: catalog
//! generation, feature extraction, k-means initialization and the simulated
//! network latency model all consume randomness. This module provides two
//! small, well-known generators — [`SplitMix64`] (for seeding and cheap
//! streams) and [`Xoshiro256`] (xoshiro256**, the workhorse) — plus helpers
//! for uniform floats and Gaussian samples.
//!
//! We implement these by hand instead of depending on `rand` in library code
//! so that the exact bit-streams are pinned by this crate and cannot drift
//! with a dependency upgrade. (`rand` is still used in dev-dependencies for
//! tests that need an independent source.)

/// SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`] and to derive independent per-entity seeds (e.g. one seed
/// per simulated node) from a master experiment seed.
///
/// # Example
///
/// ```
/// use jdvs_vector::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent sub-seed; calling this repeatedly yields a
    /// stream of seeds suitable for seeding per-entity generators.
    pub fn derive_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018): fast, high-quality, 256-bit
/// state general-purpose generator.
///
/// # Example
///
/// ```
/// use jdvs_vector::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(7);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// [`SplitMix64`], per the xoshiro authors' recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` using the top 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased rejection variant).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the multiply-high trick.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_bounded(bound as u64) as usize
    }

    /// Standard Gaussian sample (mean 0, variance 1) via the Marsaglia polar
    /// method. Two samples are generated per rejection round; the spare is
    /// cached-free (recomputed) to keep the generator state a pure function
    /// of draw count.
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Fills `out` with standard Gaussian samples.
    pub fn fill_gaussian(&mut self, out: &mut [f32]) {
        for x in out {
            *x = self.next_gaussian() as f32;
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `n` distinct indices from `[0, bound)` (reservoir sampling);
    /// result order is unspecified but deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `n > bound`.
    pub fn sample_indices(&mut self, bound: usize, n: usize) -> Vec<usize> {
        assert!(
            n <= bound,
            "cannot sample {n} distinct indices from {bound}"
        );
        let mut reservoir: Vec<usize> = (0..n).collect();
        for i in n..bound {
            let j = self.next_index(i + 1);
            if j < n {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain splitmix64.c with seed 0.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent seeds should rarely collide");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.next_bounded(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Xoshiro256::seed_from(1).next_bounded(0);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Xoshiro256::seed_from(2024);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Xoshiro256::seed_from(4);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "indices must be distinct");
        assert!(sample.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = Xoshiro256::seed_from(4);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }
}
