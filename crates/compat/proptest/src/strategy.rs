//! The `Strategy` trait and combinators: value generation without shrinking.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates in a row", self.whence);
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Weighted union of same-valued strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

// --- ranges as strategies ---------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $ty) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $ty) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// --- tuples of strategies ---------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let f = (0.5f32..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i8..=5).generate(&mut r);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let strat = (0u8..10, (0u8..10).prop_map(|v| v as u16 + 100));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut r);
            assert!(a < 10);
            assert!((100..110).contains(&b));
        }
    }

    #[test]
    fn union_honours_weights() {
        let mut r = rng();
        let u = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let ones = (0..1000).filter(|_| u.generate(&mut r) == 1).count();
        assert!(ones > 700, "expected ~900 ones, got {ones}");
    }
}
