//! The multi-query batching experiment: amortized fast-scan block passes
//! across co-arriving queries.
//!
//! One batched engine call probes the union of the batch's nprobe lists
//! and walks each list's interleaved code blocks **once**, scoring every
//! subscribed query against the shared block with its own register-
//! resident LUT set (`fastscan16_multi`). Per-query work — centroid
//! assignment, LUT build, top-k, exact re-rank — is untouched, so the
//! speedup measures exactly what the shared list pass amortizes: the
//! block loads, the nibble expansion, and the validity resolution of
//! surviving lanes. Both arms use the same block-level top-k prune
//! (`lanes_le16` against the quantized `prune_bound`), so the baseline is
//! not handicapped.
//!
//! The world is sized so the probed code blocks do **not** fit in a
//! per-core L2 (600k images ≈ 4.8 MB of interleaved codes): re-streaming
//! them once per query is the real cost co-arriving queries share, which
//! is where production batch gains come from. At cache-resident toy
//! sizes the shared pass has nothing to amortize and batching buys
//! little — that regime is visible under `--quick --scale 0.1`.
//!
//! The batched path is bit-identical to the sequential per-query
//! reference (differentially checked here before timing, and by proptests
//! on both kernel legs in CI), so recall is equal *by construction* and
//! the QPS / per-query-latency frontier is the entire story: throughput
//! rises with batch size while each member's service latency is the whole
//! batch's execution time.

use std::time::Instant;

use jdvs_core::search::{self, MultiQuery};
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_metrics::histogram::Histogram;
use jdvs_storage::model::{ImageKey, ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd;
use jdvs_vector::Vector;

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 64;
const NUM_LISTS: usize = 128;
const K: usize = 10;
const NPROBE: usize = 64;
const RERANK: usize = 8;
const BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32];

fn build(data: &[Vector]) -> VisualIndex {
    let index = VisualIndex::bootstrap(
        IndexConfig {
            dim: DIM,
            num_lists: NUM_LISTS,
            initial_list_capacity: 64,
            kmeans_iters: 6,
            pq_subspaces: Some(16),
            pq_bits: 4,
            rerank_factor: RERANK,
            ..Default::default()
        },
        data,
    );
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("mq/u{i}")),
            )
            .expect("insert");
    }
    index.flush();
    // 5% logical deletions so the validity filter is on the measured path.
    for i in (0..data.len()).step_by(20) {
        let url = format!("mq/u{i}");
        index
            .invalidate(ImageKey::from_url(&url), &url)
            .expect("invalidate");
    }
    index
}

/// One pass of the batched engine over `queries` chunked at `batch`.
/// Returns the pass's wall time; every member of a batch experiences the
/// whole batched call's duration in `latency`.
fn pass_batched(
    index: &VisualIndex,
    queries: &[Vector],
    batch: usize,
    latency: &mut Histogram,
) -> std::time::Duration {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for chunk in queries.chunks(batch) {
        let members: Vec<MultiQuery<'_>> = chunk
            .iter()
            .map(|q| MultiQuery {
                features: q.as_slice(),
                k: K,
                nprobe: NPROBE,
                filter: None,
            })
            .collect();
        let call = Instant::now();
        let results = search::multi_compressed_search(index, &members, RERANK);
        let took = call.elapsed();
        for r in &results {
            sink = sink.wrapping_add(r.len());
            latency.record(took);
        }
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "batched scan returned no results");
    elapsed
}

/// One pass of the sequential single-query engine (the unbatched
/// searcher path) over the same queries.
fn pass_unbatched(
    index: &VisualIndex,
    queries: &[Vector],
    latency: &mut Histogram,
) -> std::time::Duration {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for q in queries {
        let call = Instant::now();
        let r = search::compressed_search_with_threads(index, q.as_slice(), K, NPROBE, RERANK, 1);
        latency.record(call.elapsed());
        sink = sink.wrapping_add(r.len());
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "scan returned no results");
    elapsed
}

/// `batch`: searcher QPS / per-query p99 frontier vs batch size.
pub fn multi_query(ctx: &Ctx) -> ExperimentResult {
    let n_images = ctx.scaled(600_000, 60_000);
    let mut rng = Xoshiro256::seed_from(0xBA7C);
    let data: Vec<Vector> = (0..n_images)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let queries: Vec<Vector> = (0..64)
        .map(|i| data[(i * 131) % n_images].clone())
        .collect();
    let index = build(&data);

    // Differential gate before timing: every member of every batch size
    // must return exactly the sequential per-id reference's results.
    for batch in [1usize, 3, 8] {
        for chunk in queries.chunks(batch).take(2) {
            let members: Vec<MultiQuery<'_>> = chunk
                .iter()
                .map(|q| MultiQuery {
                    features: q.as_slice(),
                    k: K,
                    nprobe: NPROBE,
                    filter: None,
                })
                .collect();
            let batched = search::multi_compressed_search(&index, &members, RERANK);
            for (m, got) in members.iter().zip(&batched) {
                let want =
                    search::compressed_search_reference(&index, m.features, K, NPROBE, RERANK);
                assert_eq!(got, &want, "batched engine diverged from reference");
            }
        }
    }

    // Interleave the arms within every repeat (and discard a warmup pass)
    // so host noise lands on all arms evenly instead of on whichever arm
    // happened to run during a slow patch.
    let repeats = if ctx.quick { 2 } else { 6 };
    let mut scratch = Histogram::new();
    pass_unbatched(&index, &queries, &mut scratch);
    pass_batched(&index, &queries, 8, &mut scratch);
    let mut base_elapsed = std::time::Duration::ZERO;
    let mut base_lat = Histogram::new();
    let mut arm_elapsed = vec![std::time::Duration::ZERO; BATCH_SIZES.len()];
    let mut arm_lat = vec![Histogram::new(); BATCH_SIZES.len()];
    for _ in 0..repeats {
        base_elapsed += pass_unbatched(&index, &queries, &mut base_lat);
        for (i, &batch) in BATCH_SIZES.iter().enumerate() {
            arm_elapsed[i] += pass_batched(&index, &queries, batch, &mut arm_lat[i]);
        }
    }
    let total = (repeats * queries.len()) as f64;
    let base_qps = total / base_elapsed.as_secs_f64();

    let mut r = ExperimentResult::new(
        "batch",
        "Batched multi-query execution: QPS / per-query p99 frontier vs batch size",
        "not in paper — amortizes Section 2.4's PQ scan across co-arriving queries",
    );
    r.push_row(row![
        "batch_size" => "unbatched",
        "qps" => format!("{base_qps:.0}"),
        "speedup_vs_unbatched" => "1.00",
        "p50_us" => base_lat.percentile_us(0.50),
        "p99_us" => base_lat.percentile_us(0.99),
    ]);
    let mut at_8 = 0.0f64;
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        let qps = total / arm_elapsed[i].as_secs_f64();
        if batch == 8 {
            at_8 = qps / base_qps;
        }
        r.push_row(row![
            "batch_size" => batch,
            "qps" => format!("{qps:.0}"),
            "speedup_vs_unbatched" => format!("{:.2}", qps / base_qps),
            "p50_us" => arm_lat[i].percentile_us(0.50),
            "p99_us" => arm_lat[i].percentile_us(0.99),
        ]);
    }
    r.push_row(row![
        "batch_size" => "verdict",
        "speedup_at_8" => format!("{at_8:.2}"),
        "meets_1_5x_bar" => (at_8 >= 1.5).to_string(),
    ]);
    r.note(format!(
        "{n_images} images, dim {DIM}, {NUM_LISTS} lists, nprobe {NPROBE}, k {K}, rerank {RERANK}, \
         4-bit PQ m=16, 5% deleted; active kernel: {}",
        simd::active().name()
    ));
    r.note(
        "recall is equal at every batch size by construction: the batched path is bit-identical \
         to the sequential reference (differentially checked above and by CI proptests on native \
         and forced-scalar kernels)",
    );
    r.note(
        "both arms use the same block-level top-k prune (lanes_le16 vs the quantized \
         prune_bound) and the same nearest-first probe order; arms are interleaved within every \
         repeat so host noise cannot favor one",
    );
    r.note(format!(
        "searcher QPS at batch size 8: {at_8:.2}x unbatched (acceptance bar: >= 1.5x at equal recall)"
    ));
    r
}
