//! Compressed-vector scan mode (product quantization) — interleaved
//! fast-scan layout.
//!
//! The paper's searchers scan raw feature vectors; its related work cites
//! product quantization (Jégou et al., ref \[19\]) as the standard way to
//! shrink the scan-side memory footprint at 100 B-image scale. [`PqStore`]
//! holds every image's PQ code in the layout the scan wants:
//!
//! - Codes live **per inverted list**, keyed by the position
//!   [`crate::inverted::InvertedList::append`] assigned, so a probed list's
//!   codes are one contiguous streak of cache lines instead of a pointer
//!   chase through per-id boxes.
//! - In 4-bit mode, positions are grouped into blocks of
//!   [`FASTSCAN_BLOCK`] codes, **subspace-major within the block**: byte
//!   `t` of subspace `s`'s 16-byte row packs the sub-`s` code of block
//!   lane `t` (low nibble) and lane `t + 16` (high nibble) — exactly the
//!   operand shape of [`jdvs_vector::simd::KernelSet::fastscan16`], so one
//!   `pshufb`/`tbl` scores 32 candidates per subspace.
//! - In 8-bit mode, codes are position-major (`pos · m .. pos · m + m`),
//!   the classic contiguous ADC layout.
//!
//! ## Concurrency
//!
//! Blocks are shared by up to 32 concurrently-inserting writers (and, in
//! 4-bit mode, two *lanes* share each byte), so code bytes live in
//! `AtomicU64` words written with `fetch_or`: every lane's bits start
//! zero and are written exactly once, so OR-merging concurrent writers is
//! exact. Publication follows the repo's standard protocol: the writer
//! ORs the code bits (Relaxed), then sets the position's flag
//! (**Release**); readers load the flag (**Acquire**) before copying
//! words (Relaxed), so an observed flag implies the full code is visible.
//! Unpublished lanes are masked out of scans — they are also never
//! bitmap-visible, because [`crate::index::VisualIndex::insert`] sets the
//! validity bit after `put` returns.
//!
//! The `ablate-pq` experiment quantifies the trade: memory shrinks by
//! `4·d·8/(m·bits)`, distances become approximate (recall dips), and the
//! 4-bit fast-scan path trades a bounded quantization error for the
//! register-resident kernel — which is why compressed search re-ranks.

use crate::sync::{Arc, AtomicU64, AtomicU8, Ordering, RwLock};

use jdvs_vector::pq::{AdcTable, ProductQuantizer, QuantizedAdcTable};
use jdvs_vector::Vector;

use crate::ids::{ImageId, ListId};

/// Codes per 4-bit fast-scan block (one kernel call's worth).
pub const FASTSCAN_BLOCK: usize = jdvs_vector::pq::FASTSCAN_BLOCK;

/// Positions per code segment (8 fast-scan blocks); segment allocation is
/// the only locking writers and readers ever do.
pub const SEGMENT_CODES: usize = 256;

/// Ids per id-map chunk.
const ID_CHUNK: usize = 4096;

/// One segment of a list's code area: flat atomic words holding packed
/// code bytes, plus one publication flag per position.
struct CodeSegment {
    /// Packed code bytes, 8 per word, little-endian byte order (byte `b`
    /// of the segment lives in word `b / 8` at bit `8 · (b % 8)`).
    words: Box<[AtomicU64]>,
    /// 1 once the position's full code is stored; the Release/Acquire
    /// publication point for the bits in `words`.
    flags: Box<[AtomicU8]>,
}

impl CodeSegment {
    fn new(num_words: usize) -> Self {
        Self {
            words: (0..num_words).map(|_| AtomicU64::new(0)).collect(),
            flags: (0..SEGMENT_CODES).map(|_| AtomicU8::new(0)).collect(),
        }
    }
}

/// One inverted list's code area.
struct PqList {
    segments: RwLock<Vec<Arc<CodeSegment>>>,
}

/// A chunk of the id → (list, position) map.
struct IdChunk {
    /// Packed entries: bit 63 = present, bits 32..63 = list, bits 0..32 =
    /// position. Written once per id (Release), read with Acquire.
    slots: Box<[AtomicU64]>,
}

impl IdChunk {
    fn new() -> Self {
        Self {
            slots: (0..ID_CHUNK).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

const ID_PRESENT: u64 = 1 << 63;

/// Append-only store of PQ codes in the interleaved fast-scan layout; see
/// the module docs.
pub struct PqStore {
    quantizer: std::sync::Arc<ProductQuantizer>,
    /// Cached `quantizer.num_subspaces()`.
    m: usize,
    /// Cached `quantizer.bits() == 4`.
    four_bit: bool,
    lists: Box<[PqList]>,
    id_chunks: RwLock<Vec<Arc<IdChunk>>>,
}

impl std::fmt::Debug for PqStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqStore")
            .field("subspaces", &self.m)
            .field("bits", &self.quantizer.bits())
            .field("lists", &self.lists.len())
            .finish()
    }
}

impl PqStore {
    /// Creates a store over a trained quantizer, with one code area per
    /// inverted list.
    ///
    /// # Panics
    ///
    /// Panics if `num_lists == 0`.
    pub fn new(quantizer: std::sync::Arc<ProductQuantizer>, num_lists: usize) -> Self {
        assert!(num_lists > 0, "num_lists must be positive");
        let m = quantizer.num_subspaces();
        let four_bit = quantizer.bits() == 4;
        Self {
            quantizer,
            m,
            four_bit,
            lists: (0..num_lists)
                .map(|_| PqList {
                    segments: RwLock::new(Vec::new()),
                })
                .collect(),
            id_chunks: RwLock::new(Vec::new()),
        }
    }

    /// The underlying quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.quantizer
    }

    /// The shared codebook handle (for seeding sibling indexes with the
    /// same quantizers).
    pub fn quantizer_arc(&self) -> std::sync::Arc<ProductQuantizer> {
        std::sync::Arc::clone(&self.quantizer)
    }

    /// Unpacked bytes per code (`m`).
    pub fn code_len(&self) -> usize {
        self.m
    }

    /// Whether the 4-bit fast-scan layout is active.
    pub fn is_four_bit(&self) -> bool {
        self.four_bit
    }

    /// Packed storage bytes per vector (`m·bits/8`, rounded up).
    pub fn bytes_per_vector(&self) -> usize {
        (self.m * usize::from(self.quantizer.bits())).div_ceil(8)
    }

    /// Atomic words per segment: `SEGMENT_CODES` positions of
    /// `m·bits` bits each, 64 bits per word.
    fn words_per_segment(&self) -> usize {
        SEGMENT_CODES * self.m * usize::from(self.quantizer.bits()) / 64
    }

    /// Byte offset (within a segment) of subspace `sub` of position `off`,
    /// plus the in-byte nibble shift (always 0 in 8-bit mode).
    #[inline]
    fn byte_of(&self, off: usize, sub: usize) -> (usize, u32) {
        if self.four_bit {
            let block = off / FASTSCAN_BLOCK;
            let lane = off % FASTSCAN_BLOCK;
            let byte = block * self.m * 16 + sub * 16 + lane % 16;
            (byte, if lane < 16 { 0 } else { 4 })
        } else {
            (off * self.m + sub, 0)
        }
    }

    /// The segment holding `seg_idx`, allocating it (and any gap) if
    /// needed.
    fn segment(&self, list: ListId, seg_idx: usize) -> Arc<CodeSegment> {
        let list = &self.lists[list.as_usize()];
        {
            let segs = list.segments.read();
            if let Some(s) = segs.get(seg_idx) {
                return Arc::clone(s);
            }
        }
        let mut segs = list.segments.write();
        while segs.len() <= seg_idx {
            segs.push(Arc::new(CodeSegment::new(self.words_per_segment())));
        }
        Arc::clone(&segs[seg_idx])
    }

    /// Encodes and stores `vector` as the code of position `pos` of `list`
    /// (the position [`crate::inverted::InvertedIndex::append`] returned
    /// for `id`), then registers `id → (list, pos)`. Write-once: a
    /// position whose flag is already set is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `vector`'s dimension differs from the quantizer's or
    /// `list` is out of range.
    pub fn put(&self, id: ImageId, list: ListId, pos: usize, vector: &Vector) {
        let code = self.quantizer.encode(vector.as_slice());
        let seg = self.segment(list, pos / SEGMENT_CODES);
        let off = pos % SEGMENT_CODES;
        // Relaxed: a set flag only tells us some complete code already
        // occupies the position (write-once guard against API misuse);
        // nothing is read from the words on this path.
        if seg.flags[off].load(Ordering::Relaxed) != 0 {
            return;
        }
        for (sub, &c) in code.iter().enumerate() {
            let (byte, nibble_shift) = self.byte_of(off, sub);
            debug_assert!(!self.four_bit || c < 16, "4-bit code out of range");
            let bits = u64::from(c) << nibble_shift << ((byte % 8) * 8);
            // Relaxed RMW: each lane's bits are zero until its single
            // writer ORs them in, so concurrent writers to the shared
            // word (other lanes of the block) merge exactly. The bits
            // are published by the flag store below.
            seg.words[byte / 8].fetch_or(bits, Ordering::Relaxed);
        }
        // Release: pairs with the Acquire flag loads in
        // `PqListReader::{load_group, read_code}` and `PqStore::locate`
        // readers — a reader that observes the flag observes every
        // `fetch_or` above.
        seg.flags[off].store(1, Ordering::Release);

        let chunk_idx = id.as_usize() / ID_CHUNK;
        {
            let chunks = self.id_chunks.read();
            if chunks.len() <= chunk_idx {
                drop(chunks);
                let mut chunks = self.id_chunks.write();
                while chunks.len() <= chunk_idx {
                    chunks.push(Arc::new(IdChunk::new()));
                }
            }
        }
        let entry = ID_PRESENT | (list.as_usize() as u64) << 32 | pos as u64;
        // Release: pairs with the Acquire load in `locate`, so an id-keyed
        // reader that finds the entry also finds the flag (stored above in
        // program order) and therefore the code bits.
        self.id_chunks.read()[chunk_idx].slots[id.as_usize() % ID_CHUNK]
            .store(entry, Ordering::Release);
    }

    /// The (list, position) a code was stored under, if `id` was put.
    pub fn locate(&self, id: ImageId) -> Option<(ListId, usize)> {
        let chunks = self.id_chunks.read();
        let chunk = chunks.get(id.as_usize() / ID_CHUNK)?;
        // Acquire: pairs with the Release store in `put`; see there.
        let entry = chunk.slots[id.as_usize() % ID_CHUNK].load(Ordering::Acquire);
        if entry & ID_PRESENT == 0 {
            return None;
        }
        Some((
            ListId(((entry >> 32) & 0x7fff_ffff) as u32),
            (entry & 0xffff_ffff) as usize,
        ))
    }

    /// A pinned, lock-free reader over one list's codes — the scan path's
    /// view: pins the list's segments once per query.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn list_reader(&self, list: ListId) -> PqListReader {
        PqListReader {
            segments: self.lists[list.as_usize()]
                .segments
                .read()
                .iter()
                .map(Arc::clone)
                .collect(),
            m: self.m,
            four_bit: self.four_bit,
        }
    }

    /// Builds the per-query f32 ADC table.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s dimension differs from the quantizer's.
    pub fn adc_table(&self, query: &[f32]) -> AdcTable {
        self.quantizer.adc_table(query)
    }

    /// Builds the per-query quantized u8 LUTs for the fast-scan kernels.
    ///
    /// # Panics
    ///
    /// Panics if the store is not in 4-bit mode or `query`'s dimension
    /// differs from the quantizer's.
    pub fn quantized_adc_table(&self, query: &[f32]) -> QuantizedAdcTable {
        self.quantizer.quantized_adc_table(query)
    }

    /// Reads `id`'s unpacked code into `code`; `false` if never written.
    ///
    /// # Panics
    ///
    /// Panics if `code.len() != self.code_len()`.
    pub fn code_into(&self, id: ImageId, code: &mut [u8]) -> bool {
        let Some((list, pos)) = self.locate(id) else {
            return false;
        };
        self.list_reader(list).read_code(pos, code)
    }

    /// Approximate squared distance from the tabled query to `id` (`None`
    /// if the id was never written).
    pub fn distance(&self, table: &AdcTable, id: ImageId) -> Option<f32> {
        let mut code = vec![0u8; self.m];
        self.code_into(id, &mut code).then(|| table.distance(&code))
    }

    /// Quantized fast-scan distance of `id` — the per-id twin of the block
    /// kernels, bit-identical to a masked
    /// [`jdvs_vector::simd::KernelSet::fastscan16`] lane (`None` if the id
    /// was never written).
    pub fn quantized_distance(&self, table: &QuantizedAdcTable, id: ImageId) -> Option<f32> {
        let mut code = vec![0u8; self.m];
        self.code_into(id, &mut code).then(|| table.distance(&code))
    }

    /// Scans every written code in **id order**, calling `f(id, distance)`
    /// — the ablation-bench bulk path. Pins every list's segments once.
    pub fn scan(&self, table: &AdcTable, mut f: impl FnMut(ImageId, f32)) {
        let readers: Vec<PqListReader> = (0..self.lists.len())
            .map(|l| self.list_reader(ListId(l as u32)))
            .collect();
        let chunks: Vec<Arc<IdChunk>> = self.id_chunks.read().iter().map(Arc::clone).collect();
        let mut code = vec![0u8; self.m];
        for (ci, chunk) in chunks.iter().enumerate() {
            for (si, slot) in chunk.slots.iter().enumerate() {
                // Acquire: pairs with the Release store in `put`.
                let entry = slot.load(Ordering::Acquire);
                if entry & ID_PRESENT == 0 {
                    continue;
                }
                let list = ((entry >> 32) & 0x7fff_ffff) as usize;
                let pos = (entry & 0xffff_ffff) as usize;
                if readers[list].read_code(pos, &mut code) {
                    f(ImageId((ci * ID_CHUNK + si) as u32), table.distance(&code));
                }
            }
        }
    }

    /// Reconstructs the approximate vector stored for `id`.
    pub fn decode(&self, id: ImageId) -> Option<Vector> {
        let mut code = vec![0u8; self.m];
        self.code_into(id, &mut code)
            .then(|| self.quantizer.decode(&code))
    }
}

/// A pinned, lock-free view of one list's codes; see
/// [`PqStore::list_reader`].
pub struct PqListReader {
    segments: Vec<Arc<CodeSegment>>,
    m: usize,
    four_bit: bool,
}

impl std::fmt::Debug for PqListReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqListReader")
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl PqListReader {
    /// Bytes of one fast-scan tile (`m × 16`, the `load_group` buffer).
    pub fn tile_len(&self) -> usize {
        self.m * 16
    }

    /// Copies the interleaved block starting at position `base` into
    /// `tile` (kernel operand order) and returns the mask of **published**
    /// lanes: bit `i` set means position `base + i`'s code is complete.
    /// Unpublished lanes' bytes are unspecified — kernel sums for them
    /// must be discarded via the mask.
    ///
    /// # Panics
    ///
    /// Panics unless the store is 4-bit, `base` is block-aligned, and
    /// `tile.len() == self.tile_len()`.
    pub fn load_group(&self, base: usize, tile: &mut [u8]) -> u32 {
        assert!(self.four_bit, "fast-scan groups require the 4-bit layout");
        assert_eq!(base % FASTSCAN_BLOCK, 0, "group base must be block-aligned");
        assert_eq!(tile.len(), self.tile_len(), "tile length mismatch");
        let Some(seg) = self.segments.get(base / SEGMENT_CODES) else {
            return 0;
        };
        let off = base % SEGMENT_CODES;
        let mut mask = 0u32;
        for i in 0..FASTSCAN_BLOCK {
            // Acquire: pairs with the Release flag store in
            // `PqStore::put` — once observed, the word loads below see
            // every code bit of lane `i`.
            if seg.flags[off + i].load(Ordering::Acquire) != 0 {
                mask |= 1 << i;
            }
        }
        if mask == 0 {
            return 0;
        }
        let words_per_block = self.m * 16 / 8;
        let word_base = (off / FASTSCAN_BLOCK) * words_per_block;
        for (w, chunk) in tile.chunks_exact_mut(8).enumerate() {
            // Relaxed: ordered by the Acquire flag loads above for every
            // lane the mask admits; bits of unpublished lanes may be
            // mid-write but are never interpreted.
            chunk.copy_from_slice(
                &seg.words[word_base + w]
                    .load(Ordering::Relaxed)
                    .to_le_bytes(),
            );
        }
        mask
    }

    /// Reads the unpacked code at `pos` into `code`; `false` if the
    /// position is unwritten (or beyond the allocated segments).
    ///
    /// # Panics
    ///
    /// Panics if `code.len()` differs from the number of subspaces.
    pub fn read_code(&self, pos: usize, code: &mut [u8]) -> bool {
        assert_eq!(code.len(), self.m, "code length mismatch");
        let Some(seg) = self.segments.get(pos / SEGMENT_CODES) else {
            return false;
        };
        let off = pos % SEGMENT_CODES;
        // Acquire: pairs with the Release flag store in `PqStore::put`.
        if seg.flags[off].load(Ordering::Acquire) == 0 {
            return false;
        }
        for (sub, out) in code.iter_mut().enumerate() {
            let (byte, nibble_shift) = byte_of(self.four_bit, self.m, off, sub);
            // Relaxed: ordered by the Acquire flag load above.
            let word = seg.words[byte / 8].load(Ordering::Relaxed);
            let b = (word >> ((byte % 8) * 8)) as u8;
            *out = if self.four_bit {
                (b >> nibble_shift) & 0x0f
            } else {
                b
            };
        }
        true
    }
}

/// Free-function twin of [`PqStore::byte_of`] for the reader (which does
/// not hold the store).
#[inline]
fn byte_of(four_bit: bool, m: usize, off: usize, sub: usize) -> (usize, u32) {
    if four_bit {
        let block = off / FASTSCAN_BLOCK;
        let lane = off % FASTSCAN_BLOCK;
        let byte = block * m * 16 + sub * 16 + lane % 16;
        (byte, if lane < 16 { 0 } else { 4 })
    } else {
        (off * m + sub, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_vector::pq::PqConfig;
    use jdvs_vector::rng::Xoshiro256;

    fn trained(dim: usize, m: usize, bits: u8) -> (std::sync::Arc<ProductQuantizer>, Vec<Vector>) {
        let mut rng = Xoshiro256::seed_from(4);
        let data: Vec<Vector> = (0..400)
            .map(|_| (0..dim).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let pq = ProductQuantizer::train(
            &data,
            &PqConfig {
                num_subspaces: m,
                max_iters: 6,
                seed: 1,
                bits,
            },
        );
        (std::sync::Arc::new(pq), data)
    }

    #[test]
    fn put_then_distance_round_trip() {
        let (pq, data) = trained(16, 4, 8);
        let store = PqStore::new(pq, 2);
        for (i, v) in data.iter().take(50).enumerate() {
            store.put(ImageId(i as u32), ListId(0), i, v);
        }
        let table = store.adc_table(data[0].as_slice());
        let d_self = store.distance(&table, ImageId(0)).unwrap();
        let d_other = store.distance(&table, ImageId(25)).unwrap();
        assert!(
            d_self < d_other,
            "self-distance {d_self} must beat {d_other}"
        );
        assert!(store.distance(&table, ImageId(9_999)).is_none());
    }

    #[test]
    fn four_bit_codes_round_trip_through_nibble_packing() {
        let (pq, data) = trained(16, 8, 4);
        let store = PqStore::new(std::sync::Arc::clone(&pq), 2);
        // Spread across both lists and past one segment so hi/lo nibbles,
        // partial tail blocks and the segment boundary are all exercised.
        for (i, v) in data.iter().enumerate() {
            let list = ListId((i % 2) as u32);
            store.put(ImageId(i as u32), list, i / 2 + 200, v);
        }
        let mut code = vec![0u8; 8];
        for (i, v) in data.iter().enumerate() {
            assert!(store.code_into(ImageId(i as u32), &mut code));
            assert_eq!(code, pq.encode(v.as_slice()), "id {i}");
        }
    }

    #[test]
    fn load_group_matches_per_id_distances_bit_exactly() {
        let (pq, data) = trained(16, 8, 4);
        let store = PqStore::new(std::sync::Arc::clone(&pq), 1);
        // 77 codes: two full blocks plus a partial tail block.
        for (i, v) in data.iter().take(77).enumerate() {
            store.put(ImageId(i as u32), ListId(0), i, v);
        }
        let table = store.quantized_adc_table(data[5].as_slice());
        let reader = store.list_reader(ListId(0));
        let mut tile = vec![0u8; reader.tile_len()];
        let mut acc = [0u16; FASTSCAN_BLOCK];
        for base in (0..96).step_by(FASTSCAN_BLOCK) {
            let mask = reader.load_group(base, &mut tile);
            jdvs_vector::simd::active().fastscan16(&tile, table.luts(), &mut acc);
            for (lane, &lane_acc) in acc.iter().enumerate() {
                let pos = base + lane;
                let published = mask & (1 << lane) != 0;
                assert_eq!(published, pos < 77, "lane publication at pos {pos}");
                if published {
                    let per_id = store
                        .quantized_distance(&table, ImageId(pos as u32))
                        .unwrap();
                    assert_eq!(
                        table.to_f32(lane_acc).to_bits(),
                        per_id.to_bits(),
                        "pos {pos}"
                    );
                }
            }
        }
        assert_eq!(reader.load_group(SEGMENT_CODES * 4, &mut tile), 0);
    }

    #[test]
    fn decode_approximates_original() {
        let (pq, data) = trained(16, 8, 8);
        let store = PqStore::new(pq, 1);
        store.put(ImageId(0), ListId(0), 0, &data[0]);
        let approx = store.decode(ImageId(0)).unwrap();
        let err = jdvs_vector::distance::squared_l2(approx.as_slice(), data[0].as_slice());
        let base = data[0].squared_norm();
        assert!(err < base, "reconstruction beats the origin baseline");
        assert!(store.decode(ImageId(1)).is_none());
    }

    #[test]
    fn positions_are_write_once() {
        let (pq, data) = trained(8, 2, 8);
        let store = PqStore::new(pq, 1);
        store.put(ImageId(0), ListId(0), 0, &data[0]);
        store.put(ImageId(0), ListId(0), 0, &data[1]);
        let decoded = store.decode(ImageId(0)).unwrap();
        let d0 = jdvs_vector::distance::squared_l2(decoded.as_slice(), data[0].as_slice());
        let d1 = jdvs_vector::distance::squared_l2(decoded.as_slice(), data[1].as_slice());
        assert!(d0 <= d1, "first write wins");
    }

    #[test]
    fn compression_ratio_is_as_advertised() {
        let (pq, _) = trained(32, 8, 8);
        let store = PqStore::new(pq, 1);
        assert_eq!(store.bytes_per_vector(), 8);
        assert_eq!(store.code_len(), 8);
        // Raw storage would be 32 * 4 = 128 bytes: 16x compression.
        let (pq4, _) = trained(32, 8, 4);
        assert_eq!(PqStore::new(pq4, 1).bytes_per_vector(), 4); // 32x
    }

    #[test]
    fn scan_visits_every_written_id_in_id_order() {
        let (pq, data) = trained(8, 2, 8);
        let store = PqStore::new(pq, 3);
        for (i, v) in data.iter().take(40).enumerate() {
            // Sparse ids, positions independent of ids.
            store.put(ImageId(i as u32 * 3), ListId((i % 3) as u32), i / 3, v);
        }
        let table = store.adc_table(data[0].as_slice());
        let mut seen = Vec::new();
        store.scan(&table, |id, d| {
            assert_eq!(Some(d), store.distance(&table, id));
            seen.push(id.0);
        });
        assert_eq!(seen, (0..40u32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn spans_segments() {
        let (pq, data) = trained(8, 2, 8);
        let store = PqStore::new(pq, 1);
        let pos = SEGMENT_CODES * 2 + 3;
        store.put(ImageId(7), ListId(0), pos, &data[0]);
        assert_eq!(store.locate(ImageId(7)), Some((ListId(0), pos)));
        assert!(store.decode(ImageId(7)).is_some());
        // Gap segments exist but hold nothing.
        let reader = store.list_reader(ListId(0));
        let mut code = vec![0u8; 2];
        assert!(!reader.read_code(3, &mut code));
        assert!(reader.read_code(pos, &mut code));
    }

    /// Satellite coverage: concurrent inserters share tail blocks (and, in
    /// 4-bit mode, nibble bytes) while readers scan mid-write; every
    /// published lane must already read back its exact final code.
    #[test]
    fn concurrent_inserts_into_shared_tail_blocks_are_exact() {
        let (pq, data) = trained(16, 8, 4);
        let store = std::sync::Arc::new(PqStore::new(std::sync::Arc::clone(&pq), 1));
        let n = 320usize; // 10 blocks
        let writers = 8usize;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(writers + 1));
        std::thread::scope(|s| {
            for w in 0..writers {
                let store = std::sync::Arc::clone(&store);
                let data = &data;
                let barrier = std::sync::Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    // Interleaved positions: every writer hits every block,
                    // and adjacent writers share nibble bytes.
                    for pos in (w..n).step_by(writers) {
                        store.put(ImageId(pos as u32), ListId(0), pos, &data[pos]);
                    }
                });
            }
            let store = std::sync::Arc::clone(&store);
            let barrier = std::sync::Arc::clone(&barrier);
            let pq = std::sync::Arc::clone(&pq);
            let data = &data;
            s.spawn(move || {
                barrier.wait();
                // Race reads against the writers: any published lane must
                // already hold its final, exact code.
                let mut tile = vec![0u8; 8 * 16];
                let mut code = vec![0u8; 8];
                for _ in 0..50 {
                    let reader = store.list_reader(ListId(0));
                    for base in (0..n).step_by(FASTSCAN_BLOCK) {
                        let mask = reader.load_group(base, &mut tile);
                        for lane in 0..FASTSCAN_BLOCK {
                            if mask & (1 << lane) == 0 {
                                continue;
                            }
                            let pos = base + lane;
                            assert!(reader.read_code(pos, &mut code));
                            assert_eq!(code, pq.encode(data[pos].as_slice()), "pos {pos}");
                        }
                    }
                }
            });
        });
        // After the race: everything published and exact.
        let mut code = vec![0u8; 8];
        for (pos, v) in data.iter().enumerate().take(n) {
            assert!(store.code_into(ImageId(pos as u32), &mut code));
            assert_eq!(code, pq.encode(v.as_slice()), "pos {pos}");
        }
    }
}
