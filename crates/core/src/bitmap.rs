//! The validity bitmap.
//!
//! Section 2.1: *"A bitmap is used to indicate if a product or image is
//! valid or not. When a product is removed from the market, it is marked
//! invalid and excluded from the indexing and search processes."*
//!
//! Deletion in jdvs is **logical**: flipping one bit, visible to all
//! concurrent searches immediately, with no index restructuring. Physical
//! cleanup happens at the next weekly full-index build. [`AtomicBitmap`]
//! packs 64 validity flags per `AtomicU64` word; set/clear/test are single
//! atomic ops. The word array grows amortized-doubling behind a `RwLock`
//! spine — readers pay one uncontended read-lock acquisition, writers only
//! take the write lock on (rare) growth.

use crate::sync::{AtomicU64, Ordering, RwLock, RwLockReadGuard};

/// A growable, thread-safe bitmap.
///
/// # Example
///
/// ```
/// use jdvs_core::bitmap::AtomicBitmap;
///
/// let bm = AtomicBitmap::new();
/// bm.set(100);
/// assert!(bm.test(100));
/// assert!(!bm.test(99));
/// bm.clear(100);
/// assert!(!bm.test(100));
/// ```
#[derive(Debug, Default)]
pub struct AtomicBitmap {
    words: RwLock<Vec<AtomicU64>>,
}

impl AtomicBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap pre-sized for at least `bits` flags.
    pub fn with_capacity(bits: usize) -> Self {
        let words = bits.div_ceil(64);
        Self {
            words: RwLock::new((0..words).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Sets bit `index` to 1 (image becomes valid), growing as needed.
    pub fn set(&self, index: usize) {
        self.ensure(index);
        let words = self.words.read();
        // Release: pairs with the Acquire loads in `test`/`for_each_valid`
        // so a scan that sees the bit flip also sees whatever the flipper
        // wrote before it (e.g. the forward-index record for a re-listing).
        words[index / 64].fetch_or(1 << (index % 64), Ordering::Release);
    }

    /// Clears bit `index` to 0 (image becomes invalid), growing as needed.
    pub fn clear(&self, index: usize) {
        self.ensure(index);
        let words = self.words.read();
        // Release: see `set`.
        words[index / 64].fetch_and(!(1 << (index % 64)), Ordering::Release);
    }

    /// Writes bit `index` to `value`.
    pub fn assign(&self, index: usize, value: bool) {
        if value {
            self.set(index);
        } else {
            self.clear(index);
        }
    }

    /// Tests bit `index`; out-of-range bits read as 0 (an image the bitmap
    /// has never covered is invalid by definition).
    pub fn test(&self, index: usize) -> bool {
        let words = self.words.read();
        match words.get(index / 64) {
            // Acquire: pairs with the Release RMWs in `set`/`clear`.
            Some(w) => w.load(Ordering::Acquire) & (1 << (index % 64)) != 0,
            None => false,
        }
    }

    /// Pins the word array once and returns a reader for repeated tests —
    /// the scan hot path: one read-lock acquisition covers a whole query
    /// instead of one per candidate. Bit flips made while the reader is
    /// live remain visible (the words themselves are atomics); only
    /// *growth* past the pinned capacity is missed, and fresh bits are
    /// invalid anyway.
    pub fn reader(&self) -> BitmapReader<'_> {
        BitmapReader {
            words: self.words.read(),
        }
    }

    /// Calls `f(index)` for every set bit below `limit`, testing 64 flags
    /// per word load and skipping all-clear words outright.
    pub fn for_each_valid(&self, limit: usize, mut f: impl FnMut(usize)) {
        let words = self.words.read();
        let last_word = limit.div_ceil(64).min(words.len());
        for (wi, word) in words[..last_word].iter().enumerate() {
            let mut bits = word.load(Ordering::Acquire);
            if (wi + 1) * 64 > limit {
                bits &= (1u64 << (limit % 64)) - 1;
            }
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                f(wi * 64 + bit);
                bits &= bits - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .read()
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// Current capacity in bits.
    pub fn capacity(&self) -> usize {
        self.words.read().len() * 64
    }

    /// Grows the word array (amortized doubling) so `index` is addressable.
    fn ensure(&self, index: usize) {
        let needed = index / 64 + 1;
        if self.words.read().len() >= needed {
            return;
        }
        let mut words = self.words.write();
        // Re-check under the write lock; another writer may have grown.
        let target = needed.max(words.len() * 2).max(4);
        while words.len() < target {
            words.push(AtomicU64::new(0));
        }
    }
}

/// A pinned view of the bitmap for repeated lock-free tests; see
/// [`AtomicBitmap::reader`].
pub struct BitmapReader<'a> {
    words: RwLockReadGuard<'a, Vec<AtomicU64>>,
}

impl std::fmt::Debug for BitmapReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitmapReader")
            .field("capacity", &(self.words.len() * 64))
            .finish()
    }
}

impl BitmapReader<'_> {
    /// Tests bit `index`; bits beyond the pinned capacity read as 0.
    #[inline]
    pub fn test(&self, index: usize) -> bool {
        match self.words.get(index / 64) {
            // Acquire: pairs with the Release RMWs in set/clear — a block
            // scan sees flips made after the reader was pinned.
            Some(w) => w.load(Ordering::Acquire) & (1 << (index % 64)) != 0,
            None => false,
        }
    }

    /// Loads the whole 64-flag word `wi` (covering bits `wi*64..wi*64+64`);
    /// words beyond the pinned capacity read as 0. Filtered scans AND
    /// these across constraint bitmaps to reject 64 ids per load instead
    /// of testing lane by lane.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        match self.words.get(wi) {
            // Acquire: see `test`.
            Some(w) => w.load(Ordering::Acquire),
            None => 0,
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_bits_are_clear() {
        let bm = AtomicBitmap::new();
        assert!(!bm.test(0));
        assert!(!bm.test(1_000_000));
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn set_test_clear_round_trip() {
        let bm = AtomicBitmap::new();
        bm.set(5);
        bm.set(64);
        bm.set(65);
        assert!(bm.test(5));
        assert!(bm.test(64));
        assert!(bm.test(65));
        assert!(!bm.test(6));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.test(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn assign_maps_to_set_and_clear() {
        let bm = AtomicBitmap::new();
        bm.assign(10, true);
        assert!(bm.test(10));
        bm.assign(10, false);
        assert!(!bm.test(10));
    }

    #[test]
    fn clear_beyond_capacity_grows_but_stays_zero() {
        let bm = AtomicBitmap::new();
        bm.clear(10_000);
        assert!(!bm.test(10_000));
        assert!(bm.capacity() > 10_000);
    }

    #[test]
    fn with_capacity_presizes() {
        let bm = AtomicBitmap::with_capacity(1000);
        assert!(bm.capacity() >= 1000);
    }

    #[test]
    fn word_boundaries_are_independent() {
        let bm = AtomicBitmap::new();
        bm.set(63);
        bm.set(64);
        bm.clear(63);
        assert!(!bm.test(63));
        assert!(bm.test(64));
    }

    #[test]
    fn concurrent_disjoint_sets_are_lossless() {
        let bm = Arc::new(AtomicBitmap::new());
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        bm.set(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 8_000);
        for b in 0..8_000 {
            assert!(bm.test(b));
        }
    }

    #[test]
    fn reader_matches_test_and_sees_live_clears() {
        let bm = AtomicBitmap::new();
        for i in [0usize, 5, 63, 64, 200] {
            bm.set(i);
        }
        let r = bm.reader();
        for i in 0..256 {
            assert_eq!(r.test(i), bm.test(i), "bit {i}");
        }
        // A clear made while the reader is pinned must be visible: the
        // stage-2 rerank recheck depends on this.
        bm.clear(64);
        assert!(!r.test(64));
        assert!(!r.test(1 << 30), "beyond pinned capacity reads 0");
    }

    #[test]
    fn for_each_valid_enumerates_set_bits_within_limit() {
        let bm = AtomicBitmap::new();
        let set = [0usize, 1, 63, 64, 65, 127, 128, 300];
        for &i in &set {
            bm.set(i);
        }
        let mut seen = Vec::new();
        bm.for_each_valid(301, |i| seen.push(i));
        assert_eq!(seen, set.to_vec());
        seen.clear();
        bm.for_each_valid(65, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 63, 64], "limit is exclusive");
        seen.clear();
        bm.for_each_valid(0, |i| seen.push(i));
        assert!(seen.is_empty());
        seen.clear();
        bm.for_each_valid((1 << 20) | 7, |i| seen.push(i));
        assert_eq!(seen, set.to_vec(), "limit beyond capacity is fine");
    }

    #[test]
    fn concurrent_growth_is_safe() {
        let bm = Arc::new(AtomicBitmap::new());
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let bm = Arc::clone(&bm);
                std::thread::spawn(move || {
                    // Each thread forces growth at staggered offsets.
                    for i in 0..100 {
                        bm.set(t * 50_000 + i * 97);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bm.count_ones(), 400);
    }
}
