//! Chaos harness: drives a full [`World`] under randomized faults and
//! checks the serving path's degraded-mode contract.
//!
//! The scenario is deterministic for a given seed: a fixed set of searcher
//! replicas is killed up front, survivors get a drop probability, and a
//! seeded schedule of *flaps* (crash/recover cycles) and *stragglers*
//! (temporary slowdowns) perturbs the stack while queries flow. After each
//! query the harness audits the response against the accounting contract:
//!
//! - **identity** — `partitions_ok + partitions_timed_out +
//!   partitions_failed + partitions_shed == partitions_total`;
//! - **no silent loss** — `partitions_total` always equals the topology's
//!   partition count, so a response can never claim completeness while
//!   whole broker groups are missing from the audit trail.
//!
//! [`ChaosReport`] summarizes availability (fraction of queries answered
//! within the end-to-end budget), degradation, and any contract
//! violations; integration tests assert SLOs on it.

use std::time::{Duration, Instant};

use jdvs_metrics::ResilienceSnapshot;
use jdvs_vector::rng::Xoshiro256;

use crate::queries::QueryGenerator;
use crate::scenario::World;

/// Shape of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Queries to drive through the stack.
    pub queries: usize,
    /// Results requested per query.
    pub k: usize,
    /// End-to-end deadline budget per query (stamped by the client).
    pub deadline: Duration,
    /// Scheduling grace added to `deadline` when judging "within budget"
    /// (the budget machinery bounds the *call*; the harness thread still
    /// pays context-switch noise on top).
    pub grace: Duration,
    /// Searcher replicas taken down per partition before the run, starting
    /// at replica 0. Must leave at least one replica up.
    pub kill_replicas_per_partition: usize,
    /// Drop probability injected into every surviving searcher replica.
    pub drop_probability: f64,
    /// Every `flap_every` queries a random surviving replica crashes and
    /// the previously flapped one recovers (`0` disables flapping).
    pub flap_every: usize,
    /// Every `straggle_every` queries a random surviving replica gets a
    /// `straggler_slowdown` penalty and the previous straggler is healed
    /// (`0` disables stragglers).
    pub straggle_every: usize,
    /// Slowdown applied to the current straggler.
    pub straggler_slowdown: Duration,
    /// Seed for the fault schedule (queries use their own generator seed).
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            queries: 100,
            k: 5,
            deadline: Duration::from_secs(2),
            grace: Duration::from_millis(250),
            kill_replicas_per_partition: 0,
            drop_probability: 0.0,
            flap_every: 0,
            straggle_every: 0,
            straggler_slowdown: Duration::from_millis(50),
            seed: 0xC4A05,
        }
    }
}

/// Outcome of a chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Queries driven.
    pub queries: usize,
    /// Queries that returned `Ok` (possibly degraded).
    pub ok: usize,
    /// Queries that returned an RPC error (every blender failed).
    pub errors: usize,
    /// Queries answered within `deadline + grace`.
    pub within_budget: usize,
    /// `Ok` responses covering every partition.
    pub complete: usize,
    /// `Ok` responses with at least one partition lost (and accounted).
    pub degraded: usize,
    /// Responses violating `ok + timed_out + failed == total`.
    pub accounting_violations: usize,
    /// Responses whose `partitions_total` fell short of the topology's
    /// partition count — lost work that left no audit trail.
    pub silently_incomplete: usize,
    /// Slowest observed query.
    pub max_latency: Duration,
    /// Resilience counters accumulated during the run (delta from the
    /// run's start).
    pub metrics: ResilienceSnapshot,
}

impl ChaosReport {
    /// Fraction of queries answered within the end-to-end budget.
    pub fn availability(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.within_budget as f64 / self.queries as f64
        }
    }
}

/// One scheduled fault slot: partition + replica currently affected.
#[derive(Debug, Clone, Copy)]
struct FaultSlot {
    partition: usize,
    replica: usize,
}

/// Runs the chaos scenario against `world`'s topology.
///
/// Faults are injected into searcher replicas only (the paper's
/// availability story: "each partition can have multiple copies"); blender
/// and broker replicas stay healthy so every query failure observed is a
/// partition-level event the accounting must capture. All injected faults
/// are cleared before returning.
///
/// # Panics
///
/// Panics if the kill count would leave a partition with no replicas, or
/// if `drop_probability` is outside `[0, 1]`.
pub fn run_chaos(world: &World, config: &ChaosConfig) -> ChaosReport {
    let shape = world.topology().indexes();
    let num_partitions = shape.len();
    let replicas = shape.first().map(Vec::len).unwrap_or(0);
    assert!(
        config.kill_replicas_per_partition < replicas,
        "must leave at least one live replica per partition"
    );
    assert!(
        (0.0..=1.0).contains(&config.drop_probability),
        "drop_probability must be in [0, 1]"
    );
    let survivors: Vec<usize> = (config.kill_replicas_per_partition..replicas).collect();

    // Static faults: dead replicas and lossy survivors.
    for p in 0..num_partitions {
        for r in 0..config.kill_replicas_per_partition {
            world.topology().searcher_faults(p, r).set_down(true);
        }
        for &r in &survivors {
            world
                .topology()
                .searcher_faults(p, r)
                .set_drop_probability(config.drop_probability);
        }
    }

    let mut rng = Xoshiro256::seed_from(config.seed);
    let generator = QueryGenerator::new(world.catalog(), config.seed ^ 0x9E37);
    let client = world.client(config.deadline);
    let before = world.topology().resilience_snapshot();

    let mut flapped: Option<FaultSlot> = None;
    let mut straggler: Option<FaultSlot> = None;
    let mut report = ChaosReport {
        queries: config.queries,
        ok: 0,
        errors: 0,
        within_budget: 0,
        complete: 0,
        degraded: 0,
        accounting_violations: 0,
        silently_incomplete: 0,
        max_latency: Duration::ZERO,
        metrics: ResilienceSnapshot::default(),
    };

    for i in 0..config.queries {
        // Rotate the flapping crash: recover the previous victim, down a
        // new one. Never flap while only one survivor exists.
        if config.flap_every > 0 && i % config.flap_every == 0 && survivors.len() > 1 {
            if let Some(slot) = flapped.take() {
                world
                    .topology()
                    .searcher_faults(slot.partition, slot.replica)
                    .set_down(false);
            }
            let slot = FaultSlot {
                partition: rng.next_index(num_partitions),
                replica: survivors[rng.next_index(survivors.len())],
            };
            world
                .topology()
                .searcher_faults(slot.partition, slot.replica)
                .set_down(true);
            flapped = Some(slot);
        }
        // Rotate the straggler slowdown.
        if config.straggle_every > 0 && i % config.straggle_every == 0 {
            if let Some(slot) = straggler.take() {
                world
                    .topology()
                    .searcher_faults(slot.partition, slot.replica)
                    .set_slowdown(Duration::ZERO);
            }
            let slot = FaultSlot {
                partition: rng.next_index(num_partitions),
                replica: survivors[rng.next_index(survivors.len())],
            };
            world
                .topology()
                .searcher_faults(slot.partition, slot.replica)
                .set_slowdown(config.straggler_slowdown);
            straggler = Some(slot);
        }

        let (query, _cluster) = generator.next_query(world.images(), config.k);
        let start = Instant::now();
        let outcome = client.search(query);
        let elapsed = start.elapsed();
        report.max_latency = report.max_latency.max(elapsed);
        if elapsed <= config.deadline + config.grace {
            report.within_budget += 1;
        }
        match outcome {
            Ok(resp) => {
                report.ok += 1;
                audit(&resp, num_partitions, &mut report);
            }
            Err(_) => report.errors += 1,
        }
    }

    // Heal everything the run injected.
    for p in 0..num_partitions {
        for r in 0..replicas {
            let faults = world.topology().searcher_faults(p, r);
            faults.set_down(false);
            faults.set_drop_probability(0.0);
            faults.set_slowdown(Duration::ZERO);
        }
    }

    let after = world.topology().resilience_snapshot();
    report.metrics = delta(&before, &after);
    report
}

/// Checks one response against the degraded-mode accounting contract.
fn audit(
    resp: &jdvs_search::protocol::SearchResponse,
    num_partitions: usize,
    report: &mut ChaosReport,
) {
    let accounted = resp.partitions_ok
        + resp.partitions_timed_out
        + resp.partitions_failed
        + resp.partitions_shed;
    if accounted != resp.partitions_total {
        report.accounting_violations += 1;
    }
    if resp.partitions_total < num_partitions {
        report.silently_incomplete += 1;
    }
    if resp.is_complete() {
        report.complete += 1;
    } else {
        report.degraded += 1;
    }
}

fn delta(before: &ResilienceSnapshot, after: &ResilienceSnapshot) -> ResilienceSnapshot {
    ResilienceSnapshot {
        queries_total: after.queries_total - before.queries_total,
        queries_degraded: after.queries_degraded - before.queries_degraded,
        queries_budget_exhausted: after.queries_budget_exhausted - before.queries_budget_exhausted,
        partitions_timed_out: after.partitions_timed_out - before.partitions_timed_out,
        partitions_failed: after.partitions_failed - before.partitions_failed,
        partitions_shed: after.partitions_shed - before.partitions_shed,
        call_failures: after.call_failures - before.call_failures,
        calls_overloaded: after.calls_overloaded - before.calls_overloaded,
        retries: after.retries - before.retries,
        hedges_launched: after.hedges_launched - before.hedges_launched,
        hedges_won: after.hedges_won - before.hedges_won,
        breaker_opens: after.breaker_opens - before.breaker_opens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorldConfig;

    fn chaos_world(replicas: usize) -> World {
        let mut config = WorldConfig::fast_test();
        config.topology.replicas_per_partition = replicas;
        World::build(config)
    }

    #[test]
    fn healthy_run_is_fully_available_and_complete() {
        let world = chaos_world(1);
        let report = run_chaos(
            &world,
            &ChaosConfig {
                queries: 20,
                ..ChaosConfig::default()
            },
        );
        assert_eq!(report.ok, 20);
        assert_eq!(report.errors, 0);
        assert_eq!(report.complete, 20);
        assert_eq!(report.degraded, 0);
        assert_eq!(report.accounting_violations, 0);
        assert_eq!(report.silently_incomplete, 0);
        assert!((report.availability() - 1.0).abs() < 1e-9);
        assert_eq!(report.metrics.queries_total, 20);
    }

    #[test]
    fn killed_replicas_fail_over_without_degradation() {
        let world = chaos_world(2);
        let report = run_chaos(
            &world,
            &ChaosConfig {
                queries: 20,
                kill_replicas_per_partition: 1,
                ..ChaosConfig::default()
            },
        );
        assert_eq!(report.ok, 20, "failover keeps serving: {report:?}");
        assert_eq!(report.accounting_violations, 0);
        assert_eq!(report.silently_incomplete, 0);
    }

    #[test]
    fn faults_are_cleared_after_the_run() {
        let world = chaos_world(2);
        let _ = run_chaos(
            &world,
            &ChaosConfig {
                queries: 5,
                kill_replicas_per_partition: 1,
                drop_probability: 1.0,
                ..ChaosConfig::default()
            },
        );
        // After healing, a follow-up healthy run sees no faults.
        let clean = run_chaos(
            &world,
            &ChaosConfig {
                queries: 10,
                ..ChaosConfig::default()
            },
        );
        assert_eq!(clean.ok, 10);
        assert_eq!(clean.complete, 10);
    }

    #[test]
    #[should_panic(expected = "at least one live replica")]
    fn killing_every_replica_panics() {
        let world = chaos_world(1);
        let _ = run_chaos(
            &world,
            &ChaosConfig {
                kill_replicas_per_partition: 1,
                ..ChaosConfig::default()
            },
        );
    }
}
