//! Index-internal identifiers.
//!
//! The paper numbers each image sequentially as it enters the forward index
//! (Section 2.2); that dense sequence number is [`ImageId`]. Inverted lists
//! are identified by [`ListId`] (the k-means cluster index).

use serde::{Deserialize, Serialize};

/// Dense per-partition image number: the position of the image's record in
/// the forward index, its feature vector in the vector store, and its
/// validity bit in the bitmap.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ImageId(pub u32);

impl ImageId {
    /// As a `usize` array index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// As the `u64` id used by [`jdvs_vector::topk`].
    pub fn as_u64(self) -> u64 {
        u64::from(self.0)
    }
}

impl From<u32> for ImageId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for ImageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Index of an inverted list (= k-means cluster index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ListId(pub u32);

impl ListId {
    /// As a `usize` array index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ListId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl std::fmt::Display for ListId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "list-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let id = ImageId::from(7u32);
        assert_eq!(id.as_usize(), 7);
        assert_eq!(id.as_u64(), 7);
        assert_eq!(id.to_string(), "#7");
        let l = ListId::from(3u32);
        assert_eq!(l.as_usize(), 3);
        assert_eq!(l.to_string(), "list-3");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ImageId(2) < ImageId(10));
        assert!(ListId(0) < ListId(1));
    }
}
