//! The synchronization facade for the real-time mutation path.
//!
//! Every structure mutated concurrently with scans — the inverted lists
//! ([`crate::inverted`]), forward index ([`crate::forward`]), attribute
//! buffer ([`crate::buffer`]), validity bitmap ([`crate::bitmap`]) and the
//! swappable index handle ([`crate::swap`]) — imports its primitives from
//! here instead of naming `std::sync` / `parking_lot` directly:
//!
//! - **Normal builds** re-export `parking_lot` locks, `std` atomics and
//!   `std::thread`, exactly what the modules used before this facade.
//! - **`--cfg loom` builds** (`RUSTFLAGS="--cfg loom"`) re-export the
//!   scheduler-instrumented types from the `loom` shim, so the loom model
//!   suite (`crates/core/tests/loom.rs`) can exhaustively interleave the
//!   publication protocols at every atomic access and lock operation.
//!
//! Keep `crate::realtime` and other control-plane code off this facade:
//! only the structures the model suite actually interleaves should pay the
//! instrumentation, and the facade's API is the intersection both backends
//! support (parking_lot-style non-poisoning locks).

#[cfg(loom)]
pub(crate) use loom::{
    sync::{
        atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering},
        Arc, Mutex, RwLock, RwLockReadGuard,
    },
    thread,
};

#[cfg(not(loom))]
pub(crate) use self::std_impl::*;

#[cfg(not(loom))]
mod std_impl {
    pub(crate) use parking_lot::{Mutex, RwLock, RwLockReadGuard};
    pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
    pub(crate) use std::sync::Arc;
    pub(crate) use std::thread;
}
