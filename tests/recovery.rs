//! Crash-injection integration suite for the durability subsystem.
//!
//! Every test kills a live durable topology (or queue) at some point in
//! its ingestion stream, optionally mutilates the on-disk log tail the way
//! an OS crash would, reboots on the same directory, and checks the
//! recovery contract:
//!
//! - under `FsyncPolicy::Always` the recovered searchable set is
//!   **bit-identical** to the acknowledged pre-crash state (same ranked
//!   results, same float distances, same attributes);
//! - torn or corrupt log tails are CRC-detected and cleanly truncated to
//!   the last valid frame — recovery never panics and never indexes
//!   garbage, it just loses the un-fsynced suffix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jdvs::durability::{DurableQueue, FsyncPolicy, LogConfig};
use jdvs::metrics::DurabilityMetrics;
use jdvs::storage::model::{ProductEvent, ProductId};
use jdvs::workload::recovery::{
    run_crash_cycle, CrashCycleConfig, RecoveryConfig, RecoveryHarness,
};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "jdvs-recovery-{}-{}-{}",
        tag,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Killing ingestion after 1, 7, 23 or all events and rebooting from the
/// log alone reproduces the exact acknowledged searchable set: every probe
/// query answers identically down to the distance bits.
#[test]
fn kill_at_arbitrary_points_is_lossless_under_fsync_always() {
    let dir = scratch_dir("kill-points");
    let stream_len = RecoveryHarness::new(RecoveryConfig::fast(&dir))
        .events()
        .len();
    for crash_after in [1, 7, 23, stream_len] {
        let dir = scratch_dir("kill-point");
        let outcome = run_crash_cycle(CrashCycleConfig {
            recovery: RecoveryConfig::fast(&dir),
            crash_after,
            checkpoint_at: None,
            tear_tail_bytes: 0,
        })
        .expect("crash cycle");
        assert_eq!(
            outcome.recovered_events, crash_after as u64,
            "every acknowledged event must survive the kill at {crash_after}"
        );
        assert!(!outcome.from_snapshot, "no checkpoint was taken");
        assert_eq!(
            outcome.replayed,
            2 * crash_after as u64,
            "both partitions cold-replay the whole log"
        );
        assert_eq!(
            outcome.divergent_probes, 0,
            "recovered results diverged after kill at {crash_after}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-stream checkpoint makes reboot recover from the snapshot and
/// replay only the suffix past its watermark — with identical results.
#[test]
fn checkpoint_mid_stream_recovers_from_snapshot_and_replays_only_suffix() {
    let dir = scratch_dir("ckpt");
    let recovery = RecoveryConfig::fast(&dir);
    let stream_len = RecoveryHarness::new(recovery.clone()).events().len();
    let checkpoint_at = stream_len / 2;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: stream_len,
        checkpoint_at: Some(checkpoint_at),
        tear_tail_bytes: 0,
    })
    .expect("crash cycle");
    assert!(outcome.from_snapshot, "reboot must use the checkpoint");
    assert_eq!(
        outcome.replayed,
        2 * (stream_len - checkpoint_at) as u64,
        "only the post-checkpoint suffix is replayed"
    );
    assert!(
        outcome.recovered_events <= stream_len as u64,
        "retention may have pruned covered segments"
    );
    assert_eq!(
        outcome.divergent_probes, 0,
        "snapshot recovery must be exact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tearing into the final log frame loses exactly that un-fsynced record:
/// the reboot truncates the tail, recovers the remaining prefix, and keeps
/// serving queries without panicking.
#[test]
fn torn_tail_loses_only_the_final_record_and_still_serves() {
    let dir = scratch_dir("tear");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.num_products = 20;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: 20,
        checkpoint_at: None,
        tear_tail_bytes: 5, // strictly inside the last frame
    })
    .expect("crash cycle");
    assert_eq!(
        outcome.recovered_events, 19,
        "a 5-byte tear must cost exactly the final record"
    );
    assert_eq!(outcome.replayed, 2 * 19);
    assert!(
        outcome.divergent_probes <= outcome.probes,
        "probes must complete (no panic, no garbage) even when the tail was lost"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte in the last frame's payload fails its CRC32C: the frame
/// is discarded — never decoded into the index — and recovery proceeds
/// with the valid prefix.
#[test]
fn corrupt_tail_byte_is_detected_and_truncated_cleanly() {
    let dir = scratch_dir("corrupt");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.num_products = 20;
    let harness = RecoveryHarness::new(recovery);

    let topology = harness.boot().expect("first boot");
    harness.publish(&topology, 0..20);
    harness.halt(topology);
    harness.corrupt_tail_byte(3).expect("flip a payload byte");

    let topology = harness.boot().expect("reboot over corrupt tail");
    let queue = topology.durable_queue().expect("durable topology");
    assert_eq!(
        queue.recovered_events(),
        19,
        "the corrupt record must be dropped, the prefix kept"
    );
    assert_eq!(queue.open_report().corrupt_records, 1);
    let probes = harness.probe(&topology);
    assert!(
        probes.iter().any(|p| !p.is_empty()),
        "recovered index must answer queries"
    );
    harness.halt(topology);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Progressively truncating the log one byte at a time hits every byte
/// offset in every tail frame. Each reopen must succeed, monotonically
/// shrink the recovered prefix, and decode only intact records.
#[test]
fn truncation_at_every_byte_offset_never_panics_and_recovers_a_valid_prefix() {
    let dir = scratch_dir("every-byte");
    let mut config = LogConfig::new(dir.join("wal"));
    config.fsync = FsyncPolicy::Always;
    config.segment_max_bytes = 1 << 20;

    let published = 12u64;
    {
        let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new()))
            .expect("fresh open");
        for i in 0..published {
            dq.queue().publish(ProductEvent::RemoveProduct {
                product_id: ProductId(i + 1),
                urls: vec![format!("https://img.jd.test/sku/{}/img0.jpg", i + 1)],
            });
        }
    }

    let segment = {
        let mut segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
            .expect("wal dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        segs.sort();
        assert_eq!(segs.len(), 1, "single-segment fixture");
        segs.remove(0)
    };

    let mut last_recovered = published;
    loop {
        let len = std::fs::metadata(&segment).expect("segment meta").len();
        if len == 0 {
            break;
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(len - 1).expect("truncate one byte");
        drop(file);

        let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new()))
            .expect("reopen over torn tail");
        let recovered = dq.recovered_events();
        assert!(
            recovered <= last_recovered,
            "recovered prefix must shrink monotonically ({recovered} > {last_recovered})"
        );
        assert!(
            recovered < published,
            "a torn byte must cost at least the tail record"
        );
        // Continuation after a tear stays on absolute offsets: the next
        // publish lands exactly at the recovered prefix length.
        let offset = dq.queue().publish(ProductEvent::RemoveProduct {
            product_id: ProductId(999),
            urls: vec![],
        });
        assert_eq!(
            offset, recovered,
            "append offset must continue the valid prefix"
        );
        last_recovered = recovered;
        // Remove the probe record again so the next iteration tears into
        // the original stream, not our probe frame.
        let len = std::fs::metadata(&segment).expect("segment meta").len();
        drop(dq);
        let tail = {
            let bytes = std::fs::read(&segment).expect("read segment");
            bytes.len() as u64 - frame_len_at_end(&bytes)
        };
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(tail.min(len)).expect("drop probe frame");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Length of the final frame of `bytes` (header + payload), found by
/// walking frames from the start — mirrors the log's framing:
/// `[len:u32le][crc:u32le][payload]`.
fn frame_len_at_end(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    let mut last = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        last = 8 + len;
        pos += 8 + len;
    }
    last as u64
}

/// An amortized-fsync log still reopens cleanly after an arbitrary tear:
/// the loss bound is the un-synced suffix, never a panic and never a
/// mis-decoded record.
#[test]
fn every_n_policy_survives_arbitrary_tear_with_bounded_loss() {
    let dir = scratch_dir("every-n");
    let mut recovery = RecoveryConfig::fast(&dir);
    recovery.options.fsync = FsyncPolicy::EveryN(4);
    recovery.num_products = 16;
    let outcome = run_crash_cycle(CrashCycleConfig {
        recovery,
        crash_after: 16,
        checkpoint_at: None,
        tear_tail_bytes: 37,
    })
    .expect("crash cycle");
    assert_eq!(
        outcome.recovered_events, 15,
        "the tear must cost exactly the record it landed in, nothing more"
    );
    assert_eq!(outcome.replayed, 2 * outcome.recovered_events);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-key log compaction must be invisible to recovery: a cold replay of
/// the compacted log reconstructs byte-for-byte the same forward-index
/// state (presence, validity, every numeric attribute and listing field,
/// per image URL) as a replay of the original log — while the log itself
/// shrinks and keeps every offset.
#[test]
fn compaction_preserves_cold_recovery_state_exactly() {
    use jdvs::core::config::IndexConfig;
    use jdvs::core::index::VisualIndex;
    use jdvs::core::realtime::RealtimeIndexer;
    use jdvs::durability::compact_log;
    use jdvs::features::cost::CostModel;
    use jdvs::features::{CachingExtractor, ExtractorConfig, FeatureExtractor};
    use jdvs::storage::model::{ImageKey, ProductAttributes};
    use jdvs::storage::{FeatureDb, ImageStore};
    use jdvs::vector::Vector;
    use std::collections::BTreeMap;

    const DIM: usize = 8;
    const URLS: u64 = 12;
    const ROUNDS: u64 = 6;
    let url_of = |i: u64| format!("https://img.jd.test/churn/{i}.jpg");

    let dir = scratch_dir("compact-equiv");
    let wal = dir.join("wal");
    let mut config = LogConfig::new(&wal);
    config.fsync = FsyncPolicy::Always;
    config.segment_max_bytes = 192; // a few events per segment: many cold segments

    let images = Arc::new(ImageStore::with_blob_len(64));
    for i in 0..URLS {
        images.put_synthetic(&url_of(i), i * 131);
    }

    // A churn stream with heavy per-URL supersession: each URL cycles
    // through add / partial update / remove / full update across rounds,
    // so later adds shadow whole earlier histories (and some updates race
    // ahead of their adds, exercising the dead-letter path identically on
    // both replays).
    {
        let dq = DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new()))
            .expect("fresh open");
        for round in 0..ROUNDS {
            for i in 0..URLS {
                let pid = ProductId(i);
                let event = match (round + i) % 4 {
                    0 => ProductEvent::AddProduct {
                        product_id: pid,
                        images: vec![ProductAttributes::new(
                            pid,
                            round * 10 + i,
                            100 + i,
                            round,
                            url_of(i),
                        )],
                    },
                    1 => ProductEvent::UpdateAttributes {
                        product_id: pid,
                        urls: vec![url_of(i)],
                        sales: Some(round * 100 + i),
                        price: None,
                        praise: None,
                    },
                    2 => ProductEvent::RemoveProduct {
                        product_id: pid,
                        urls: vec![url_of(i)],
                    },
                    _ => ProductEvent::UpdateAttributes {
                        product_id: pid,
                        urls: vec![url_of(i)],
                        sales: Some(round),
                        price: Some(55 + i),
                        praise: Some(round + 2),
                    },
                };
                dq.queue().publish(event);
            }
        }
    }

    // Cold-replays the whole log through a fresh indexer and captures the
    // observable per-URL state.
    type UrlState = (bool, bool, u64, u64, u64, u64, u32, bool);
    let replay_state = |images: &Arc<ImageStore>| -> (u64, usize, BTreeMap<u64, UrlState>) {
        let dq =
            DurableQueue::open(config.clone(), Arc::new(DurabilityMetrics::new())).expect("reopen");
        let mut rng = jdvs::vector::rng::Xoshiro256::seed_from(5);
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 4,
                ..Default::default()
            },
            &train,
        ));
        let indexer = RealtimeIndexer::for_index(
            index,
            Arc::new(CachingExtractor::new(
                FeatureExtractor::new(ExtractorConfig {
                    dim: DIM,
                    ..Default::default()
                }),
                CostModel::free(),
            )),
            Arc::clone(images),
            Arc::new(FeatureDb::new()),
        );
        let events = dq.queue().read_range(0, usize::MAX);
        for (off, event) in events.iter().enumerate() {
            indexer.apply_at(off as u64, event);
        }
        let index = indexer.index();
        index.flush();
        let mut state = BTreeMap::new();
        for i in 0..URLS {
            let entry = match index.lookup(ImageKey::from_url(&url_of(i))) {
                Some(id) => {
                    let a = index.attributes(id).expect("resolved id has attributes");
                    (
                        true,
                        index.is_valid(id),
                        a.product_id.0,
                        a.sales,
                        a.price,
                        a.praise,
                        a.category,
                        a.in_stock,
                    )
                }
                None => (false, false, 0, 0, 0, 0, 0, false),
            };
            state.insert(i, entry);
        }
        (events.len() as u64, index.valid_images(), state)
    };

    let before = replay_state(&images);
    let log_bytes_before: u64 = std::fs::read_dir(&wal)
        .expect("wal dir")
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();

    let report = compact_log(&wal, &DurabilityMetrics::new()).expect("compaction");
    assert!(
        report.events_dropped > 0,
        "churn must leave superseded events"
    );
    assert!(report.segments_rewritten > 0);
    assert!(report.bytes_reclaimed > 0);

    let after = replay_state(&images);
    let log_bytes_after: u64 = std::fs::read_dir(&wal)
        .expect("wal dir")
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert_eq!(
        before, after,
        "compacted replay must reconstruct the identical index state"
    );
    assert_eq!(before.0, ROUNDS * URLS, "every offset survives compaction");
    assert!(
        log_bytes_after + report.bytes_reclaimed <= log_bytes_before,
        "reclaimed bytes must actually leave the disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
