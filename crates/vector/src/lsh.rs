//! Locality-sensitive hashing baseline.
//!
//! The paper's related work (refs \[21, 22\]: multi-probe LSH, Gionis et
//! al.) positions hashing as the classic alternative to IVF-style
//! clustering for high-dimensional similarity search. We implement
//! random-hyperplane LSH with multi-probe querying as the **comparison
//! baseline** for the `ablate-lsh` experiment: same insert/search contract
//! as the inverted index, different partitioning of the space.
//!
//! Design: `L` independent hash tables; each hashes a vector to a
//! `bits`-bit signature via signed random projections. A query probes its
//! own bucket in every table, plus (multi-probe) the buckets at Hamming
//! distance 1 in signature space, ranked by projection margin.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::distance::dot;
use crate::rng::Xoshiro256;
use crate::topk::{Neighbor, TopK};
use crate::vector::Vector;

/// Configuration for [`LshIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of independent hash tables `L`.
    pub tables: usize,
    /// Signature bits per table (buckets per table = `2^bits`).
    pub bits: usize,
    /// Seed for the random hyperplanes.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            tables: 8,
            bits: 12,
            seed: 0x15A4,
        }
    }
}

struct Table {
    // One hyperplane per signature bit.
    hyperplanes: Vec<Vector>,
    buckets: RwLock<HashMap<u32, Vec<u64>>>,
}

impl Table {
    /// Signature and per-bit projection margins (for multi-probe ranking).
    fn signature(&self, v: &[f32]) -> (u32, Vec<f32>) {
        let mut sig = 0u32;
        let mut margins = Vec::with_capacity(self.hyperplanes.len());
        for (bit, h) in self.hyperplanes.iter().enumerate() {
            let p = dot(h.as_slice(), v);
            if p >= 0.0 {
                sig |= 1 << bit;
            }
            margins.push(p.abs());
        }
        (sig, margins)
    }
}

/// A multi-table, multi-probe LSH index storing `(id, vector)` pairs.
///
/// # Example
///
/// ```
/// use jdvs_vector::lsh::{LshConfig, LshIndex};
/// use jdvs_vector::Vector;
///
/// let index = LshIndex::new(LshConfig { dim: 4, tables: 4, bits: 6, seed: 1 });
/// index.insert(7, &Vector::from(vec![1.0, 0.0, 0.0, 0.0]));
/// let hits = index.search(&[1.0, 0.0, 0.0, 0.0], 1, 1);
/// assert_eq!(hits[0].id, 7);
/// ```
pub struct LshIndex {
    config: LshConfig,
    tables: Vec<Table>,
    vectors: RwLock<HashMap<u64, Vector>>,
}

impl std::fmt::Debug for LshIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LshIndex")
            .field("tables", &self.tables.len())
            .field("bits", &self.config.bits)
            .field("len", &self.vectors.read().len())
            .finish()
    }
}

impl LshIndex {
    /// Creates an index.
    ///
    /// # Panics
    ///
    /// Panics if any config field is zero or `bits > 24`.
    pub fn new(config: LshConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.tables > 0, "tables must be positive");
        assert!(
            config.bits > 0 && config.bits <= 24,
            "bits must be in 1..=24"
        );
        let mut rng = Xoshiro256::seed_from(config.seed);
        let tables = (0..config.tables)
            .map(|_| {
                let hyperplanes = (0..config.bits)
                    .map(|_| {
                        let mut data = vec![0.0f32; config.dim];
                        rng.fill_gaussian(&mut data);
                        Vector::from(data)
                    })
                    .collect();
                Table {
                    hyperplanes,
                    buckets: RwLock::new(HashMap::new()),
                }
            })
            .collect();
        Self {
            config,
            tables,
            vectors: RwLock::new(HashMap::new()),
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.read().len()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.read().is_empty()
    }

    /// Inserts a vector under `id` (replacing any previous vector for the
    /// same id in the raw store; old bucket entries are tombstoned by the
    /// id lookup at search time).
    ///
    /// # Panics
    ///
    /// Panics if the vector dimension differs from the config.
    pub fn insert(&self, id: u64, v: &Vector) {
        assert_eq!(v.dim(), self.config.dim, "dimension mismatch");
        for table in &self.tables {
            let (sig, _) = table.signature(v.as_slice());
            table.buckets.write().entry(sig).or_default().push(id);
        }
        self.vectors.write().insert(id, v.clone());
    }

    /// Searches for the `k` nearest neighbors, probing each table's home
    /// bucket plus the `probes - 1` best flip-one-bit buckets (multi-probe
    /// LSH, ref \[21\]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `probes == 0`, or the query dimension differs.
    pub fn search(&self, query: &[f32], k: usize, probes: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        assert!(probes > 0, "probes must be positive");
        assert_eq!(query.len(), self.config.dim, "query dimension mismatch");
        let vectors = self.vectors.read();
        let mut topk = TopK::new(k);
        let mut seen = std::collections::HashSet::new();
        for table in &self.tables {
            let (sig, margins) = table.signature(query);
            // Probe sequence: the home bucket, then buckets differing in
            // the lowest-margin bits (most likely to hold near misses).
            let mut bit_order: Vec<usize> = (0..self.config.bits).collect();
            bit_order.sort_by(|&a, &b| {
                margins[a]
                    .partial_cmp(&margins[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let buckets = table.buckets.read();
            for p in 0..probes.min(self.config.bits + 1) {
                let probe_sig = if p == 0 {
                    sig
                } else {
                    sig ^ (1 << bit_order[p - 1])
                };
                if let Some(ids) = buckets.get(&probe_sig) {
                    for &id in ids {
                        if !seen.insert(id) {
                            continue;
                        }
                        if let Some(v) = vectors.get(&id) {
                            topk.push(id, crate::distance::squared_l2(query, v.as_slice()));
                        }
                    }
                }
            }
        }
        topk.into_sorted_vec()
    }

    /// Exact search over everything stored (ground truth for recall).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the query dimension differs.
    pub fn brute_force(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert!(k > 0, "k must be positive");
        assert_eq!(query.len(), self.config.dim, "query dimension mismatch");
        let vectors = self.vectors.read();
        let mut topk = TopK::new(k);
        for (&id, v) in vectors.iter() {
            topk.push(id, crate::distance::squared_l2(query, v.as_slice()));
        }
        topk.into_sorted_vec()
    }

    /// Total bucket entries across tables (memory/selectivity diagnostic).
    pub fn total_bucket_entries(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.buckets.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn clustered_data(n_per: usize, centers: usize, dim: usize, seed: u64) -> Vec<(u64, Vector)> {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut out = Vec::new();
        let mut id = 0u64;
        for c in 0..centers {
            let center: Vec<f32> = (0..dim).map(|_| rng.next_gaussian() as f32 * 3.0).collect();
            for _ in 0..n_per {
                let v: Vec<f32> = center
                    .iter()
                    .map(|x| x + rng.next_gaussian() as f32 * 0.2)
                    .collect();
                out.push((id, Vector::from(v)));
                id += 1;
            }
            let _ = c;
        }
        out
    }

    #[test]
    fn exact_duplicate_is_found() {
        let index = LshIndex::new(LshConfig {
            dim: 8,
            tables: 4,
            bits: 8,
            seed: 1,
        });
        let data = clustered_data(20, 3, 8, 2);
        for (id, v) in &data {
            index.insert(*id, v);
        }
        for (id, v) in data.iter().take(10) {
            let hits = index.search(v.as_slice(), 1, 2);
            assert_eq!(hits[0].id, *id, "identical vector hashes identically");
            assert!(hits[0].distance < 1e-9);
        }
    }

    #[test]
    fn recall_improves_with_probes() {
        let index = LshIndex::new(LshConfig {
            dim: 16,
            tables: 6,
            bits: 10,
            seed: 3,
        });
        let data = clustered_data(50, 8, 16, 4);
        for (id, v) in &data {
            index.insert(*id, v);
        }
        let mut recalls = Vec::new();
        for probes in [1usize, 4, 10] {
            let mut total = 0.0;
            for (_, v) in data.iter().take(30) {
                let got = index.search(v.as_slice(), 5, probes);
                let truth = index.brute_force(v.as_slice(), 5);
                let got_ids: std::collections::HashSet<u64> = got.iter().map(|n| n.id).collect();
                let hit = truth.iter().filter(|n| got_ids.contains(&n.id)).count();
                total += hit as f64 / truth.len() as f64;
            }
            recalls.push(total / 30.0);
        }
        assert!(recalls[0] <= recalls[1] + 1e-9);
        assert!(recalls[1] <= recalls[2] + 1e-9);
        assert!(recalls[2] > 0.5, "multi-probe recall too low: {recalls:?}");
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let index = LshIndex::new(LshConfig {
            dim: 8,
            tables: 8,
            bits: 6,
            seed: 5,
        });
        let data = clustered_data(30, 4, 8, 6);
        for (id, v) in &data {
            index.insert(*id, v);
        }
        let hits = index.search(data[0].1.as_slice(), 10, 4);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
            assert_ne!(w[0].id, w[1].id);
        }
    }

    #[test]
    fn brute_force_is_exact_ground_truth() {
        let index = LshIndex::new(LshConfig {
            dim: 4,
            tables: 2,
            bits: 4,
            seed: 7,
        });
        index.insert(1, &Vector::from(vec![0.0, 0.0, 0.0, 1.0]));
        index.insert(2, &Vector::from(vec![0.0, 0.0, 1.0, 0.0]));
        index.insert(3, &Vector::from(vec![5.0, 5.0, 5.0, 5.0]));
        let hits = index.brute_force(&[0.0, 0.0, 0.0, 0.9], 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 2);
    }

    #[test]
    fn len_and_bucket_accounting() {
        let index = LshIndex::new(LshConfig {
            dim: 4,
            tables: 3,
            bits: 4,
            seed: 9,
        });
        assert!(index.is_empty());
        for i in 0..10u64 {
            index.insert(i, &Vector::from(vec![i as f32, 0.0, 0.0, 0.0]));
        }
        assert_eq!(index.len(), 10);
        assert_eq!(
            index.total_bucket_entries(),
            30,
            "one entry per table per vector"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_insert_panics() {
        let index = LshIndex::new(LshConfig {
            dim: 4,
            ..Default::default()
        });
        index.insert(1, &Vector::from(vec![1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=24")]
    fn oversized_bits_panics() {
        LshIndex::new(LshConfig {
            bits: 30,
            ..Default::default()
        });
    }
}
