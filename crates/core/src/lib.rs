//! # jdvs-core
//!
//! The paper's primary contribution: a visual index supporting **real-time,
//! sub-second** insertion, update and deletion concurrent with search.
//!
//! Structure (one module per component of Section 2):
//!
//! - [`ids`] — newtyped index-internal identifiers.
//! - [`bitmap`] — the atomic **validity bitmap**: one bit per image; product
//!   delisting flips bits instead of rewriting indexes (Sections 2.1/2.3).
//! - [`buffer`] — the append-only **variable-length attribute buffer**:
//!   URLs live here; the forward index stores a packed `(offset, len)` word
//!   that is swapped atomically on update (Figure 7).
//! - [`forward`] — the **forward index**: a growable array of fixed-field
//!   records (product id, sales, price, praise as atomic cells + the URL
//!   reference word), updated in place with no search/update conflict.
//! - [`vectors`] — append-only store of each image's feature vector,
//!   aligned with forward-index ids (the scan path needs raw features).
//! - [`inverted`] — the **IVF inverted lists** with the paper's pre-
//!   allocated slabs, per-list atomic tail positions (the auxiliary array
//!   of Figure 5) and lock-free double-size expansion with background copy
//!   (Figure 9).
//! - [`index`] — [`index::VisualIndex`] composing all of the above behind
//!   one coherent API.
//! - [`realtime`] — the **real-time indexer** applying
//!   [`jdvs_storage::ProductEvent`]s instantly (Figures 4/6/7/8).
//! - [`full`] — the **full indexer**: end-of-day message-log replay and
//!   from-scratch index construction (Figures 2/3).
//! - [`search`] — single-partition query evaluation: probe nearest
//!   centroids, scan lists, filter by validity, rank top-k.
//!
//! ## Example
//!
//! ```
//! use jdvs_core::config::IndexConfig;
//! use jdvs_core::index::VisualIndex;
//! use jdvs_storage::{ProductAttributes, ProductId};
//! use jdvs_vector::Vector;
//!
//! let config = IndexConfig { dim: 4, num_lists: 2, ..Default::default() };
//! let index = VisualIndex::bootstrap(
//!     config,
//!     &[Vector::from(vec![0.0, 0.0, 0.0, 0.0]), Vector::from(vec![1.0, 1.0, 1.0, 1.0])],
//! );
//! let attrs = ProductAttributes::new(ProductId(1), 10, 4999, 7, "sku1/0.jpg".into());
//! let id = index.insert(Vector::from(vec![0.1, 0.0, 0.1, 0.0]), attrs).unwrap();
//! let hits = index.search(&[0.1, 0.0, 0.1, 0.0], 1, 1);
//! assert_eq!(hits[0].id, id.as_u64());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitmap;
pub mod buffer;
pub mod config;
pub mod error;
pub mod filter;
pub mod forward;
pub mod full;
pub mod ids;
pub mod index;
pub mod inverted;
pub mod persist;
pub mod pq_store;
pub mod realtime;
pub mod search;
pub mod stats;
pub mod swap;
pub(crate) mod sync;
pub mod vectors;

pub use config::IndexConfig;
pub use error::IndexError;
pub use filter::FilterSpec;
pub use ids::{ImageId, ListId};
pub use index::VisualIndex;
pub use realtime::RealtimeIndexer;
