//! Blob store of product images.
//!
//! Stands in for the production image store the full indexer pulls from
//! (*"the images of new added products during the day are pulled from an
//! image store"*). Real JPEG content is irrelevant to the serving system —
//! only the bytes→features mapping matters — so blobs are synthetic:
//! deterministic pseudo-random bytes derived from the URL and a *visual
//! seed*. Images of visually similar products share a visual seed, which
//! the synthetic feature extractor turns into nearby feature vectors; that
//! gives the index a non-trivial nearest-neighbour structure to search.

use bytes::Bytes;

use crate::kv::KvStore;
use crate::model::ImageKey;

/// Default synthetic blob size; small enough to generate billions, large
/// enough that hashing it costs a realistic fraction of extraction time.
pub const DEFAULT_BLOB_LEN: usize = 4096;

/// A stored image: its bytes plus the visual-cluster seed used to derive
/// them (carried along so the extractor can reconstruct cluster structure
/// without a catalog lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBlob {
    /// The (synthetic) encoded image bytes.
    pub bytes: Bytes,
    /// Seed of the visual cluster this image belongs to.
    pub visual_seed: u64,
}

/// In-memory blob store keyed by [`ImageKey`].
///
/// # Example
///
/// ```
/// use jdvs_storage::{ImageStore, ImageKey};
///
/// let store = ImageStore::new();
/// let key = store.put_synthetic("https://img.jd.com/sku/1/0.jpg", 42);
/// let blob = store.get(key).expect("stored");
/// assert_eq!(blob.visual_seed, 42);
/// assert_eq!(key, ImageKey::from_url("https://img.jd.com/sku/1/0.jpg"));
/// ```
#[derive(Debug, Default)]
pub struct ImageStore {
    blobs: KvStore<ImageKey, ImageBlob>,
    blob_len: usize,
}

impl ImageStore {
    /// Creates a store producing [`DEFAULT_BLOB_LEN`]-byte synthetic blobs.
    pub fn new() -> Self {
        Self {
            blobs: KvStore::new(),
            blob_len: DEFAULT_BLOB_LEN,
        }
    }

    /// Creates a store with a custom synthetic blob size (tests use tiny
    /// blobs to stay fast).
    ///
    /// # Panics
    ///
    /// Panics if `blob_len == 0`.
    pub fn with_blob_len(blob_len: usize) -> Self {
        assert!(blob_len > 0, "blob length must be positive");
        Self {
            blobs: KvStore::new(),
            blob_len,
        }
    }

    /// Generates and stores a synthetic image for `url`, belonging to the
    /// visual cluster identified by `visual_seed`. Returns the image key.
    /// Idempotent: re-putting the same URL keeps the existing blob.
    pub fn put_synthetic(&self, url: &str, visual_seed: u64) -> ImageKey {
        let key = ImageKey::from_url(url);
        let len = self.blob_len;
        self.blobs.get_or_insert_with(key, || ImageBlob {
            bytes: synth_bytes(key, visual_seed, len),
            visual_seed,
        });
        key
    }

    /// Stores caller-provided bytes (used by tests injecting fixed content).
    pub fn put_raw(&self, url: &str, bytes: Bytes, visual_seed: u64) -> ImageKey {
        let key = ImageKey::from_url(url);
        self.blobs.put(key, ImageBlob { bytes, visual_seed });
        key
    }

    /// Fetches the blob for `key`.
    pub fn get(&self, key: ImageKey) -> Option<ImageBlob> {
        self.blobs.get(&key)
    }

    /// Fetches the blob for a URL.
    pub fn get_by_url(&self, url: &str) -> Option<ImageBlob> {
        self.get(ImageKey::from_url(url))
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Returns `true` if no image is stored.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

/// Deterministic pseudo-random bytes from (key, visual_seed).
fn synth_bytes(key: ImageKey, visual_seed: u64, len: usize) -> Bytes {
    let mut state = key.0 ^ visual_seed.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_blobs_are_deterministic() {
        let a = ImageStore::with_blob_len(128);
        let b = ImageStore::with_blob_len(128);
        let ka = a.put_synthetic("url-1", 7);
        let kb = b.put_synthetic("url-1", 7);
        assert_eq!(ka, kb);
        assert_eq!(a.get(ka).unwrap().bytes, b.get(kb).unwrap().bytes);
    }

    #[test]
    fn different_urls_produce_different_bytes() {
        let s = ImageStore::with_blob_len(128);
        let k1 = s.put_synthetic("url-1", 7);
        let k2 = s.put_synthetic("url-2", 7);
        assert_ne!(s.get(k1).unwrap().bytes, s.get(k2).unwrap().bytes);
    }

    #[test]
    fn put_is_idempotent() {
        let s = ImageStore::with_blob_len(64);
        let k = s.put_synthetic("url-1", 7);
        let first = s.get(k).unwrap();
        s.put_synthetic("url-1", 99); // different seed ignored on re-put
        assert_eq!(s.get(k).unwrap(), first);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn blob_has_requested_length() {
        let s = ImageStore::with_blob_len(100);
        let k = s.put_synthetic("url-x", 1);
        assert_eq!(s.get(k).unwrap().bytes.len(), 100);
    }

    #[test]
    fn get_by_url_matches_get_by_key() {
        let s = ImageStore::with_blob_len(64);
        s.put_synthetic("abc", 5);
        assert_eq!(s.get_by_url("abc"), s.get(ImageKey::from_url("abc")));
        assert!(s.get_by_url("missing").is_none());
    }

    #[test]
    fn put_raw_overwrites() {
        let s = ImageStore::new();
        let k = s.put_raw("u", Bytes::from_static(b"hello"), 3);
        assert_eq!(s.get(k).unwrap().bytes, Bytes::from_static(b"hello"));
        assert_eq!(s.get(k).unwrap().visual_seed, 3);
    }

    #[test]
    #[should_panic(expected = "blob length must be positive")]
    fn zero_blob_len_panics() {
        ImageStore::with_blob_len(0);
    }
}
