//! Append-only feature-vector store, aligned with forward-index ids.
//!
//! The inverted lists hold image **ids**; computing a query's Euclidean
//! distance to a candidate (Section 2.4) needs the candidate's raw feature
//! vector. The production system keeps features alongside the index; here
//! they live in a chunked, append-only store where slot `i` is image `i`'s
//! vector. Slots are `OnceLock`s: written exactly once by the appender,
//! read lock-free (with acquire semantics) by any number of searchers.

use parking_lot::RwLock;
use std::sync::{Arc, OnceLock};

use jdvs_vector::Vector;

use crate::ids::ImageId;

/// Vectors per chunk.
const CHUNK_VECTORS: usize = 4096;

struct Chunk {
    slots: Box<[OnceLock<Vector>]>,
}

impl Chunk {
    fn new() -> Self {
        let mut v = Vec::with_capacity(CHUNK_VECTORS);
        v.resize_with(CHUNK_VECTORS, OnceLock::new);
        Self {
            slots: v.into_boxed_slice(),
        }
    }
}

/// The vector store; see the module docs.
///
/// # Example
///
/// ```
/// use jdvs_core::vectors::VectorStore;
/// use jdvs_core::ids::ImageId;
/// use jdvs_vector::Vector;
///
/// let store = VectorStore::new();
/// store.put(ImageId(0), Vector::from(vec![1.0, 2.0]));
/// assert_eq!(store.get(ImageId(0)).unwrap().as_slice(), &[1.0, 2.0]);
/// assert!(store.get(ImageId(1)).is_none());
/// ```
#[derive(Default)]
pub struct VectorStore {
    chunks: RwLock<Vec<Arc<Chunk>>>,
}

impl std::fmt::Debug for VectorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorStore")
            .field("chunks", &self.chunks.read().len())
            .finish()
    }
}

impl VectorStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `vector` in slot `id`. Each slot may be written once; a
    /// second write to the same id is ignored (slots are immutable — a new
    /// version of an image is a new id in this design).
    pub fn put(&self, id: ImageId, vector: Vector) {
        let chunk_idx = id.as_usize() / CHUNK_VECTORS;
        {
            let chunks = self.chunks.read();
            if chunks.len() <= chunk_idx {
                drop(chunks);
                let mut chunks = self.chunks.write();
                while chunks.len() <= chunk_idx {
                    chunks.push(Arc::new(Chunk::new()));
                }
            }
        }
        let chunks = self.chunks.read();
        let _ = chunks[chunk_idx].slots[id.as_usize() % CHUNK_VECTORS].set(vector);
    }

    /// Fetches the vector in slot `id`, if written.
    pub fn get(&self, id: ImageId) -> Option<Vector> {
        self.with(id, Clone::clone)
    }

    /// Applies `f` to the vector in slot `id` without cloning (the scan hot
    /// path: distance computation borrows the slice in place).
    pub fn with<R>(&self, id: ImageId, f: impl FnOnce(&Vector) -> R) -> Option<R> {
        let chunk_idx = id.as_usize() / CHUNK_VECTORS;
        let chunks = self.chunks.read();
        let chunk = Arc::clone(chunks.get(chunk_idx)?);
        drop(chunks);
        chunk.slots[id.as_usize() % CHUNK_VECTORS].get().map(f)
    }

    /// Pins every chunk once and returns a snapshot whose `get` is a pure
    /// pointer chase — the block-scan hot path: one lock acquisition per
    /// query instead of one per candidate. Vectors `put` into *existing*
    /// chunks after the snapshot remain visible (slots are `OnceLock`s);
    /// only chunks allocated later are missed.
    pub fn snapshot(&self) -> VectorSnapshot {
        VectorSnapshot {
            chunks: self.chunks.read().iter().map(Arc::clone).collect(),
        }
    }
}

/// A pinned, lock-free view of a [`VectorStore`]; see
/// [`VectorStore::snapshot`].
pub struct VectorSnapshot {
    chunks: Vec<Arc<Chunk>>,
}

impl std::fmt::Debug for VectorSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorSnapshot")
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

impl VectorSnapshot {
    /// Borrows the vector in slot `id`, if written.
    #[inline]
    pub fn get(&self, id: ImageId) -> Option<&Vector> {
        self.chunks.get(id.as_usize() / CHUNK_VECTORS)?.slots[id.as_usize() % CHUNK_VECTORS].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn put_get_round_trip() {
        let s = VectorStore::new();
        s.put(ImageId(3), Vector::from(vec![1.0]));
        assert_eq!(s.get(ImageId(3)).unwrap().as_slice(), &[1.0]);
        assert!(s.get(ImageId(2)).is_none(), "unwritten slot is empty");
        assert!(
            s.get(ImageId(100_000)).is_none(),
            "unallocated chunk is empty"
        );
    }

    #[test]
    fn slots_are_write_once() {
        let s = VectorStore::new();
        s.put(ImageId(0), Vector::from(vec![1.0]));
        s.put(ImageId(0), Vector::from(vec![2.0]));
        assert_eq!(s.get(ImageId(0)).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn with_borrows_in_place() {
        let s = VectorStore::new();
        s.put(ImageId(1), Vector::from(vec![3.0, 4.0]));
        let norm = s.with(ImageId(1), |v| v.norm()).unwrap();
        assert!((norm - 5.0).abs() < 1e-6);
        assert!(s.with(ImageId(9), |v| v.norm()).is_none());
    }

    #[test]
    fn spans_chunks() {
        let s = VectorStore::new();
        let far = ImageId((CHUNK_VECTORS * 3 + 7) as u32);
        s.put(far, Vector::from(vec![9.0]));
        assert_eq!(s.get(far).unwrap().as_slice(), &[9.0]);
    }

    #[test]
    fn snapshot_borrows_and_sees_writes_to_pinned_chunks() {
        let s = VectorStore::new();
        s.put(ImageId(1), Vector::from(vec![3.0, 4.0]));
        let snap = s.snapshot();
        assert_eq!(snap.get(ImageId(1)).unwrap().as_slice(), &[3.0, 4.0]);
        assert!(snap.get(ImageId(2)).is_none());
        // Write into a slot of an already-pinned chunk: visible.
        s.put(ImageId(2), Vector::from(vec![5.0]));
        assert_eq!(snap.get(ImageId(2)).unwrap().as_slice(), &[5.0]);
        // A chunk allocated after the snapshot is not.
        let far = ImageId((CHUNK_VECTORS * 5) as u32);
        s.put(far, Vector::from(vec![6.0]));
        assert!(snap.get(far).is_none());
        assert!(s.snapshot().get(far).is_some());
    }

    #[test]
    fn concurrent_put_get() {
        let s = StdArc::new(VectorStore::new());
        let writers: Vec<_> = (0..4u32)
            .map(|t| {
                let s = StdArc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2_000u32 {
                        let id = ImageId(t * 2_000 + i);
                        s.put(id, Vector::from(vec![id.0 as f32]));
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        for id in 0..8_000u32 {
            assert_eq!(s.get(ImageId(id)).unwrap().as_slice(), &[id as f32]);
        }
    }
}
