//! # jdvs-features
//!
//! Feature extraction for the jdvs visual search system.
//!
//! The production JD system runs a CNN over product images — an expensive
//! GPU operation the paper works hard to avoid repeating (the reuse
//! optimisation of Sections 2.1–2.3). We cannot ship a CNN, and do not
//! need to: the serving system only depends on three properties of the
//! extractor, all preserved here (see DESIGN.md §2):
//!
//! 1. **Determinism** — identical image bytes yield identical features, so
//!    deduplication by image key is sound. [`extractor::FeatureExtractor`]
//!    derives features from the blob's visual seed and content hash.
//! 2. **Neighbourhood structure** — images of visually similar products
//!    must land near each other. Blobs carry a `visual_seed` (cluster id);
//!    features are `cluster_center(visual_seed) + per-image jitter`, giving
//!    k-means-clusterable data.
//! 3. **Cost** — extraction is orders of magnitude more expensive than an
//!    index append, which is what makes feature reuse matter.
//!    [`cost::CostModel`] charges a configurable delay (real sleep or
//!    virtual accounting).
//!
//! [`cache::CachingExtractor`] wraps the extractor with the paper's
//! KV-store dedup check, and [`category`] provides the coarse category
//! detection the online search pipeline performs on query images.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod category;
pub mod cost;
pub mod extractor;

pub use cache::CachingExtractor;
pub use category::CategoryDetector;
pub use cost::CostModel;
pub use extractor::{ExtractorConfig, FeatureExtractor};
