//! Binary codec for [`ProductEvent`] log records.
//!
//! The durable log stores each ingestion event as one framed record; this
//! module defines the payload encoding. It is a fixed little-endian layout
//! (not serde) so the on-disk format is explicit, versionable and
//! independent of any serialization shim:
//!
//! ```text
//! event      := tag:u8 body
//! tag        := 0 (AddProduct) | 1 (RemoveProduct) | 2 (UpdateAttributes)
//!             | 3 (AddProduct v2)
//! AddProduct := product_id:u64 count:u32 attrs*
//! attrs      := product_id:u64 sales:u64 price:u64 praise:u64 url
//! AddV2      := product_id:u64 count:u32 attrs_v2*
//! attrs_v2   := product_id:u64 sales:u64 price:u64 praise:u64
//!               category:u32 in_stock:u8 url
//! Remove     := product_id:u64 count:u32 url*
//! Update     := product_id:u64 count:u32 url* opt(sales) opt(price) opt(praise)
//! url        := len:u32 bytes (UTF-8)
//! opt(x)     := 0:u8 | 1:u8 x:u64
//! ```
//!
//! **Versioning.** Tag 3 extends `AddProduct` with the listing attributes
//! (category, stock) that attribute-filtered search needs. The encoder
//! emits it only when some image actually carries non-default listing
//! attributes; products with default listings still encode the original
//! tag-0 layout byte-for-byte, and tag-0 records written by older encoders
//! decode with the defaults (category 0, in stock).
//!
//! Integrity is the log framing's job (CRC32C per record); the decoder here
//! still refuses structurally invalid input — truncated bodies, bad UTF-8,
//! unknown tags, trailing bytes — returning [`CodecError`] instead of
//! panicking, so a log record that passes its CRC but was written by a
//! newer/older encoder degrades into a clean error.

use jdvs_storage::model::{ProductAttributes, ProductEvent, ProductId};

/// Decoding failure: the payload is not a well-formed event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the field being read.
    Truncated {
        /// Field being decoded when the payload ran out.
        field: &'static str,
    },
    /// Unknown event tag byte.
    UnknownTag(u8),
    /// A URL field was not valid UTF-8.
    InvalidUtf8,
    /// Bytes remained after a complete event was decoded.
    TrailingBytes(usize),
    /// A length prefix was implausibly large for the remaining payload.
    LengthOverflow,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { field } => write!(f, "payload truncated reading {field}"),
            CodecError::UnknownTag(t) => write!(f, "unknown event tag {t}"),
            CodecError::InvalidUtf8 => write!(f, "url is not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after event"),
            CodecError::LengthOverflow => write!(f, "length prefix exceeds payload"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_ADD: u8 = 0;
const TAG_REMOVE: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_ADD_V2: u8 = 3;

/// Encodes one event into its log payload.
pub fn encode_event(event: &ProductEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match event {
        ProductEvent::AddProduct { product_id, images } => {
            let listed = images.iter().any(|a| a.category != 0 || !a.in_stock);
            buf.push(if listed { TAG_ADD_V2 } else { TAG_ADD });
            put_u64(&mut buf, product_id.0);
            put_u32(&mut buf, images.len() as u32);
            for a in images {
                put_u64(&mut buf, a.product_id.0);
                put_u64(&mut buf, a.sales);
                put_u64(&mut buf, a.price);
                put_u64(&mut buf, a.praise);
                if listed {
                    put_u32(&mut buf, a.category);
                    buf.push(u8::from(a.in_stock));
                }
                put_str(&mut buf, &a.url);
            }
        }
        ProductEvent::RemoveProduct { product_id, urls } => {
            buf.push(TAG_REMOVE);
            put_u64(&mut buf, product_id.0);
            put_u32(&mut buf, urls.len() as u32);
            for u in urls {
                put_str(&mut buf, u);
            }
        }
        ProductEvent::UpdateAttributes {
            product_id,
            urls,
            sales,
            price,
            praise,
        } => {
            buf.push(TAG_UPDATE);
            put_u64(&mut buf, product_id.0);
            put_u32(&mut buf, urls.len() as u32);
            for u in urls {
                put_str(&mut buf, u);
            }
            put_opt(&mut buf, *sales);
            put_opt(&mut buf, *price);
            put_opt(&mut buf, *praise);
        }
    }
    buf
}

/// Decodes one event from a log payload.
pub fn decode_event(bytes: &[u8]) -> Result<ProductEvent, CodecError> {
    let mut r = Cursor { buf: bytes, pos: 0 };
    let tag = r.u8("tag")?;
    let event = match tag {
        TAG_ADD | TAG_ADD_V2 => {
            let product_id = ProductId(r.u64("product_id")?);
            let count = r.count("image count")?;
            let mut images = Vec::with_capacity(count);
            for _ in 0..count {
                let owner = ProductId(r.u64("attr product_id")?);
                let sales = r.u64("sales")?;
                let price = r.u64("price")?;
                let praise = r.u64("praise")?;
                // Legacy tag-0 records predate listing attributes; they
                // decode with the defaults (category 0, in stock).
                let (category, in_stock) = if tag == TAG_ADD_V2 {
                    (r.u32("category")?, r.u8("in_stock")? != 0)
                } else {
                    (0, true)
                };
                let url = r.string("url")?;
                images.push(
                    ProductAttributes::new(owner, sales, price, praise, url)
                        .with_category(category)
                        .with_stock(in_stock),
                );
            }
            ProductEvent::AddProduct { product_id, images }
        }
        TAG_REMOVE => {
            let product_id = ProductId(r.u64("product_id")?);
            let count = r.count("url count")?;
            let mut urls = Vec::with_capacity(count);
            for _ in 0..count {
                urls.push(r.string("url")?);
            }
            ProductEvent::RemoveProduct { product_id, urls }
        }
        TAG_UPDATE => {
            let product_id = ProductId(r.u64("product_id")?);
            let count = r.count("url count")?;
            let mut urls = Vec::with_capacity(count);
            for _ in 0..count {
                urls.push(r.string("url")?);
            }
            let sales = r.opt("sales")?;
            let price = r.opt("price")?;
            let praise = r.opt("praise")?;
            ProductEvent::UpdateAttributes {
                product_id,
                urls,
                sales,
                price,
                praise,
            }
        }
        other => return Err(CodecError::UnknownTag(other)),
    };
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.pos));
    }
    Ok(event)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated { field });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    /// A count prefix, sanity-bounded by the bytes actually remaining (every
    /// counted element is at least one byte) so corrupt counts fail fast
    /// instead of attempting a giant allocation.
    fn count(&mut self, field: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(field)? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CodecError::LengthOverflow);
        }
        Ok(n)
    }

    fn string(&mut self, field: &'static str) -> Result<String, CodecError> {
        let len = self.u32(field)? as usize;
        if len > self.buf.len() - self.pos {
            return Err(CodecError::LengthOverflow);
        }
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    fn opt(&mut self, field: &'static str) -> Result<Option<u64>, CodecError> {
        match self.u8(field)? {
            0 => Ok(None),
            _ => Ok(Some(self.u64(field)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(product: u64, url: &str) -> ProductAttributes {
        ProductAttributes::new(ProductId(product), 3, 1999, 42, url.to_string())
    }

    fn sample_events() -> Vec<ProductEvent> {
        vec![
            ProductEvent::AddProduct {
                product_id: ProductId(7),
                images: vec![attrs(7, "img/a.jpg"), attrs(7, "img/b.jpg")],
            },
            ProductEvent::AddProduct {
                product_id: ProductId(8),
                images: vec![],
            },
            ProductEvent::RemoveProduct {
                product_id: ProductId(9),
                urls: vec!["x".into(), "".into(), "日本語/url.png".into()],
            },
            ProductEvent::UpdateAttributes {
                product_id: ProductId(10),
                urls: vec!["u".into()],
                sales: Some(u64::MAX),
                price: None,
                praise: Some(0),
            },
            ProductEvent::AddProduct {
                product_id: ProductId(11),
                images: vec![
                    attrs(11, "img/c.jpg").with_category(42).with_stock(false),
                    attrs(11, "img/d.jpg"),
                ],
            },
        ]
    }

    #[test]
    fn default_listings_stay_byte_identical_to_legacy_tag() {
        // A fleet mid-upgrade keeps interoperating: products whose images
        // all carry default listing attributes encode the v1 layout.
        let plain = ProductEvent::AddProduct {
            product_id: ProductId(1),
            images: vec![attrs(1, "a"), attrs(1, "b")],
        };
        assert_eq!(encode_event(&plain)[0], TAG_ADD);

        let listed = ProductEvent::AddProduct {
            product_id: ProductId(2),
            images: vec![attrs(2, "a").with_category(5)],
        };
        assert_eq!(encode_event(&listed)[0], TAG_ADD_V2);
        let decoded = decode_event(&encode_event(&listed)).unwrap();
        assert_eq!(decoded, listed);
    }

    #[test]
    fn round_trips_every_variant() {
        for event in sample_events() {
            let bytes = encode_event(&event);
            assert_eq!(decode_event(&bytes).unwrap(), event);
        }
    }

    #[test]
    fn rejects_unknown_tag_and_trailing_bytes() {
        let mut bytes = encode_event(&sample_events()[0]);
        bytes[0] = 9;
        assert_eq!(decode_event(&bytes), Err(CodecError::UnknownTag(9)));

        let mut bytes = encode_event(&sample_events()[1]);
        bytes.push(0);
        assert_eq!(decode_event(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncation_at_every_length_is_a_clean_error() {
        for event in sample_events() {
            let bytes = encode_event(&event);
            for len in 0..bytes.len() {
                assert!(
                    decode_event(&bytes[..len]).is_err(),
                    "prefix of length {len} must not decode"
                );
            }
        }
    }

    #[test]
    fn corrupt_counts_do_not_allocate_garbage() {
        let mut bytes = encode_event(&ProductEvent::RemoveProduct {
            product_id: ProductId(1),
            urls: vec!["abc".into()],
        });
        // Count lives after tag(1) + product_id(8); blow it up.
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_event(&bytes), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn random_bytes_never_panic() {
        let mut rng = jdvs_vector::rng::Xoshiro256::seed_from(0xC0DEC);
        for _ in 0..500 {
            let len = (rng.next_u64() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = decode_event(&bytes); // must not panic
        }
    }
}
