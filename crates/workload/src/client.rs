//! The closed-loop query driver (Section 3.2's client machine).
//!
//! *"The client machine emulates a different number of concurrent users by
//! sending image query requests to the visual search system."* Closed loop
//! means each emulated user issues a query, waits for the response, and
//! immediately issues the next — so offered load rises with the thread
//! count until the system saturates (the knee of Figure 13(a)).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jdvs_metrics::histogram::{Histogram, SharedHistogram};
use jdvs_search::SearchClient;
use jdvs_storage::ImageStore;
use serde::{Deserialize, Serialize};

use crate::queries::QueryGenerator;

/// Closed-loop run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Concurrent emulated users.
    pub threads: usize,
    /// Measured run length.
    pub duration: Duration,
    /// Unmeasured warmup before the run.
    pub warmup: Duration,
    /// Results per query.
    pub k: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            duration: Duration::from_secs(2),
            warmup: Duration::from_millis(200),
            k: 6,
        }
    }
}

/// The outcome of one closed-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadReport {
    /// Threads used.
    pub threads: usize,
    /// Successful queries in the measured window.
    pub queries: u64,
    /// Failed queries (RPC errors / timeouts).
    pub errors: u64,
    /// Measured wall-clock window.
    pub elapsed: Duration,
    /// Latency distribution of successful queries.
    pub histogram: Histogram,
}

impl LoadReport {
    /// Queries per second over the measured window.
    pub fn qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.queries as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean response time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.histogram.mean_us() / 1e3
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "threads={} qps={:.1} errors={} {}",
            self.threads,
            self.qps(),
            self.errors,
            self.histogram.summary()
        )
    }
}

/// Runs closed-loop load; see the module docs.
#[derive(Debug)]
pub struct ClosedLoopDriver;

impl ClosedLoopDriver {
    /// Drives `config.threads` closed-loop users against `client` with
    /// queries minted by `generator` into `store`. Returns the measured-
    /// window report (warmup excluded).
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0` or `config.k == 0`.
    pub fn run(
        client: &SearchClient,
        generator: &QueryGenerator,
        store: &ImageStore,
        config: ClosedLoopConfig,
    ) -> LoadReport {
        assert!(config.threads > 0, "threads must be positive");
        assert!(config.k > 0, "k must be positive");
        let histogram = Arc::new(SharedHistogram::new());
        let queries = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let measuring = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));

        let measured_elapsed = crossbeam::thread::scope(|scope| {
            for _ in 0..config.threads {
                let client = client.clone();
                let histogram = Arc::clone(&histogram);
                let queries = Arc::clone(&queries);
                let errors = Arc::clone(&errors);
                let measuring = Arc::clone(&measuring);
                let stop = Arc::clone(&stop);
                scope.spawn(move |_| {
                    while !stop.load(Ordering::Relaxed) {
                        let (query, _) = generator.next_query(store, config.k);
                        let start = Instant::now();
                        let result = client.search(query);
                        let latency = start.elapsed();
                        if !measuring.load(Ordering::Relaxed) {
                            continue;
                        }
                        match result {
                            Ok(_) => {
                                histogram.record(latency);
                                queries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(config.warmup);
            measuring.store(true, Ordering::SeqCst);
            let measured_start = Instant::now();
            std::thread::sleep(config.duration);
            measuring.store(false, Ordering::SeqCst);
            let elapsed = measured_start.elapsed();
            stop.store(true, Ordering::SeqCst);
            elapsed
        })
        .expect("closed-loop scope");

        LoadReport {
            threads: config.threads,
            queries: queries.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
            elapsed: measured_elapsed,
            histogram: histogram.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogConfig};
    use crate::scenario::{World, WorldConfig};

    #[test]
    fn load_report_math() {
        let mut h = Histogram::new();
        h.record_us(1_000);
        h.record_us(3_000);
        let r = LoadReport {
            threads: 2,
            queries: 100,
            errors: 1,
            elapsed: Duration::from_secs(2),
            histogram: h,
        };
        assert!((r.qps() - 50.0).abs() < 1e-9);
        assert!((r.mean_ms() - 2.0).abs() < 1e-9);
        assert!(r.summary().contains("qps=50.0"));
    }

    #[test]
    fn zero_elapsed_reports_zero_qps() {
        let r = LoadReport {
            threads: 1,
            queries: 5,
            errors: 0,
            elapsed: Duration::ZERO,
            histogram: Histogram::new(),
        };
        assert_eq!(r.qps(), 0.0);
    }

    #[test]
    fn driver_measures_a_small_world() {
        let world = World::build(WorldConfig {
            catalog: CatalogConfig {
                num_products: 60,
                num_clusters: 6,
                ..Default::default()
            },
            ..WorldConfig::fast_test()
        });
        let generator = QueryGenerator::new(world.catalog(), 9);
        let client = world.client(Duration::from_secs(5));
        let report = ClosedLoopDriver::run(
            &client,
            &generator,
            world.images(),
            ClosedLoopConfig {
                threads: 2,
                duration: Duration::from_millis(300),
                warmup: Duration::from_millis(50),
                k: 3,
            },
        );
        assert!(report.queries > 0, "some queries must complete");
        assert_eq!(report.errors, 0);
        assert!(report.qps() > 0.0);
        assert!(report.histogram.count() == report.queries);
        let _ = Catalog::generate(&CatalogConfig::default()); // silence unused import lints in some cfgs
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_panics() {
        let world = World::build(WorldConfig::fast_test());
        let generator = QueryGenerator::new(world.catalog(), 9);
        let client = world.client(Duration::from_secs(1));
        ClosedLoopDriver::run(
            &client,
            &generator,
            world.images(),
            ClosedLoopConfig {
                threads: 0,
                ..Default::default()
            },
        );
    }
}
