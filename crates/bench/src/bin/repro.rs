//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! USAGE:
//!   repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS:
//!   table1 fig11a fig11b fig12a fig12b fig13a fig13b fig14
//!   ablate-reuse ablate-bitmap ablate-expansion ablate-nprobe
//!   searcher-scan pq-fastscan batch filtered recovery serving lifecycle
//!   all            run everything in order
//!
//! OPTIONS:
//!   --scale <f64>  dataset/event scale factor (default 1.0)
//!   --quick        shorter measurement windows (smoke run)
//!   --out <dir>    JSON output directory (default bench_results/)
//! ```
//!
//! Absolute numbers depend on the host; EXPERIMENTS.md records the shape
//! comparison against the paper (who wins, by what factor, where curves
//! bend).

use std::path::PathBuf;
use std::time::Instant;

use jdvs_bench::experiments::{self, Ctx, ALL};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale <f64>] [--quick] [--out <dir>] <experiment>...\n\
         experiments: {} all",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut ctx = Ctx::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                ctx.scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --scale value: {v}");
                    std::process::exit(2);
                });
            }
            "--quick" => ctx.quick = true,
            "--out" => ctx.out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage();
            }
            exp => wanted.push(exp.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    let ids: Vec<&str> = if wanted.iter().any(|w| w == "all") {
        ALL.to_vec()
    } else {
        for w in &wanted {
            if !ALL.contains(&w.as_str()) {
                eprintln!("unknown experiment {w:?}");
                usage();
            }
        }
        wanted.iter().map(String::as_str).collect()
    };

    println!(
        "jdvs repro — scale {:.2}{}, results → {}\n",
        ctx.scale,
        if ctx.quick { " (quick)" } else { "" },
        ctx.out_dir.display()
    );
    let t0 = Instant::now();
    for id in ids {
        let start = Instant::now();
        println!("--- running {id} ---");
        for result in experiments::run(id, &ctx) {
            result.print();
            if let Err(e) = result.save_json(&ctx.out_dir) {
                eprintln!("warning: could not save {}.json: {e}", result.id);
            }
        }
        println!("({id} took {:?})\n", start.elapsed());
    }
    println!("all done in {:?}", t0.elapsed());
}
