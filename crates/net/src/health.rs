//! Per-node health tracking: a consecutive-failure circuit breaker.
//!
//! The paper's replicated serving tier only tolerates faults gracefully if
//! dead replicas stop being *re-tried on every rotation*. A
//! [`HealthTracker`] sits next to each [`crate::node::NodeHandle`] inside a
//! [`crate::balancer::Balancer`] and implements the classic three-state
//! breaker:
//!
//! - **Closed** — the node is believed healthy; calls flow.
//! - **Open** — `failure_threshold` consecutive failures tripped the
//!   breaker; calls are skipped until `cooldown` elapses.
//! - **Half-open** — the cooldown expired; exactly one *probe* call is let
//!   through. Success closes the breaker, failure re-opens it for another
//!   cooldown.
//!
//! All transitions are driven by the caller reporting outcomes
//! ([`HealthTracker::record_success`] / [`HealthTracker::record_failure`]);
//! the tracker never spawns threads or timers. Methods with an `_at`
//! suffix take an explicit [`Instant`] so tests can drive the clock.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Tuning knobs for a [`HealthTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that trip the breaker from closed to open.
    pub failure_threshold: u32,
    /// How long an open breaker blocks calls before allowing a half-open
    /// probe. Also bounds how long a stuck half-open probe blocks the next
    /// one (a probe whose outcome is never reported does not wedge the
    /// breaker).
    pub cooldown: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        }
    }
}

impl HealthPolicy {
    /// A policy that never opens (health tracking effectively disabled).
    pub fn disabled() -> Self {
        Self {
            failure_threshold: u32::MAX,
            cooldown: Duration::ZERO,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Node believed healthy; calls flow.
    Closed,
    /// Breaker tripped; calls are skipped until the cooldown expires.
    Open,
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen,
}

#[derive(Debug)]
struct TrackerInner {
    state: CircuitState,
    consecutive_failures: u32,
    /// When the current open/half-open window expires.
    window_ends: Option<Instant>,
}

/// A consecutive-failure circuit breaker for one node; see the module docs.
#[derive(Debug)]
pub struct HealthTracker {
    policy: HealthPolicy,
    inner: Mutex<TrackerInner>,
}

impl HealthTracker {
    /// Creates a closed tracker.
    pub fn new(policy: HealthPolicy) -> Self {
        Self {
            policy,
            inner: Mutex::new(TrackerInner {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                window_ends: None,
            }),
        }
    }

    /// The policy this tracker runs.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Current breaker state.
    pub fn state(&self) -> CircuitState {
        self.inner.lock().state
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.inner.lock().consecutive_failures
    }

    /// Whether a call should be attempted right now. An open breaker whose
    /// cooldown has expired transitions to half-open and admits exactly one
    /// probe (the caller that got `true`).
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// [`HealthTracker::allow`] with an explicit clock (for tests).
    pub fn allow_at(&self, now: Instant) -> bool {
        let mut g = self.inner.lock();
        match g.state {
            CircuitState::Closed => true,
            CircuitState::Open | CircuitState::HalfOpen => {
                // `window_ends` is always Some in these states; treat a
                // missing value as an expired window for robustness.
                let expired = g.window_ends.is_none_or(|end| now >= end);
                if expired {
                    g.state = CircuitState::HalfOpen;
                    // Re-arm so a probe that never reports back does not
                    // wedge the breaker in half-open forever.
                    g.window_ends = Some(now + self.policy.cooldown);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful call: closes the breaker and resets the
    /// failure streak.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        g.state = CircuitState::Closed;
        g.consecutive_failures = 0;
        g.window_ends = None;
    }

    /// Reports a failed call. Returns `true` when this failure transitioned
    /// the breaker from closed to open (for metrics).
    pub fn record_failure(&self) -> bool {
        self.record_failure_at(Instant::now())
    }

    /// [`HealthTracker::record_failure`] with an explicit clock.
    pub fn record_failure_at(&self, now: Instant) -> bool {
        let mut g = self.inner.lock();
        g.consecutive_failures = g.consecutive_failures.saturating_add(1);
        let should_open = g.state == CircuitState::HalfOpen
            || g.consecutive_failures >= self.policy.failure_threshold;
        if should_open {
            let newly_opened = g.state == CircuitState::Closed;
            g.state = CircuitState::Open;
            g.window_ends = Some(now + self.policy.cooldown);
            newly_opened
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32, cooldown_ms: u64) -> HealthPolicy {
        HealthPolicy {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn starts_closed_and_allows() {
        let t = HealthTracker::new(HealthPolicy::default());
        assert_eq!(t.state(), CircuitState::Closed);
        assert!(t.allow());
        assert_eq!(t.consecutive_failures(), 0);
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let t = HealthTracker::new(policy(3, 100));
        let now = Instant::now();
        assert!(!t.record_failure_at(now));
        assert!(!t.record_failure_at(now));
        assert_eq!(t.state(), CircuitState::Closed);
        assert!(t.record_failure_at(now), "third failure opens the breaker");
        assert_eq!(t.state(), CircuitState::Open);
        assert!(!t.allow_at(now), "open breaker blocks calls");
    }

    #[test]
    fn success_resets_the_streak() {
        let t = HealthTracker::new(policy(3, 100));
        let now = Instant::now();
        t.record_failure_at(now);
        t.record_failure_at(now);
        t.record_success();
        assert_eq!(t.consecutive_failures(), 0);
        t.record_failure_at(now);
        t.record_failure_at(now);
        assert_eq!(
            t.state(),
            CircuitState::Closed,
            "streak restarted after success"
        );
    }

    #[test]
    fn cooldown_admits_one_half_open_probe() {
        let t = HealthTracker::new(policy(1, 50));
        let now = Instant::now();
        t.record_failure_at(now);
        assert_eq!(t.state(), CircuitState::Open);
        assert!(!t.allow_at(now + Duration::from_millis(10)));
        let later = now + Duration::from_millis(60);
        assert!(t.allow_at(later), "expired cooldown admits a probe");
        assert_eq!(t.state(), CircuitState::HalfOpen);
        assert!(!t.allow_at(later), "only one probe at a time");
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let t = HealthTracker::new(policy(1, 50));
        let now = Instant::now();
        t.record_failure_at(now);
        let later = now + Duration::from_millis(60);
        assert!(t.allow_at(later));
        t.record_success();
        assert_eq!(t.state(), CircuitState::Closed);

        t.record_failure_at(later);
        let probe_time = later + Duration::from_millis(60);
        assert!(t.allow_at(probe_time));
        t.record_failure_at(probe_time);
        assert_eq!(t.state(), CircuitState::Open, "failed probe reopens");
        assert!(!t.allow_at(probe_time + Duration::from_millis(10)));
    }

    #[test]
    fn stuck_probe_does_not_wedge_the_breaker() {
        let t = HealthTracker::new(policy(1, 50));
        let now = Instant::now();
        t.record_failure_at(now);
        let probe1 = now + Duration::from_millis(60);
        assert!(t.allow_at(probe1));
        // The probe's outcome is never reported; after another cooldown a
        // new probe is admitted.
        let probe2 = probe1 + Duration::from_millis(60);
        assert!(t.allow_at(probe2));
    }

    #[test]
    fn disabled_policy_never_opens() {
        let t = HealthTracker::new(HealthPolicy::disabled());
        let now = Instant::now();
        for _ in 0..1_000 {
            assert!(!t.record_failure_at(now));
        }
        assert_eq!(t.state(), CircuitState::Closed);
        assert!(t.allow_at(now));
    }

    #[test]
    fn opened_transition_is_reported_once() {
        let t = HealthTracker::new(policy(2, 100));
        let now = Instant::now();
        assert!(!t.record_failure_at(now));
        assert!(t.record_failure_at(now), "closed -> open reported");
        assert!(
            !t.record_failure_at(now),
            "already open: not a new transition"
        );
    }
}
