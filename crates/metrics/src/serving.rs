//! Counters for a network tier's admission front door.
//!
//! One [`ServingMetrics`] instance is shared by every listener of a tier
//! (blenders, brokers, or searchers), so a snapshot answers the overload
//! questions the admission controller raises: how much load was admitted,
//! how much was shed and *why* (rate limit, full queue, hopeless deadline,
//! drain), and how deep the queue ran.

use crate::counter::Counter;
use crate::gauge::Gauge;
use crate::histogram::{Histogram, SharedHistogram};

/// Shared admission/overload counters of one serving tier; all fields are
/// thread-safe.
#[derive(Debug, Default)]
pub struct ServingMetrics {
    /// Requests admitted past the front door.
    pub admitted: Counter,
    /// Admitted requests whose handler completed (a response was written).
    pub completed: Counter,
    /// Requests shed by the token-bucket rate limiter.
    pub shed_rate_limited: Counter,
    /// Requests shed because the admission queue was full.
    pub shed_queue_full: Counter,
    /// Requests shed because their remaining deadline budget could not
    /// cover the estimated queue wait (or ran out while queued).
    pub shed_deadline: Counter,
    /// Requests shed because the tier was draining for shutdown.
    pub shed_draining: Counter,
    /// Request frames that failed to decode (corrupt or truncated).
    pub decode_errors: Counter,
    /// High-water mark of concurrently executing handlers.
    pub max_in_flight: Gauge,
    /// High-water mark of requests waiting for a concurrency slot.
    pub max_queue_depth: Gauge,
    /// Distribution of executed batch sizes at this tier's micro-batcher
    /// (recorded as a raw count, not a duration; one sample per engine
    /// call, including bypassed singletons). Empty when batching is off.
    pub batch_depth: SharedHistogram,
    /// Time each batched request spent held by the micro-batcher between
    /// arrival and engine execution — the latency cost the batch window
    /// buys throughput with.
    pub batch_wait: SharedHistogram,
}

impl ServingMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shed for any reason.
    pub fn total_shed(&self) -> u64 {
        self.shed_rate_limited.get()
            + self.shed_queue_full.get()
            + self.shed_deadline.get()
            + self.shed_draining.get()
    }

    /// Plain-value snapshot of every counter.
    pub fn snapshot(&self) -> ServingSnapshot {
        ServingSnapshot {
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            shed_rate_limited: self.shed_rate_limited.get(),
            shed_queue_full: self.shed_queue_full.get(),
            shed_deadline: self.shed_deadline.get(),
            shed_draining: self.shed_draining.get(),
            decode_errors: self.decode_errors.get(),
            max_in_flight: self.max_in_flight.get(),
            max_queue_depth: self.max_queue_depth.get(),
            batch_depth: self.batch_depth.snapshot(),
            batch_wait: self.batch_wait.snapshot(),
        }
    }
}

/// Point-in-time values of a [`ServingMetrics`].
#[derive(Debug, Clone, Default)]
pub struct ServingSnapshot {
    /// See [`ServingMetrics::admitted`].
    pub admitted: u64,
    /// See [`ServingMetrics::completed`].
    pub completed: u64,
    /// See [`ServingMetrics::shed_rate_limited`].
    pub shed_rate_limited: u64,
    /// See [`ServingMetrics::shed_queue_full`].
    pub shed_queue_full: u64,
    /// See [`ServingMetrics::shed_deadline`].
    pub shed_deadline: u64,
    /// See [`ServingMetrics::shed_draining`].
    pub shed_draining: u64,
    /// See [`ServingMetrics::decode_errors`].
    pub decode_errors: u64,
    /// See [`ServingMetrics::max_in_flight`].
    pub max_in_flight: u64,
    /// See [`ServingMetrics::max_queue_depth`].
    pub max_queue_depth: u64,
    /// See [`ServingMetrics::batch_depth`].
    pub batch_depth: Histogram,
    /// See [`ServingMetrics::batch_wait`].
    pub batch_wait: Histogram,
}

impl ServingSnapshot {
    /// Requests shed for any reason.
    pub fn total_shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_deadline + self.shed_draining
    }

    /// Fraction of offered requests that were shed (`0.0` when nothing was
    /// offered).
    pub fn shed_ratio(&self) -> f64 {
        let offered = self.admitted + self.total_shed();
        if offered == 0 {
            0.0
        } else {
            self.total_shed() as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServingMetrics::new();
        m.admitted.add(8);
        m.completed.add(8);
        m.shed_queue_full.add(2);
        m.shed_deadline.incr();
        m.max_in_flight.set_max(3);
        let s = m.snapshot();
        assert_eq!(s.admitted, 8);
        assert_eq!(s.total_shed(), 3);
        assert_eq!(m.total_shed(), 3);
        assert_eq!(s.max_in_flight, 3);
        assert!((s.shed_ratio() - 3.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_carries_batch_histograms() {
        let m = ServingMetrics::new();
        m.batch_depth.record_us(1);
        m.batch_depth.record_us(8);
        m.batch_wait.record_us(250);
        let s = m.snapshot();
        assert_eq!(s.batch_depth.count(), 2);
        assert_eq!(s.batch_depth.max_us(), 8);
        assert_eq!(s.batch_wait.count(), 1);
        assert_eq!(s.batch_wait.max_us(), 250);
        assert_eq!(ServingSnapshot::default().batch_depth.count(), 0);
    }

    #[test]
    fn shed_ratio_handles_zero_offered() {
        assert_eq!(ServingSnapshot::default().shed_ratio(), 0.0);
    }
}
