//! Sharded concurrent key-value store.
//!
//! Stands in for the distributed KV store the paper consults before feature
//! extraction: *"The feature extraction process first checks if the image's
//! features have been extracted through a distributed key-value store."*
//! Only the contract matters to the system under study — concurrent
//! `get`/`put`/`contains` with read-mostly traffic — so the implementation
//! is a fixed array of `RwLock`-guarded hash maps ("shards"), the standard
//! recipe for low-contention concurrent maps.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

use parking_lot::RwLock;

/// FNV-1a hasher (deterministic across runs, unlike `RandomState`).
#[derive(Debug, Default, Clone)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// A sharded, thread-safe key-value store.
///
/// # Example
///
/// ```
/// use jdvs_storage::KvStore;
///
/// let kv: KvStore<u64, String> = KvStore::new();
/// assert!(kv.put(1, "features".to_string()).is_none());
/// assert_eq!(kv.get(&1), Some("features".to_string()));
/// assert!(kv.contains(&1));
/// assert_eq!(kv.remove(&1), Some("features".to_string()));
/// assert!(kv.get(&1).is_none());
/// ```
pub struct KvStore<K, V> {
    shards: Vec<RwLock<HashMap<K, V, FnvBuild>>>,
    build: FnvBuild,
}

impl<K, V> std::fmt::Debug for KvStore<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("shards", &self.shards.len())
            .field(
                "len",
                &self.shards.iter().map(|s| s.read().len()).sum::<usize>(),
            )
            .finish()
    }
}

impl<K: Eq + Hash, V: Clone> Default for KvStore<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V: Clone> KvStore<K, V> {
    /// Default shard count; 64 keeps contention negligible for the thread
    /// counts the experiments use (≤ ~40).
    pub const DEFAULT_SHARDS: usize = 64;

    /// Creates a store with [`KvStore::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a store with an explicit shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self {
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            build: FnvBuild::default(),
        }
    }

    fn shard_for(&self, key: &K) -> &RwLock<HashMap<K, V, FnvBuild>> {
        let h = self.build.hash_one(key);
        // Use the high bits: FNV's low bits correlate with short keys.
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn put(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Returns a clone of the value under `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).read().get(key).cloned()
    }

    /// Returns `true` if `key` is present (cheaper than `get` for large
    /// values — this is the feature-dedup fast path).
    pub fn contains(&self, key: &K) -> bool {
        self.shard_for(key).read().contains_key(key)
    }

    /// Removes and returns the value under `key`.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }

    /// Inserts the value produced by `make` unless `key` is already present;
    /// returns the resident value either way. The closure runs outside any
    /// lock held on other shards but inside this shard's write lock, which
    /// makes the check-then-insert atomic (no duplicate feature extraction
    /// for concurrent misses on the same key).
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> V {
        let shard = self.shard_for(&key);
        if let Some(v) = shard.read().get(&key) {
            return v.clone();
        }
        let mut guard = shard.write();
        guard.entry(key).or_insert_with(make).clone()
    }

    /// Total number of entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every entry.
    pub fn clear(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    /// Snapshot of all keys (order unspecified). Intended for tests and
    /// full-index rebuilds, not hot paths.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            out.extend(s.read().keys().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_remove_round_trip() {
        let kv: KvStore<String, u32> = KvStore::new();
        assert!(kv.put("a".into(), 1).is_none());
        assert_eq!(kv.put("a".into(), 2), Some(1));
        assert_eq!(kv.get(&"a".to_string()), Some(2));
        assert_eq!(kv.remove(&"a".to_string()), Some(2));
        assert!(kv.is_empty());
    }

    #[test]
    fn contains_and_len() {
        let kv: KvStore<u64, u64> = KvStore::new();
        for i in 0..100 {
            kv.put(i, i * 2);
        }
        assert_eq!(kv.len(), 100);
        assert!(kv.contains(&50));
        assert!(!kv.contains(&1000));
    }

    #[test]
    fn get_or_insert_with_runs_once() {
        let kv: KvStore<u32, u32> = KvStore::new();
        let mut calls = 0;
        let v = kv.get_or_insert_with(1, || {
            calls += 1;
            42
        });
        assert_eq!(v, 42);
        let v2 = kv.get_or_insert_with(1, || {
            calls += 1;
            7
        });
        assert_eq!(v2, 42, "resident value wins");
        assert_eq!(calls, 1);
    }

    #[test]
    fn clear_empties_all_shards() {
        let kv: KvStore<u64, u64> = KvStore::with_shards(4);
        for i in 0..100 {
            kv.put(i, i);
        }
        kv.clear();
        assert!(kv.is_empty());
    }

    #[test]
    fn keys_returns_everything() {
        let kv: KvStore<u64, ()> = KvStore::new();
        for i in 0..50 {
            kv.put(i, ());
        }
        let mut keys = kv.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        KvStore::<u64, u64>::with_shards(0);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let kv = Arc::new(KvStore::<u64, u64>::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let key = t * 1_000 + i;
                        kv.put(key, key);
                        assert_eq!(kv.get(&key), Some(key));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 8_000);
    }

    #[test]
    fn concurrent_get_or_insert_yields_single_value() {
        let kv = Arc::new(KvStore::<u64, u64>::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let kv = Arc::clone(&kv);
                std::thread::spawn(move || kv.get_or_insert_with(99, move || t))
            })
            .collect();
        let got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            got.windows(2).all(|w| w[0] == w[1]),
            "all threads see one value: {got:?}"
        );
    }
}
