//! # jdvs-storage
//!
//! Storage substrates the JD visual search system depends on, rebuilt as
//! in-process equivalents (see DESIGN.md §2 for the substitution rationale):
//!
//! - [`model`] — the shared domain schema: products, images, attributes and
//!   the [`model::ProductEvent`] update messages that drive both full and
//!   real-time indexing.
//! - [`kv`] — a sharded concurrent key-value store, standing in for the
//!   distributed KV store the paper uses to deduplicate feature extraction.
//! - [`queue`] — an ordered, offset-addressed, multi-consumer message log,
//!   standing in for the production message queue; supports both bounded
//!   replay (full indexing reads a day's buffer) and tail-following
//!   (real-time indexing).
//! - [`image_store`] — a blob store of (synthetic) product images keyed by
//!   image URL.
//! - [`feature_db`] — the feature database: extracted feature vectors plus
//!   the owning product's attributes, keyed by image URL hash.
//! - [`checksum`] — CRC32C, the checksum guarding every durable byte
//!   (snapshot trailers, ingestion-log frames, checkpoint manifests).
//!
//! ## Example
//!
//! ```
//! use jdvs_storage::queue::MessageQueue;
//!
//! let q = MessageQueue::new();
//! q.publish("hello");
//! q.publish("world");
//! let mut consumer = q.consumer();
//! assert_eq!(consumer.poll_now(), Some("hello"));
//! assert_eq!(consumer.poll_now(), Some("world"));
//! assert_eq!(consumer.poll_now(), None);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checksum;
pub mod feature_db;
pub mod image_store;
pub mod kv;
pub mod lru;
pub mod model;
pub mod queue;

pub use feature_db::FeatureDb;
pub use image_store::ImageStore;
pub use kv::KvStore;
pub use lru::LruCache;
pub use model::{ImageKey, ProductAttributes, ProductEvent, ProductId};
pub use queue::MessageQueue;
