//! Synthetic product catalogs.
//!
//! A catalog is a set of products, each with 1–4 images, a price, sales and
//! praise counts, and a **visual cluster** (product family): all images of
//! a cluster share a `visual_seed`, so the synthetic extractor maps them to
//! nearby feature vectors. That is what gives the index a real
//! nearest-neighbour structure and makes "similar product" queries
//! meaningful (Figure 14's qualitative examples become measurable
//! intra-cluster hit rates).

use jdvs_storage::model::{ProductAttributes, ProductEvent, ProductId};
use jdvs_storage::ImageStore;
use jdvs_vector::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Catalog shape parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Number of products.
    pub num_products: usize,
    /// Maximum images per product (uniform in `1..=max`).
    pub max_images_per_product: usize,
    /// Number of visual clusters (product families).
    pub num_clusters: usize,
    /// Seed for all catalog randomness.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            num_products: 1_000,
            max_images_per_product: 3,
            num_clusters: 50,
            seed: 0x0CA7_A106,
        }
    }
}

/// One product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Product {
    /// Stable id.
    pub id: ProductId,
    /// Visual cluster (family) this product belongs to.
    pub cluster: u64,
    /// Image URLs (1..=max per product).
    pub urls: Vec<String>,
    /// Initial sales count.
    pub sales: u64,
    /// Price in minor units.
    pub price: u64,
    /// Initial praise count.
    pub praise: u64,
}

impl Product {
    /// Attribute records for each image (what an `AddProduct` carries).
    pub fn image_attributes(&self) -> Vec<ProductAttributes> {
        self.urls
            .iter()
            .map(|u| {
                ProductAttributes::new(self.id, self.sales, self.price, self.praise, u.clone())
            })
            .collect()
    }

    /// The `AddProduct` event (re-)listing this product.
    pub fn add_event(&self) -> ProductEvent {
        ProductEvent::AddProduct {
            product_id: self.id,
            images: self.image_attributes(),
        }
    }

    /// The `RemoveProduct` event delisting this product.
    pub fn remove_event(&self) -> ProductEvent {
        ProductEvent::RemoveProduct {
            product_id: self.id,
            urls: self.urls.clone(),
        }
    }

    /// The visual seed all this product's images share.
    pub fn visual_seed(&self) -> u64 {
        self.cluster
    }
}

/// A generated catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    products: Vec<Product>,
    num_clusters: usize,
    seed: u64,
}

impl Catalog {
    /// Generates a catalog deterministically from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any count in `config` is zero.
    pub fn generate(config: &CatalogConfig) -> Self {
        assert!(config.num_products > 0, "num_products must be positive");
        assert!(
            config.max_images_per_product > 0,
            "max_images_per_product must be positive"
        );
        assert!(config.num_clusters > 0, "num_clusters must be positive");
        let mut rng = Xoshiro256::seed_from(config.seed);
        let products = (0..config.num_products)
            .map(|i| {
                let id = ProductId(i as u64 + 1);
                let cluster = rng.next_bounded(config.num_clusters as u64);
                let n_images = 1 + rng.next_index(config.max_images_per_product);
                let urls = (0..n_images)
                    .map(|j| format!("https://img.jd.test/sku/{}/img{j}.jpg", id.0))
                    .collect();
                Product {
                    id,
                    cluster,
                    urls,
                    sales: rng.next_bounded(100_000),
                    price: 99 + rng.next_bounded(1_000_000),
                    praise: rng.next_bounded(10_000),
                }
            })
            .collect();
        Self {
            products,
            num_clusters: config.num_clusters,
            seed: config.seed,
        }
    }

    /// The products.
    pub fn products(&self) -> &[Product] {
        &self.products
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// Returns `true` for an empty catalog (cannot happen via `generate`).
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// Number of visual clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Total images across products.
    pub fn num_images(&self) -> usize {
        self.products.iter().map(|p| p.urls.len()).sum()
    }

    /// Generates every product's image blobs into `store`.
    pub fn materialize(&self, store: &ImageStore) {
        for p in &self.products {
            for url in &p.urls {
                store.put_synthetic(url, p.visual_seed());
            }
        }
    }

    /// `AddProduct` events for the whole catalog, in id order (initial bulk
    /// load / the full indexer's day-log prefix).
    pub fn bootstrap_events(&self) -> Vec<ProductEvent> {
        self.products.iter().map(Product::add_event).collect()
    }

    /// Appends a brand-new product (used by the event generator for the
    /// non-relist additions) and returns it.
    pub fn push_new_product(&mut self, rng: &mut Xoshiro256) -> &Product {
        let id = ProductId(self.products.len() as u64 + 1);
        let cluster = rng.next_bounded(self.num_clusters as u64);
        let n_images = 1 + rng.next_index(3);
        let urls = (0..n_images)
            .map(|j| format!("https://img.jd.test/sku/{}/img{j}.jpg", id.0))
            .collect();
        self.products.push(Product {
            id,
            cluster,
            urls,
            sales: 0,
            price: 99 + rng.next_bounded(1_000_000),
            praise: 0,
        });
        self.products.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CatalogConfig {
            num_products: 100,
            ..Default::default()
        };
        assert_eq!(Catalog::generate(&cfg), Catalog::generate(&cfg));
    }

    #[test]
    fn product_shape_is_respected() {
        let cfg = CatalogConfig {
            num_products: 200,
            max_images_per_product: 4,
            num_clusters: 10,
            seed: 7,
        };
        let cat = Catalog::generate(&cfg);
        assert_eq!(cat.len(), 200);
        assert!(!cat.is_empty());
        for p in cat.products() {
            assert!((1..=4).contains(&p.urls.len()));
            assert!(p.cluster < 10);
            assert!(p.price >= 99);
        }
        assert!(cat.num_images() >= 200);
    }

    #[test]
    fn urls_are_unique_across_catalog() {
        let cat = Catalog::generate(&CatalogConfig {
            num_products: 500,
            ..Default::default()
        });
        let mut urls: Vec<&String> = cat.products().iter().flat_map(|p| &p.urls).collect();
        let before = urls.len();
        urls.sort();
        urls.dedup();
        assert_eq!(urls.len(), before);
    }

    #[test]
    fn all_clusters_are_used() {
        let cat = Catalog::generate(&CatalogConfig {
            num_products: 500,
            num_clusters: 10,
            ..Default::default()
        });
        let clusters: std::collections::HashSet<u64> =
            cat.products().iter().map(|p| p.cluster).collect();
        assert_eq!(clusters.len(), 10);
    }

    #[test]
    fn materialize_fills_image_store() {
        let cat = Catalog::generate(&CatalogConfig {
            num_products: 50,
            ..Default::default()
        });
        let store = ImageStore::with_blob_len(32);
        cat.materialize(&store);
        assert_eq!(store.len(), cat.num_images());
        // Every URL resolves.
        for p in cat.products() {
            for u in &p.urls {
                assert!(store.get_by_url(u).is_some());
            }
        }
    }

    #[test]
    fn events_carry_full_image_sets() {
        let cat = Catalog::generate(&CatalogConfig {
            num_products: 10,
            ..Default::default()
        });
        let p = &cat.products()[0];
        match p.add_event() {
            ProductEvent::AddProduct { product_id, images } => {
                assert_eq!(product_id, p.id);
                assert_eq!(images.len(), p.urls.len());
                assert_eq!(images[0].sales, p.sales);
            }
            _ => panic!("wrong event kind"),
        }
        match p.remove_event() {
            ProductEvent::RemoveProduct { urls, .. } => assert_eq!(urls, p.urls),
            _ => panic!("wrong event kind"),
        }
        assert_eq!(cat.bootstrap_events().len(), 10);
    }

    #[test]
    fn push_new_product_extends_catalog() {
        let mut cat = Catalog::generate(&CatalogConfig {
            num_products: 5,
            ..Default::default()
        });
        let mut rng = Xoshiro256::seed_from(1);
        let id = cat.push_new_product(&mut rng).id;
        assert_eq!(id, ProductId(6));
        assert_eq!(cat.len(), 6);
    }
}
