//! Message-queue throughput — the update path's front door: publishers
//! append product events, every searcher tail-follows (Section 2.3).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jdvs_storage::MessageQueue;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("publish_10k", |b| {
        b.iter_with_setup(MessageQueue::<u64>::new, |q| {
            for i in 0..10_000u64 {
                q.publish(black_box(i));
            }
            q.len()
        })
    });

    group.bench_function("publish_batch_10k", |b| {
        b.iter_with_setup(MessageQueue::<u64>::new, |q| {
            q.publish_batch(0..10_000u64);
            q.len()
        })
    });

    // One publisher feeding N tail-following consumers — the paper's
    // every-searcher-follows-the-queue fan-out.
    for consumers in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("drain_10k_by_consumers", consumers),
            &consumers,
            |b, &n| {
                b.iter_with_setup(
                    || {
                        let q = MessageQueue::<u64>::new();
                        q.publish_batch(0..10_000u64);
                        q
                    },
                    |q| {
                        let handles: Vec<_> = (0..n)
                            .map(|_| {
                                let mut c = q.consumer();
                                std::thread::spawn(move || {
                                    let mut sum = 0u64;
                                    while let Some(v) = c.poll_now() {
                                        sum = sum.wrapping_add(v);
                                    }
                                    sum
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
                    },
                )
            },
        );
    }

    group.throughput(Throughput::Elements(1));
    group.bench_function("poll_now_hit", |b| {
        let q = MessageQueue::new();
        q.publish_batch(0..10_000_000u64);
        let mut c = q.consumer();
        b.iter(|| c.poll_now())
    });

    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
