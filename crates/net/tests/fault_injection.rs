//! Fault-injection semantics observed through a live [`NodeHandle`]:
//! probability clamping, straggler slowdowns, and down/recover cycles.

use std::time::{Duration, Instant};

use jdvs_net::node::Node;
use jdvs_net::rpc::{RpcError, Service};

struct Echo;

impl Service for Echo {
    type Request = u64;
    type Response = u64;
    fn handle(&self, req: u64) -> u64 {
        req
    }
}

const DL: Duration = Duration::from_secs(5);

#[test]
fn drop_probability_above_one_clamps_to_always_drop() {
    let node = Node::spawn("clamp-hi", Echo, 1);
    node.faults().set_drop_probability(2.0);
    let h = node.handle();
    for i in 0..50 {
        assert_eq!(h.call(i, DL), Err(RpcError::Dropped), "p=2.0 clamps to 1.0");
    }
    node.shutdown();
}

#[test]
fn negative_drop_probability_clamps_to_never_drop() {
    let node = Node::spawn("clamp-lo", Echo, 1);
    node.faults().set_drop_probability(-3.0);
    let h = node.handle();
    for i in 0..50 {
        assert_eq!(h.call(i, DL), Ok(i), "p=-3.0 clamps to 0.0");
    }
    node.shutdown();
}

#[test]
fn slowdown_delays_every_call_by_at_least_the_straggler_penalty() {
    let node = Node::spawn("straggler", Echo, 1);
    let penalty = Duration::from_millis(40);
    node.faults().set_slowdown(penalty);
    let h = node.handle();
    for i in 0..3 {
        let start = Instant::now();
        assert_eq!(h.call(i, DL), Ok(i));
        assert!(
            start.elapsed() >= penalty,
            "straggler penalty applies: {:?} < {penalty:?}",
            start.elapsed()
        );
    }
    // Clearing the slowdown restores fast answers.
    node.faults().set_slowdown(Duration::ZERO);
    let start = Instant::now();
    assert_eq!(h.call(9, DL), Ok(9));
    assert!(
        start.elapsed() < penalty,
        "penalty cleared: {:?}",
        start.elapsed()
    );
    node.shutdown();
}

#[test]
fn slow_service_times_out_when_the_deadline_is_shorter_than_the_work() {
    struct Sleepy;
    impl Service for Sleepy {
        type Request = u64;
        type Response = u64;
        fn handle(&self, req: u64) -> u64 {
            std::thread::sleep(Duration::from_millis(200));
            req
        }
    }
    let node = Node::spawn("too-slow", Sleepy, 1);
    let h = node.handle();
    let deadline = Duration::from_millis(30);
    assert_eq!(h.call(1, deadline), Err(RpcError::Timeout { deadline }));
    node.shutdown();
}

#[test]
fn down_then_recover_transitions_are_visible_to_callers() {
    let node = Node::spawn("flapper", Echo, 1);
    let h = node.handle();
    assert_eq!(h.call(1, DL), Ok(1), "healthy before the fault");
    assert!(!h.is_down());

    node.faults().set_down(true);
    assert!(h.is_down());
    assert_eq!(
        h.call(2, DL),
        Err(RpcError::NodeDown),
        "downed node rejects calls"
    );

    node.faults().set_down(false);
    assert!(!h.is_down());
    assert_eq!(h.call(3, DL), Ok(3), "recovery is immediate");
    node.shutdown();
}

#[test]
fn faults_compose_with_independent_handles() {
    // Two handles to the same node observe the same injected fault state.
    let node = Node::spawn("shared", Echo, 2);
    let h1 = node.handle();
    let h2 = node.handle();
    node.faults().set_drop_probability(1.0);
    assert_eq!(h1.call(1, DL), Err(RpcError::Dropped));
    assert_eq!(h2.call(2, DL), Err(RpcError::Dropped));
    node.faults().set_drop_probability(0.0);
    assert_eq!(h1.call(3, DL), Ok(3));
    assert_eq!(h2.call(4, DL), Ok(4));
    node.shutdown();
}
