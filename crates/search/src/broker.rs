//! The broker service (middle of Figure 10).
//!
//! *"A broker forwards the query to all the searchers it connects to and
//! collects the partial search results from each searcher."* A broker group
//! owns a subset of partitions; each instance holds, per owned partition, a
//! replica-failover [`Balancer`] over that partition's searchers. Fan-out
//! is parallel (scoped threads — one in-flight call per partition), and the
//! partial top-k lists are merged into the group's top-k.

use std::time::Duration;

use jdvs_net::balancer::Balancer;
use jdvs_net::rpc::Service;
use jdvs_vector::topk::TopK;

use crate::protocol::{FanoutQuery, PartialHit, PartialResponse};
use crate::searcher::SearcherService;

/// One broker instance of a broker group.
pub struct BrokerService {
    group: usize,
    /// One replica set per owned partition.
    partitions: Vec<Balancer<SearcherService>>,
    searcher_deadline: Duration,
}

impl std::fmt::Debug for BrokerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerService")
            .field("group", &self.group)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

impl BrokerService {
    /// Creates a broker instance for `group` over its partitions' replica
    /// balancers.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn new(
        group: usize,
        partitions: Vec<Balancer<SearcherService>>,
        searcher_deadline: Duration,
    ) -> Self {
        assert!(!partitions.is_empty(), "a broker group must own at least one partition");
        Self { group, partitions, searcher_deadline }
    }

    /// This instance's broker group.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Partitions owned.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Fans `query` to every owned partition in parallel and merges the
    /// partial results into this group's top-k. Failed partitions are
    /// silently absent from the merge (availability over completeness, as
    /// in production fan-out search).
    pub fn execute(&self, query: &FanoutQuery) -> PartialResponse {
        let responses: Vec<Option<PartialResponse>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .partitions
                    .iter()
                    .map(|balancer| {
                        let q = query.clone();
                        scope.spawn(move |_| balancer.call(q, self.searcher_deadline).ok())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap_or(None)).collect()
            })
            .expect("broker fan-out scope");
        let mut topk = TopK::new(query.k.max(1));
        let mut by_key: std::collections::HashMap<u64, PartialHit> = std::collections::HashMap::new();
        for resp in responses.into_iter().flatten() {
            for hit in resp.hits {
                // Key hits by (partition, local_id) packed into a u64 so the
                // TopK can track them.
                let key = ((hit.partition as u64) << 32) | u64::from(hit.local_id);
                if topk.push(key, hit.distance) {
                    by_key.insert(key, hit);
                }
            }
        }
        let hits = topk
            .into_sorted_vec()
            .into_iter()
            .filter_map(|n| by_key.remove(&n.id))
            .collect();
        PartialResponse { hits }
    }
}

impl Service for BrokerService {
    type Request = FanoutQuery;
    type Response = PartialResponse;

    fn handle(&self, req: FanoutQuery) -> PartialResponse {
        self.execute(&req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_core::{IndexConfig, VisualIndex};
    use jdvs_net::node::Node;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;
    use std::sync::Arc;

    const DIM: usize = 8;
    const DL: Duration = Duration::from_secs(5);

    fn make_index(seed: u64, ids: std::ops::Range<u64>) -> Arc<VisualIndex> {
        let mut rng = Xoshiro256::seed_from(seed);
        let train: Vec<Vector> =
            (0..32).map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect()).collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig { dim: DIM, num_lists: 2, nprobe: 2, ..Default::default() },
            &train,
        ));
        for i in ids {
            let v: Vector = (0..DIM).map(|_| rng.next_gaussian() as f32).collect();
            index
                .insert(v, ProductAttributes::new(ProductId(i), 0, 0, 0, format!("u{i}")))
                .unwrap();
        }
        index.flush();
        index
    }

    /// Builds a 2-partition broker; returns (broker, partition indexes,
    /// searcher nodes kept alive).
    fn make_broker() -> (BrokerService, Vec<Arc<VisualIndex>>, Vec<Node<SearcherService>>) {
        let mut nodes = Vec::new();
        let mut balancers = Vec::new();
        let mut indexes = Vec::new();
        for p in 0..2usize {
            let index = make_index(p as u64 + 1, (p as u64 * 100)..(p as u64 * 100 + 50));
            indexes.push(Arc::clone(&index));
            let node = Node::spawn(format!("searcher-{p}-0"), SearcherService::for_index(p, index), 2);
            balancers.push(Balancer::new(vec![node.handle()]));
            nodes.push(node);
        }
        (BrokerService::new(0, balancers, DL), indexes, nodes)
    }

    #[test]
    fn merges_partial_results_across_partitions() {
        let (broker, indexes, _nodes) = make_broker();
        // Query with partition-1's image 10 → global best must come from p1.
        let feats = indexes[1].features(jdvs_core::ids::ImageId(10)).unwrap();
        let resp = broker.execute(&FanoutQuery { features: feats.into_inner(), k: 8, nprobe: Some(2), compressed: false });
        assert_eq!(resp.hits.len(), 8);
        assert_eq!(resp.hits[0].partition, 1);
        assert_eq!(resp.hits[0].local_id, 10);
        // Hits from both partitions appear (both have images).
        let partitions: std::collections::HashSet<usize> =
            resp.hits.iter().map(|h| h.partition).collect();
        assert!(partitions.len() >= 1);
        for w in resp.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance, "merged list stays sorted");
        }
    }

    #[test]
    fn tolerates_a_dead_partition() {
        let (broker, indexes, nodes) = make_broker();
        nodes[0].faults().set_down(true);
        let feats = indexes[1].features(jdvs_core::ids::ImageId(0)).unwrap();
        let resp = broker.execute(&FanoutQuery { features: feats.into_inner(), k: 5, nprobe: Some(2), compressed: false });
        assert!(!resp.hits.is_empty(), "partition 1 still answers");
        assert!(resp.hits.iter().all(|h| h.partition == 1));
    }

    #[test]
    fn replica_failover_inside_a_partition() {
        // Partition with two replicas; kill one; broker still answers.
        let index = make_index(9, 0..30);
        let n0 = Node::spawn("s-0-a", SearcherService::for_index(0, Arc::clone(&index)), 1);
        let n1 = Node::spawn("s-0-b", SearcherService::for_index(0, Arc::clone(&index)), 1);
        let broker = BrokerService::new(
            0,
            vec![Balancer::new(vec![n0.handle(), n1.handle()])],
            DL,
        );
        n0.faults().set_down(true);
        let feats = index.features(jdvs_core::ids::ImageId(3)).unwrap();
        let resp = broker.execute(&FanoutQuery { features: feats.into_inner(), k: 1, nprobe: Some(2), compressed: false });
        assert_eq!(resp.hits[0].local_id, 3);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partitions_panics() {
        BrokerService::new(0, vec![], DL);
    }
}
