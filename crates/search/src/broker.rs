//! The broker service (middle of Figure 10).
//!
//! *"A broker forwards the query to all the searchers it connects to and
//! collects the partial search results from each searcher."* A broker group
//! owns a subset of partitions; each instance holds, per owned partition, a
//! replica-failover [`Balancer`] over that partition's searchers. Fan-out
//! is parallel (scoped threads — one in-flight call per partition), and the
//! partial top-k lists are merged into the group's top-k.
//!
//! Resilience: when the incoming [`FanoutQuery`] carries a deadline
//! `budget`, each searcher call gets `min(searcher_deadline, 0.9 × budget)`
//! — a straggling blender can never grant searchers more time than the user
//! call has left. Partitions that fail are not silently absent: the merged
//! [`PartialResponse`] accounts for every owned partition as ok, timed out,
//! or failed, and an optional hedged second call races stragglers.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use jdvs_metrics::ResilienceMetrics;
use jdvs_net::balancer::Balancer;
use jdvs_net::node::NodeHandle;
use jdvs_net::rpc::{CallTarget, RpcError, Service};
use jdvs_vector::topk::TopK;

use crate::protocol::{FanoutQuery, PartialHit, PartialResponse};
use crate::searcher::SearcherService;

/// Fraction of the remaining budget granted to the next hop; the held-back
/// margin pays for the merge and the reply trip.
const BUDGET_MARGIN: f64 = 0.9;

/// One broker instance of a broker group, generic over the transport to
/// its searchers: in-process [`NodeHandle`]s (the default) or
/// [`jdvs_net::tcp::TcpChannel`]s when the tiers run over real sockets.
pub struct BrokerService<T = NodeHandle<SearcherService>>
where
    T: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    group: usize,
    /// One replica set per owned partition. Growable and shared: an online
    /// partition split appends the new half's balancer here and every
    /// instance of the group picks it up on its next fan-out.
    partitions: Arc<RwLock<Vec<Balancer<T>>>>,
    searcher_deadline: Duration,
    /// When set, a hedged second searcher call is launched for any
    /// partition still unanswered after this long.
    hedge_after: Option<Duration>,
    metrics: Option<Arc<ResilienceMetrics>>,
}

impl<T> std::fmt::Debug for BrokerService<T>
where
    T: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerService")
            .field("group", &self.group)
            .field("partitions", &self.partitions.read().len())
            .finish()
    }
}

impl<T> BrokerService<T>
where
    T: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    /// Creates a broker instance for `group` over its partitions' replica
    /// balancers.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn new(group: usize, partitions: Vec<Balancer<T>>, searcher_deadline: Duration) -> Self {
        Self::over(group, Arc::new(RwLock::new(partitions)), searcher_deadline)
    }

    /// Like [`BrokerService::new`], but over an externally-held partition
    /// list. The caller keeps the `Arc` and may push new balancers into it
    /// (replica bootstrap, partition split); fan-outs that start afterwards
    /// cover the new entries.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn over(
        group: usize,
        partitions: Arc<RwLock<Vec<Balancer<T>>>>,
        searcher_deadline: Duration,
    ) -> Self {
        assert!(
            !partitions.read().is_empty(),
            "a broker group must own at least one partition"
        );
        Self {
            group,
            partitions,
            searcher_deadline,
            hedge_after: None,
            metrics: None,
        }
    }

    /// Enables hedged searcher calls after `hedge_after` of silence.
    pub fn with_hedging(mut self, hedge_after: Duration) -> Self {
        self.hedge_after = Some(hedge_after);
        self
    }

    /// Attaches shared resilience counters.
    pub fn with_metrics(mut self, metrics: Arc<ResilienceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// This instance's broker group.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Partitions owned.
    pub fn num_partitions(&self) -> usize {
        self.partitions.read().len()
    }

    /// Fans `query` to every owned partition in parallel and merges the
    /// partial results into this group's top-k. Partitions that fail or
    /// time out are absent from the hits but **accounted for** in the
    /// response's coverage fields — degraded never means silent.
    pub fn execute(&self, query: &FanoutQuery) -> PartialResponse {
        let per_call = match query.budget {
            Some(budget) => self.searcher_deadline.min(budget.mul_f64(BUDGET_MARGIN)),
            None => self.searcher_deadline,
        };
        let mut fan = query.clone();
        fan.budget = Some(per_call);
        let hedge_after = self.hedge_after;
        // Snapshot the partition list: a concurrent split's new balancer is
        // either fully in this fan-out or fully in the next one.
        let partitions = self.partitions.read().clone();
        let responses: Vec<Result<PartialResponse, RpcError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .map(|balancer| {
                    let q = fan.clone();
                    scope.spawn(move |_| match hedge_after {
                        Some(h) if h < per_call => balancer.call_hedged(q, per_call, h),
                        _ => balancer.call(q, per_call),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Err(RpcError::NodeDown)))
                .collect()
        })
        .expect("broker fan-out scope");

        let mut topk = TopK::new(query.k.max(1));
        let mut by_key: std::collections::HashMap<u64, PartialHit> =
            std::collections::HashMap::new();
        let mut out = PartialResponse::default();
        for resp in responses {
            match resp {
                Ok(partial) => {
                    out.partitions_ok += partial.partitions_ok;
                    out.partitions_total += partial.partitions_total;
                    out.partitions_timed_out += partial.partitions_timed_out;
                    out.partitions_failed += partial.partitions_failed;
                    out.partitions_shed += partial.partitions_shed;
                    for hit in partial.hits {
                        // Key hits by (partition, local_id) packed into a u64
                        // so the TopK can track them.
                        let key = ((hit.partition as u64) << 32) | u64::from(hit.local_id);
                        if topk.push(key, hit.distance) {
                            by_key.insert(key, hit);
                        }
                    }
                }
                Err(err) => {
                    out.partitions_total += 1;
                    match err {
                        RpcError::Timeout { .. } => {
                            out.partitions_timed_out += 1;
                            if let Some(m) = &self.metrics {
                                m.partitions_timed_out.incr();
                            }
                        }
                        RpcError::Overloaded => {
                            out.partitions_shed += 1;
                            if let Some(m) = &self.metrics {
                                m.partitions_shed.incr();
                            }
                        }
                        _ => {
                            out.partitions_failed += 1;
                            if let Some(m) = &self.metrics {
                                m.partitions_failed.incr();
                            }
                        }
                    }
                }
            }
        }
        out.hits = topk
            .into_sorted_vec()
            .into_iter()
            .filter_map(|n| by_key.remove(&n.id))
            .collect();
        out
    }
}

impl<T> Service for BrokerService<T>
where
    T: CallTarget<Request = FanoutQuery, Response = PartialResponse>,
{
    type Request = FanoutQuery;
    type Response = PartialResponse;

    fn handle(&self, req: FanoutQuery) -> PartialResponse {
        self.execute(&req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_core::{IndexConfig, VisualIndex};
    use jdvs_net::node::Node;
    use jdvs_storage::model::{ProductAttributes, ProductId};
    use jdvs_vector::rng::Xoshiro256;
    use jdvs_vector::Vector;

    const DIM: usize = 8;
    const DL: Duration = Duration::from_secs(5);

    fn fanout(features: Vec<f32>, k: usize) -> FanoutQuery {
        FanoutQuery {
            features,
            k,
            nprobe: Some(2),
            compressed: false,
            budget: None,
            filter: None,
        }
    }

    fn make_index(seed: u64, ids: std::ops::Range<u64>) -> Arc<VisualIndex> {
        let mut rng = Xoshiro256::seed_from(seed);
        let train: Vec<Vector> = (0..32)
            .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
            .collect();
        let index = Arc::new(VisualIndex::bootstrap(
            IndexConfig {
                dim: DIM,
                num_lists: 2,
                nprobe: 2,
                ..Default::default()
            },
            &train,
        ));
        for i in ids {
            let v: Vector = (0..DIM).map(|_| rng.next_gaussian() as f32).collect();
            index
                .insert(
                    v,
                    ProductAttributes::new(ProductId(i), 0, 0, 0, format!("u{i}")),
                )
                .unwrap();
        }
        index.flush();
        index
    }

    /// Builds a 2-partition broker; returns (broker, partition indexes,
    /// searcher nodes kept alive).
    fn make_broker() -> (
        BrokerService,
        Vec<Arc<VisualIndex>>,
        Vec<Node<SearcherService>>,
    ) {
        let mut nodes = Vec::new();
        let mut balancers = Vec::new();
        let mut indexes = Vec::new();
        for p in 0..2usize {
            let index = make_index(p as u64 + 1, (p as u64 * 100)..(p as u64 * 100 + 50));
            indexes.push(Arc::clone(&index));
            let node = Node::spawn(
                format!("searcher-{p}-0"),
                SearcherService::for_index(p, index),
                2,
            );
            balancers.push(Balancer::new(vec![node.handle()]));
            nodes.push(node);
        }
        (BrokerService::new(0, balancers, DL), indexes, nodes)
    }

    #[test]
    fn merges_partial_results_across_partitions() {
        let (broker, indexes, _nodes) = make_broker();
        // Query with partition-1's image 10 → global best must come from p1.
        let feats = indexes[1].features(jdvs_core::ids::ImageId(10)).unwrap();
        let resp = broker.execute(&fanout(feats.into_inner(), 8));
        assert_eq!(resp.hits.len(), 8);
        assert_eq!(resp.hits[0].partition, 1);
        assert_eq!(resp.hits[0].local_id, 10);
        // Hits from both partitions appear (both have images).
        let partitions: std::collections::HashSet<usize> =
            resp.hits.iter().map(|h| h.partition).collect();
        assert!(!partitions.is_empty());
        for w in resp.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance, "merged list stays sorted");
        }
        assert!(resp.is_complete(), "both partitions answered");
        assert_eq!((resp.partitions_ok, resp.partitions_total), (2, 2));
        assert_eq!(resp.partitions_timed_out + resp.partitions_failed, 0);
    }

    #[test]
    fn tolerates_a_dead_partition_and_accounts_for_it() {
        let (broker, indexes, nodes) = make_broker();
        nodes[0].faults().set_down(true);
        let feats = indexes[1].features(jdvs_core::ids::ImageId(0)).unwrap();
        let resp = broker.execute(&fanout(feats.into_inner(), 5));
        assert!(!resp.hits.is_empty(), "partition 1 still answers");
        assert!(resp.hits.iter().all(|h| h.partition == 1));
        assert!(
            !resp.is_complete(),
            "the dead partition must be accounted for"
        );
        assert_eq!((resp.partitions_ok, resp.partitions_total), (1, 2));
        assert_eq!(resp.partitions_failed, 1);
        assert_eq!(resp.partitions_timed_out, 0);
    }

    #[test]
    fn budget_bounds_the_searcher_deadline() {
        let (broker, indexes, nodes) = make_broker();
        // A straggling replica plus a tiny budget: the broker must cut the
        // searcher call at ~0.9 × budget, not wait the full 5 s deadline.
        nodes[0].faults().set_slowdown(Duration::from_millis(500));
        let feats = indexes[1].features(jdvs_core::ids::ImageId(0)).unwrap();
        let mut q = fanout(feats.into_inner(), 5);
        q.budget = Some(Duration::from_millis(80));
        let start = std::time::Instant::now();
        let resp = broker.execute(&q);
        let elapsed = start.elapsed();
        // The slowdown delays delivery client-side; either way the response
        // arrives near the budget, with the straggler partition accounted.
        assert!(
            elapsed < Duration::from_secs(2),
            "budget must bound the fan-out: took {elapsed:?}"
        );
        assert_eq!(resp.partitions_total, 2);
        assert!(
            resp.partitions_ok >= 1,
            "healthy partition answered: {resp:?}"
        );
    }

    #[test]
    fn metrics_count_lost_partitions() {
        let (broker, indexes, nodes) = make_broker();
        let m = Arc::new(ResilienceMetrics::new());
        let broker = broker.with_metrics(Arc::clone(&m));
        nodes[1].faults().set_down(true);
        let feats = indexes[0].features(jdvs_core::ids::ImageId(0)).unwrap();
        let _ = broker.execute(&fanout(feats.into_inner(), 3));
        assert_eq!(m.snapshot().partitions_failed, 1);
    }

    #[test]
    fn replica_failover_inside_a_partition() {
        // Partition with two replicas; kill one; broker still answers.
        let index = make_index(9, 0..30);
        let n0 = Node::spawn(
            "s-0-a",
            SearcherService::for_index(0, Arc::clone(&index)),
            1,
        );
        let n1 = Node::spawn(
            "s-0-b",
            SearcherService::for_index(0, Arc::clone(&index)),
            1,
        );
        let broker = BrokerService::new(0, vec![Balancer::new(vec![n0.handle(), n1.handle()])], DL);
        n0.faults().set_down(true);
        let feats = index.features(jdvs_core::ids::ImageId(3)).unwrap();
        let resp = broker.execute(&fanout(feats.into_inner(), 1));
        assert_eq!(resp.hits[0].local_id, 3);
        assert!(resp.is_complete(), "failover kept the partition covered");
    }

    #[test]
    fn pushed_partition_joins_the_next_fanout() {
        let index0 = make_index(21, 0..20);
        let n0 = Node::spawn(
            "grow-0",
            SearcherService::for_index(0, Arc::clone(&index0)),
            1,
        );
        let shared = Arc::new(RwLock::new(vec![Balancer::new(vec![n0.handle()])]));
        let broker = BrokerService::over(0, Arc::clone(&shared), DL);
        let feats = index0.features(jdvs_core::ids::ImageId(1)).unwrap();
        let resp = broker.execute(&fanout(feats.clone().into_inner(), 4));
        assert_eq!(resp.partitions_total, 1);

        // A split lands: the new half's balancer is pushed in from outside.
        let index1 = make_index(22, 100..120);
        let n1 = Node::spawn(
            "grow-1",
            SearcherService::for_index(1, Arc::clone(&index1)),
            1,
        );
        shared.write().push(Balancer::new(vec![n1.handle()]));
        let resp = broker.execute(&fanout(feats.into_inner(), 4));
        assert_eq!(resp.partitions_total, 2, "new partition covered");
        assert_eq!(resp.partitions_ok, 2);
    }

    #[test]
    fn hedging_recovers_a_straggling_replica() {
        let index = make_index(11, 0..30);
        let slow = Node::spawn(
            "s-slow",
            SearcherService::for_index(0, Arc::clone(&index)),
            1,
        );
        let fast = Node::spawn(
            "s-fast",
            SearcherService::for_index(0, Arc::clone(&index)),
            1,
        );
        slow.faults().set_slowdown(Duration::from_millis(400));
        let broker = BrokerService::new(
            0,
            vec![Balancer::new(vec![slow.handle(), fast.handle()])],
            DL,
        )
        .with_hedging(Duration::from_millis(25));
        let feats = index.features(jdvs_core::ids::ImageId(3)).unwrap();
        let start = std::time::Instant::now();
        let resp = broker.execute(&fanout(feats.into_inner(), 1));
        let elapsed = start.elapsed();
        assert_eq!(resp.hits[0].local_id, 3);
        assert!(
            elapsed < Duration::from_millis(350),
            "hedge must beat the straggler: took {elapsed:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partitions_panics() {
        BrokerService::<NodeHandle<SearcherService>>::new(0, vec![], DL);
    }
}
