//! Result ranking.
//!
//! Section 2.4: *"Finally, the similar products are ranked according to
//! their sales, praise, price and other attributes."* The blender blends
//! visual similarity with business attributes. [`RankingPolicy`] is a
//! weighted linear blend over normalized signals:
//!
//! - similarity: `1 / (1 + distance)` — monotone-decreasing in distance,
//!   in `(0, 1]`;
//! - sales and praise: `log1p` compressed (counts are heavy-tailed);
//! - price: inverted log (cheaper ranks higher, all else equal).

use serde::{Deserialize, Serialize};

use crate::protocol::{PartialHit, RankedHit};

/// Weighted blend of similarity and product attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingPolicy {
    /// Weight of visual similarity.
    pub w_similarity: f64,
    /// Weight of (log-compressed) sales.
    pub w_sales: f64,
    /// Weight of (log-compressed) praise.
    pub w_praise: f64,
    /// Weight of (inverted log) price.
    pub w_price: f64,
}

impl Default for RankingPolicy {
    /// Similarity-dominant defaults: visual match is the primary signal,
    /// attributes break near-ties, as in product visual search.
    fn default() -> Self {
        Self {
            w_similarity: 1.0,
            w_sales: 0.02,
            w_praise: 0.01,
            w_price: 0.005,
        }
    }
}

impl RankingPolicy {
    /// Pure similarity ranking (the ablation baseline).
    pub fn similarity_only() -> Self {
        Self {
            w_similarity: 1.0,
            w_sales: 0.0,
            w_praise: 0.0,
            w_price: 0.0,
        }
    }

    /// Scores one hit (higher is better).
    pub fn score(&self, hit: &PartialHit) -> f64 {
        let similarity = 1.0 / (1.0 + f64::from(hit.distance));
        let sales = (hit.sales as f64).ln_1p();
        let praise = (hit.praise as f64).ln_1p();
        // Cheaper is better: invert the compressed price.
        let price = 1.0 / (1.0 + (hit.price as f64).ln_1p());
        self.w_similarity * similarity
            + self.w_sales * sales
            + self.w_praise * praise
            + self.w_price * price
    }

    /// Ranks hits best-first, deduplicating by product (a product with
    /// several near-identical images should occupy one result slot, as in
    /// the paper's mobile UI), and truncates to `k`.
    pub fn rank(&self, hits: Vec<PartialHit>, k: usize) -> Vec<RankedHit> {
        let mut scored: Vec<RankedHit> = hits
            .into_iter()
            .map(|h| RankedHit {
                score: self.score(&h),
                hit: h,
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.hit.url.cmp(&b.hit.url))
        });
        let mut seen_products = std::collections::HashSet::new();
        scored.retain(|r| seen_products.insert(r.hit.product_id));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jdvs_storage::model::ProductId;

    fn hit(product: u64, distance: f32, sales: u64, price: u64) -> PartialHit {
        PartialHit {
            partition: 0,
            local_id: product as u32,
            distance,
            product_id: ProductId(product),
            sales,
            price,
            praise: 0,
            url: format!("u{product}-{distance}"),
        }
    }

    #[test]
    fn closer_hits_score_higher() {
        let p = RankingPolicy::similarity_only();
        assert!(p.score(&hit(1, 0.1, 0, 0)) > p.score(&hit(2, 2.0, 0, 0)));
    }

    #[test]
    fn sales_break_ties() {
        let p = RankingPolicy::default();
        let popular = hit(1, 1.0, 1_000_000, 100);
        let obscure = hit(2, 1.0, 0, 100);
        assert!(p.score(&popular) > p.score(&obscure));
    }

    #[test]
    fn cheaper_wins_at_equal_similarity_and_sales() {
        let p = RankingPolicy::default();
        let cheap = hit(1, 1.0, 10, 100);
        let pricey = hit(2, 1.0, 10, 1_000_000);
        assert!(p.score(&cheap) > p.score(&pricey));
    }

    #[test]
    fn similarity_dominates_attributes_by_default() {
        let p = RankingPolicy::default();
        let near_unpopular = hit(1, 0.01, 0, 1_000_000);
        let far_popular = hit(2, 5.0, 1_000_000, 1);
        assert!(p.score(&near_unpopular) > p.score(&far_popular));
    }

    #[test]
    fn rank_sorts_dedupes_and_truncates() {
        let p = RankingPolicy::similarity_only();
        let hits = vec![
            hit(1, 3.0, 0, 0),
            hit(1, 0.5, 0, 0), // same product, closer image
            hit(2, 1.0, 0, 0),
            hit(3, 2.0, 0, 0),
        ];
        let ranked = p.rank(hits, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].hit.product_id, ProductId(1));
        assert!(
            (ranked[0].hit.distance - 0.5).abs() < 1e-6,
            "best image of the product wins"
        );
        assert_eq!(ranked[1].hit.product_id, ProductId(2));
    }

    #[test]
    fn rank_of_empty_is_empty() {
        assert!(RankingPolicy::default().rank(vec![], 10).is_empty());
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let p = RankingPolicy::similarity_only();
        let hits = vec![hit(1, 1.0, 0, 0), hit(2, 1.0, 0, 0), hit(3, 1.0, 0, 0)];
        let a = p.rank(hits.clone(), 3);
        let b = p.rank(hits, 3);
        assert_eq!(a, b);
    }
}
