//! The hierarchical-coarse-quantizer experiment: centroid-assignment cost
//! at catalog scale, flat scan vs graph beam search.
//!
//! Builds a 1M-vector / 10k-list world (paper scale for one searcher
//! partition), trains one imbalance-aware quantizer, and sweeps the beam
//! width of the centroid graph against the flat baseline. For each beam
//! the experiment records:
//!
//! - centroid-assignment latency (the component the hierarchy targets),
//! - end-to-end query latency through the same inverted-list scan,
//! - recall@10 parity against the flat probe set.
//!
//! Two gates run before any timing: the exhaustive-beam differential
//! check (a beam at or above `k` must reproduce the flat scan's probe
//! sets bit-exactly) and the recall gate (the default beam must hold at
//! least 0.95 recall@10 parity). The acceptance bar — at least 5x
//! assignment speedup at the recall frontier — is asserted on
//! full-scale runs.

use std::collections::HashSet;
use std::time::Instant;

use jdvs_core::search;
use jdvs_core::{IndexConfig, VisualIndex};
use jdvs_storage::model::{ProductAttributes, ProductId};
use jdvs_vector::rng::Xoshiro256;
use jdvs_vector::simd;
use jdvs_vector::{Kmeans, KmeansConfig, Vector};

use crate::report::ExperimentResult;
use crate::row;

use super::Ctx;

const DIM: usize = 128;
const K: usize = 10;
const NPROBE: usize = 16;
const DEFAULT_BEAM: usize = 32;
const BALANCE: f64 = 1.5;
const NUM_QUERIES: usize = 100;

/// Per-query mean latency of `f` over `queries`, repeated `repeats` times.
fn measure(queries: &[Vector], repeats: usize, mut f: impl FnMut(&[f32]) -> usize) -> f64 {
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in queries {
            sink = sink.wrapping_add(f(q.as_slice()));
        }
    }
    let elapsed = t0.elapsed();
    assert!(sink > 0, "measured path returned no results");
    elapsed.as_secs_f64() * 1e6 / (repeats * queries.len()) as f64
}

/// Clustered catalog features: `families` latent product families, each
/// vector a family center plus per-item noise. Matches how real visual
/// embeddings cluster (items of a family look alike) so the coarse
/// quantizer has structure to exploit, unlike iid gaussians.
fn clustered(rng: &mut Xoshiro256, centers: &[Vector], n: usize) -> Vec<Vector> {
    (0..n)
        .map(|_| {
            let c = &centers[(rng.next_u64() as usize) % centers.len()];
            c.as_slice()
                .iter()
                .map(|&x| x + 0.35 * rng.next_gaussian() as f32)
                .collect()
        })
        .collect()
}

/// Mean fraction of reference result ids recovered, per query.
fn recall_at_k(reference: &[Vec<u64>], got: &[Vec<u64>]) -> f64 {
    let mut total = 0.0;
    for (r, g) in reference.iter().zip(got) {
        if r.is_empty() {
            continue;
        }
        let want: HashSet<u64> = r.iter().copied().collect();
        total += g.iter().filter(|id| want.contains(id)).count() as f64 / r.len() as f64;
    }
    total / reference.len() as f64
}

/// `coarse`: hierarchical coarse quantizer vs flat centroid scan at
/// 1M-vector / 10k-list scale.
pub fn coarse(ctx: &Ctx) -> ExperimentResult {
    let n_vectors = ctx.scaled(1_000_000, 20_000);
    let num_lists = ctx.scaled(10_000, 256);
    let n_families = (num_lists / 4).max(32);
    let mut rng = Xoshiro256::seed_from(0xC0A5);

    let centers: Vec<Vector> = (0..n_families)
        .map(|_| (0..DIM).map(|_| rng.next_gaussian() as f32).collect())
        .collect();
    let data = clustered(&mut rng, &centers, n_vectors);
    let queries = clustered(&mut rng, &centers, NUM_QUERIES);

    // One imbalance-aware training pass on a bounded sample (the full
    // indexer trains once and distributes the table); `flat` keeps the
    // linear scan, `graphed` carries the centroid graph.
    let sample_len = (3 * num_lists).min(n_vectors);
    let t0 = Instant::now();
    let flat = Kmeans::train(
        &data[..sample_len],
        &KmeansConfig {
            k: num_lists,
            max_iters: 4,
            tolerance: 1e-4,
            seed: 0xC0A5,
            balance_factor: BALANCE,
        },
    );
    let train_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let graphed = flat.clone().with_coarse_graph(DEFAULT_BEAM);
    let graph_build_s = t0.elapsed().as_secs_f64();
    let graph_bytes = graphed.coarse_graph().expect("graph built").memory_bytes();

    // Populate one searcher partition through the graph-assisted insert
    // path (this alone is what makes a 1M build tractable: every insert
    // is a centroid assignment).
    let config = IndexConfig {
        dim: DIM,
        num_lists: flat.k(),
        initial_list_capacity: 64,
        coarse_beam_width: DEFAULT_BEAM,
        coarse_balance_factor: BALANCE,
        ..Default::default()
    };
    let t0 = Instant::now();
    let index = VisualIndex::with_quantizer(config, graphed.clone());
    for (i, v) in data.iter().enumerate() {
        index
            .insert(
                v.clone(),
                ProductAttributes::new(ProductId(i as u64), 0, 0, 0, format!("coarse/u{i}")),
            )
            .expect("insert");
    }
    index.flush();
    let build_s = t0.elapsed().as_secs_f64();

    // Gate 1 (differential): an exhaustive beam must reproduce the flat
    // scan's probe sets bit-exactly — order included.
    let exhaustive = flat.clone().with_coarse_graph(flat.k());
    for q in queries.iter().take(16) {
        assert_eq!(
            exhaustive.assign_multi(q.as_slice(), NPROBE),
            flat.assign_multi(q.as_slice(), NPROBE),
            "exhaustive beam diverged from flat scan"
        );
    }

    // Flat-probe reference results for every query: the parity baseline
    // every beam's recall is measured against.
    let flat_ids: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            let probes = flat.assign_multi(q.as_slice(), NPROBE);
            search::ann_search_with_probes(&index, q.as_slice(), K, &probes)
                .into_iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();

    // Gate 2 (recall): the default beam must hold the parity bar before
    // anything is timed.
    let default_ids: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            let probes = graphed.assign_multi(q.as_slice(), NPROBE);
            search::ann_search_with_probes(&index, q.as_slice(), K, &probes)
                .into_iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();
    let default_recall = recall_at_k(&flat_ids, &default_ids);
    assert!(
        default_recall >= 0.95,
        "default beam {DEFAULT_BEAM} recall@{K} {default_recall:.3} below the 0.95 parity bar"
    );

    let repeats = if ctx.quick { 5 } else { 20 };
    let flat_assign_us = measure(&queries, repeats, |q| flat.assign_multi(q, NPROBE).len());
    let flat_e2e_us = measure(&queries, repeats, |q| {
        let probes = flat.assign_multi(q, NPROBE);
        search::ann_search_with_probes(&index, q, K, &probes).len()
    });

    let mut r = ExperimentResult::new(
        "coarse",
        "Hierarchical coarse quantizer: centroid assignment vs flat scan at 10k lists",
        "Section 2.4: sub-linear coarse quantization keeps assignment off the critical path as the catalog and list count grow",
    );
    r.push_row(row![
        "variant" => "flat-scan",
        "assign_us_per_query" => format!("{flat_assign_us:.1}"),
        "assign_speedup" => "1.00",
        "recall_at_10" => "1.000",
        "e2e_us_per_query" => format!("{flat_e2e_us:.1}"),
        "e2e_speedup" => "1.00",
    ]);

    // The frontier sweep. Beams below nprobe clamp to nprobe (effective
    // beam is max(beam, nprobe)), so the sweep starts there.
    let mut frontier_speedup = 0.0f64;
    for beam in [NPROBE, 32, 64, 128, 256] {
        if beam > flat.k() {
            continue;
        }
        let model = flat.clone().with_coarse_graph(beam);
        let ids: Vec<Vec<u64>> = queries
            .iter()
            .map(|q| {
                let probes = model.assign_multi(q.as_slice(), NPROBE);
                search::ann_search_with_probes(&index, q.as_slice(), K, &probes)
                    .into_iter()
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        let recall = recall_at_k(&flat_ids, &ids);
        let assign_us = measure(&queries, repeats, |q| model.assign_multi(q, NPROBE).len());
        let e2e_us = measure(&queries, repeats, |q| {
            let probes = model.assign_multi(q, NPROBE);
            search::ann_search_with_probes(&index, q, K, &probes).len()
        });
        let speedup = flat_assign_us / assign_us;
        if recall >= 0.95 {
            frontier_speedup = frontier_speedup.max(speedup);
        }
        r.push_row(row![
            "variant" => format!("beam-{beam}"),
            "assign_us_per_query" => format!("{assign_us:.1}"),
            "assign_speedup" => format!("{speedup:.2}"),
            "recall_at_10" => format!("{recall:.3}"),
            "e2e_us_per_query" => format!("{e2e_us:.1}"),
            "e2e_speedup" => format!("{:.2}", flat_e2e_us / e2e_us),
        ]);
    }

    r.note(format!(
        "{n_vectors} vectors, dim {DIM}, {} lists, nprobe {NPROBE}, k {K}, {n_families} latent families; active kernel: {}",
        flat.k(),
        simd::active().name()
    ));
    r.note(format!(
        "quantizer: trained on {sample_len} samples in {train_s:.1}s (balance factor {BALANCE}); centroid graph built in {graph_build_s:.2}s; graph-assisted population of {n_vectors} vectors in {build_s:.1}s"
    ));
    r.note(format!(
        "centroid graph memory: {graph_bytes} bytes total, {:.1} bytes/centroid, {:.3} bytes per indexed vector",
        graph_bytes as f64 / flat.k() as f64,
        graph_bytes as f64 / n_vectors as f64
    ));
    r.note(format!(
        "best assignment speedup at >= 0.95 recall@{K} parity: {frontier_speedup:.2}x (acceptance bar: >= 5x at full scale)"
    ));
    r.note(
        "gated before timing: exhaustive beam bit-identical to flat scan; default beam >= 0.95 recall@10 parity"
            .to_string(),
    );
    assert!(
        ctx.quick || ctx.scale < 1.0 || frontier_speedup >= 5.0,
        "assignment speedup {frontier_speedup:.2}x at the recall frontier is below the 5x acceptance bar"
    );
    r
}
