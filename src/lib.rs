//! # jdvs — a real-time visual search system
//!
//! A full reproduction, in Rust, of the system described in *"The Design
//! and Implementation of a Real Time Visual Search System on JD E-commerce
//! Platform"* (Li et al., Middleware 2018): a distributed, hierarchical
//! image-retrieval stack whose index supports **sub-second insertion,
//! update and deletion concurrent with search**.
//!
//! This crate is the facade: it re-exports the workspace's crates under
//! stable paths. See the README for the architecture overview, DESIGN.md
//! for the system inventory, and EXPERIMENTS.md for the paper-vs-measured
//! record of every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use jdvs::workload::scenario::{World, WorldConfig};
//! use jdvs::search::SearchQuery;
//! use std::time::Duration;
//!
//! // A miniature world: synthetic catalog, trained index, full
//! // blender/broker/searcher topology with real-time indexing.
//! let world = World::build(WorldConfig::fast_test());
//! let client = world.client(Duration::from_secs(5));
//!
//! // Query with one of the catalog's own images: the default ranking
//! // blends similarity with sales/praise/price, but the exact image is an
//! // exact visual match and must appear in the top results.
//! let product = &world.catalog().products()[0];
//! let resp = client.search(SearchQuery::by_image_url(product.urls[0].clone(), 3)).unwrap();
//! assert!(resp.results.iter().any(|r| r.hit.product_id == product.id));
//! ```
//!
//! ## Crate map
//!
//! | Path | Contents |
//! |---|---|
//! | [`core`] | the paper's contribution: forward index, validity bitmap, IVF inverted lists with lock-free expansion, real-time + full indexers |
//! | [`durability`] | segmented CRC-framed ingestion log, atomic checkpoints, crash recovery |
//! | [`search`] | blender / broker / searcher topology, partitioning, ranking |
//! | [`storage`] | KV store, message queue, image store, feature database |
//! | [`features`] | deterministic synthetic feature extraction + cost model |
//! | [`net`] | in-process cluster: nodes, RPC, latency model, fault injection |
//! | [`vector`] | vectors, distances, top-k, k-means, product quantization |
//! | [`metrics`] | histograms, percentiles, CDFs, hourly series |
//! | [`workload`] | catalogs, daily event streams, query generators, drivers |

#![warn(missing_docs)]

pub use jdvs_core as core;
pub use jdvs_durability as durability;
pub use jdvs_features as features;
pub use jdvs_metrics as metrics;
pub use jdvs_net as net;
pub use jdvs_search as search;
pub use jdvs_storage as storage;
pub use jdvs_vector as vector;
pub use jdvs_workload as workload;
