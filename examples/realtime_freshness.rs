//! Real-time freshness: the paper's headline property, demonstrated.
//!
//! ```sh
//! cargo run --release --example realtime_freshness
//! ```
//!
//! E-commerce visual search must reflect catalog changes at sub-second
//! timescales (Section 1). This example publishes add / update / delete /
//! re-list events to the live system's message queue and measures how long
//! each change takes to become visible to searches.

use std::time::{Duration, Instant};

use jdvs::search::SearchQuery;
use jdvs::storage::{ProductAttributes, ProductEvent, ProductId};
use jdvs::workload::catalog::CatalogConfig;
use jdvs::workload::scenario::{World, WorldConfig};

/// Polls `check` until it returns true; returns the elapsed time.
fn visible_within(deadline: Duration, mut check: impl FnMut() -> bool) -> Option<Duration> {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return Some(start.elapsed());
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    None
}

fn main() {
    println!("jdvs real-time freshness demo\n");
    let world = World::build(WorldConfig {
        catalog: CatalogConfig {
            num_products: 300,
            num_clusters: 20,
            ..Default::default()
        },
        ..WorldConfig::fast_test()
    });
    let client = world.client(Duration::from_secs(5));

    // ---- 1. Addition: a brand-new product becomes searchable. ----------
    let url = "https://img.jd.test/sku/999901/img0.jpg".to_string();
    world.images().put_synthetic(&url, 7);
    let attrs = ProductAttributes::new(ProductId(999_901), 5, 12_900, 2, url.clone());
    world.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(999_901),
        images: vec![attrs],
    });
    let latency = visible_within(Duration::from_secs(10), || {
        // Poke expansions so migration-window inserts publish promptly.
        for replicas in world.topology().indexes() {
            for index in replicas {
                index.flush();
            }
        }
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.product_id) == Some(ProductId(999_901))
    })
    .expect("addition never became visible");
    println!("addition  → searchable after {latency:?}");

    // ---- 2. Update: a price cut is visible in result attributes. -------
    world.topology().publish(ProductEvent::UpdateAttributes {
        product_id: ProductId(999_901),
        urls: vec![url.clone()],
        sales: Some(50_000),
        price: Some(9_900),
        praise: None,
    });
    let latency = visible_within(Duration::from_secs(10), || {
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.price) == Some(9_900)
    })
    .expect("update never became visible");
    println!("update    → new price visible after {latency:?}");

    // ---- 3. Deletion: a delisted product vanishes. ----------------------
    world.topology().publish(ProductEvent::RemoveProduct {
        product_id: ProductId(999_901),
        urls: vec![url.clone()],
    });
    let latency = visible_within(Duration::from_secs(10), || {
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.product_id) != Some(ProductId(999_901))
    })
    .expect("deletion never became visible");
    println!("deletion  → hidden from results after {latency:?}");

    // ---- 4. Re-listing: back on the market via the reuse path. ---------
    let reuse_before: u64 = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.stats().reuses.get())
        .sum();
    let attrs = ProductAttributes::new(ProductId(999_901), 50_000, 9_900, 2, url.clone());
    world.topology().publish(ProductEvent::AddProduct {
        product_id: ProductId(999_901),
        images: vec![attrs],
    });
    let latency = visible_within(Duration::from_secs(10), || {
        let resp = client
            .search(SearchQuery::by_image_url(url.clone(), 1))
            .unwrap();
        resp.results.first().map(|r| r.hit.product_id) == Some(ProductId(999_901))
    })
    .expect("re-listing never became visible");
    let reuse_after: u64 = world
        .topology()
        .indexes()
        .iter()
        .flatten()
        .map(|i| i.stats().reuses.get())
        .sum();
    println!(
        "re-listing → searchable after {latency:?} (feature reuse path: {} reuse events, no re-extraction)",
        reuse_after - reuse_before
    );
    assert!(
        reuse_after > reuse_before,
        "re-listing must take the reuse path"
    );

    println!("\nall four real-time paths verified end-to-end");
}
